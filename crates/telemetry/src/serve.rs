//! Live observability plane: a std-only background HTTP server.
//!
//! Enabled by `--serve ADDR` on every workload bin. While the run
//! executes, seven endpoints answer `GET` (each request bumps a
//! per-route `serve.requests[<route>]` counter, rendered on `/metrics`
//! as `serve_requests{key="<route>"}`):
//!
//! * `/metrics` — the current registry snapshot in Prometheus text
//!   exposition format (counters, gauges, span summaries, histograms
//!   with cumulative `_bucket` series from the log2 buckets);
//! * `/healthz` — liveness JSON: status, workload, seed, current run
//!   phase, uptime;
//! * `/runs` — run JSON: the run header, live progress (phase, feedback
//!   rounds completed, search trials done/planned), and the last
//!   `tail` experiment-ledger events (`?tail=N`, clamped to
//!   `1..=`[`EVENT_RING_CAP`], default [`EVENT_RING_CAP`]);
//! * `/events` — a Server-Sent-Events stream (chunked transfer
//!   encoding) of ledger events (`event: ledger`) and phase
//!   transitions (`event: phase`) as they happen, from connect time
//!   on. Each connected client gets a bounded in-memory frame buffer
//!   ([`SSE_CLIENT_BUF_CAP`] bytes); frames that would overflow a
//!   stalled client's buffer are dropped for that client and counted
//!   in the `serve.events_dropped` counter;
//! * `/history` — the cross-run history store (see [`crate::history`])
//!   as a JSON array, read per request from the configured path
//!   ([`set_history_path`]); `?workload=NAME` keeps only that
//!   workload's records and `?tail=N` the last N of them (clamped to
//!   `1..=`[`EVENT_RING_CAP`] like `/runs?tail=N`);
//! * `/crit` — the live critical-path report (see [`crate::crit`]):
//!   the causal-trace-tree analysis as JSON when `--crit-out` armed the
//!   collector, `{"active":false}` otherwise;
//! * `/dashboard` — a single self-contained HTML page (no external
//!   assets) that subscribes to `/events` and polls `/metrics`,
//!   `/runs`, and `/history` to render the live run and its cross-run
//!   trends.
//!
//! The server is a single thread on a non-blocking [`TcpListener`] —
//! `std::net` only, honoring the workspace's zero-external-dependency
//! rule. Requests are served from a point-in-time [`Snapshot`], so a
//! scrape never blocks the instrumented hot path; without `--serve` no
//! thread exists and the status setters are one relaxed atomic load
//! (off-is-free). SSE delivery follows the same discipline: emitters
//! only append to in-memory buffers (one relaxed load when no client is
//! connected); all socket writes happen on the serve thread.
//!
//! Phase/progress reporting: bins call [`set_phase`] at phase
//! boundaries, the AutoML search calls [`add_planned_trials`] /
//! [`note_trial_done`], and the experiment loop calls
//! [`note_round_done`]. All are no-ops unless the server is running.

use crate::ledger::LedgerEvent;
use crate::registry::{bucket_upper_edge, Snapshot};
use crate::sink::{RunHeader, Sink, SpanEvent};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many trailing ledger events `/runs` retains.
pub const EVENT_RING_CAP: usize = 64;

/// Bound on the pending (not yet written) SSE frame bytes buffered per
/// `/events` client. A client that stops reading fills its buffer and
/// then loses frames (counted in `serve.events_dropped`) instead of
/// growing the server's memory without bound.
pub const SSE_CLIENT_BUF_CAP: usize = 64 * 1024;

/// The self-contained live dashboard page served at `/dashboard`.
const DASHBOARD_HTML: &str = include_str!("dashboard.html");

// ---------------------------------------------------------------------
// Live run status (phase + progress), updated from the pipeline.
// ---------------------------------------------------------------------

/// Whether the server is running — the gate for all status setters.
static ACTIVE: AtomicBool = AtomicBool::new(false);

static ROUNDS_DONE: AtomicU64 = AtomicU64::new(0);
static TRIALS_DONE: AtomicU64 = AtomicU64::new(0);
static TRIALS_PLANNED: AtomicU64 = AtomicU64::new(0);

fn phase_slot() -> &'static Mutex<String> {
    static PHASE: OnceLock<Mutex<String>> = OnceLock::new();
    PHASE.get_or_init(|| Mutex::new(String::from("starting")))
}

/// Whether the live plane is serving (one relaxed atomic load).
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Record the run's current phase (shown by `/healthz` and `/runs`).
/// Call with static phase names at phase boundaries; no-op when the
/// server is not running.
pub fn set_phase(phase: &str) {
    if active() {
        *phase_slot().lock().unwrap_or_else(PoisonError::into_inner) = phase.to_string();
        sse_broadcast(
            "phase",
            &format!("{{\"phase\":{}}}", crate::json_string_literal(phase)),
        );
    }
}

/// Announce `n` more search trials about to be trained (no-op unless
/// serving).
pub fn add_planned_trials(n: u64) {
    if active() {
        TRIALS_PLANNED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Record one finished (or failed) search trial (no-op unless serving).
pub fn note_trial_done() {
    if active() {
        TRIALS_DONE.fetch_add(1, Ordering::Relaxed);
    }
}

/// Record one completed feedback round (no-op unless serving).
pub fn note_round_done() {
    if active() {
        ROUNDS_DONE.fetch_add(1, Ordering::Relaxed);
    }
}

fn reset_status() {
    ROUNDS_DONE.store(0, Ordering::Relaxed);
    TRIALS_DONE.store(0, Ordering::Relaxed);
    TRIALS_PLANNED.store(0, Ordering::Relaxed);
    *phase_slot().lock().unwrap_or_else(PoisonError::into_inner) = String::from("starting");
    event_ring()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

// ---------------------------------------------------------------------
// Ledger event ring buffer (feeds /runs).
// ---------------------------------------------------------------------

fn event_ring() -> &'static Mutex<VecDeque<String>> {
    static RING: OnceLock<Mutex<VecDeque<String>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Sink that keeps the last [`EVENT_RING_CAP`] ledger events in memory
/// for `/runs`. Installed by [`start`]; ignores span closes.
struct RingSink;

impl Sink for RingSink {
    fn on_span_close(&self, _event: &SpanEvent) {}
    fn wants_ledger(&self) -> bool {
        true
    }
    fn on_ledger_event(&self, event: &LedgerEvent) {
        let line = event.to_json_line();
        sse_broadcast("ledger", &line);
        let mut ring = event_ring().lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == EVENT_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(line);
    }
    fn finish(&self, _snapshot: &Snapshot) -> std::io::Result<()> {
        Ok(())
    }
    fn target(&self) -> String {
        "live /runs event buffer".into()
    }
}

// ---------------------------------------------------------------------
// Server-Sent-Events clients (feeds /events).
// ---------------------------------------------------------------------

/// One connected `/events` client: its socket (non-blocking) and the
/// chunk-encoded frames queued but not yet accepted by the kernel.
struct SseClient {
    stream: TcpStream,
    pending: Vec<u8>,
}

fn sse_clients() -> &'static Mutex<Vec<SseClient>> {
    static CLIENTS: OnceLock<Mutex<Vec<SseClient>>> = OnceLock::new();
    CLIENTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Connected `/events` client count — the one-relaxed-load gate that
/// keeps [`sse_broadcast`] free when nobody is listening.
static SSE_CLIENT_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Wrap `payload` as one HTTP/1.1 chunk (hex length, CRLF, data, CRLF).
fn chunk(payload: &str) -> Vec<u8> {
    format!("{:x}\r\n{payload}\r\n", payload.len()).into_bytes()
}

/// Queue one SSE frame (`event: <event>\ndata: <data>\n\n`, chunk-
/// encoded) for every connected `/events` client. Emitter threads only
/// append to in-memory buffers here — socket writes happen on the serve
/// thread ([`flush_sse_clients`]). A frame that would push a client's
/// buffer past [`SSE_CLIENT_BUF_CAP`] is dropped for that client and
/// counted in `serve.events_dropped`.
fn sse_broadcast(event: &str, data: &str) {
    if SSE_CLIENT_COUNT.load(Ordering::Relaxed) == 0 {
        return;
    }
    let frame = chunk(&format!("event: {event}\ndata: {data}\n\n"));
    let mut clients = sse_clients().lock().unwrap_or_else(PoisonError::into_inner);
    for client in clients.iter_mut() {
        if client.pending.len() + frame.len() > SSE_CLIENT_BUF_CAP {
            crate::counter_add("serve.events_dropped", 1);
        } else {
            client.pending.extend_from_slice(&frame);
        }
    }
}

/// Write each client's pending bytes as far as the kernel accepts,
/// dropping clients whose connection errored out. Runs on the serve
/// thread every poll cycle.
fn flush_sse_clients() {
    if SSE_CLIENT_COUNT.load(Ordering::Relaxed) == 0 {
        return;
    }
    let mut clients = sse_clients().lock().unwrap_or_else(PoisonError::into_inner);
    clients.retain_mut(|client| {
        while !client.pending.is_empty() {
            match client.stream.write(&client.pending) {
                Ok(0) => return false,
                Ok(n) => {
                    client.pending.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => return false,
            }
        }
        true
    });
    SSE_CLIENT_COUNT.store(clients.len(), Ordering::Relaxed);
}

/// Close every `/events` stream: flush what the kernel will take, send
/// the terminating zero-length chunk (best effort), and shut the
/// sockets down both ways before dropping them, so a blocked reader
/// observes EOF immediately instead of waiting out a TCP timeout.
fn close_sse_clients() {
    let mut clients = sse_clients().lock().unwrap_or_else(PoisonError::into_inner);
    for client in clients.drain(..) {
        let mut stream = client.stream;
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
        if !client.pending.is_empty() {
            let _ = stream.write_all(&client.pending);
        }
        let _ = stream.write_all(b"0\r\n\r\n");
        let _ = stream.flush();
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    SSE_CLIENT_COUNT.store(0, Ordering::Relaxed);
}

/// Answer a `GET /events` request: send the SSE response head plus a
/// comment prologue, then hand the (now non-blocking) socket to the
/// client registry. Later frames are queued by [`sse_broadcast`] and
/// written by the serve thread.
fn open_event_stream(mut stream: TcpStream) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nTransfer-Encoding: chunked\r\nConnection: keep-alive\r\n\r\n"
    )?;
    stream.write_all(&chunk(": aml-telemetry /events\n\n"))?;
    stream.flush()?;
    stream.set_nonblocking(true)?;
    let mut clients = sse_clients().lock().unwrap_or_else(PoisonError::into_inner);
    clients.push(SseClient {
        stream,
        pending: Vec::new(),
    });
    SSE_CLIENT_COUNT.store(clients.len(), Ordering::Relaxed);
    Ok(())
}

// ---------------------------------------------------------------------
// Cross-run history (feeds /history and the dashboard trend section).
// ---------------------------------------------------------------------

fn history_path_slot() -> &'static Mutex<PathBuf> {
    static HISTORY: OnceLock<Mutex<PathBuf>> = OnceLock::new();
    HISTORY.get_or_init(|| Mutex::new(PathBuf::from(crate::history::DEFAULT_HISTORY_PATH)))
}

/// Point the `/history` route at `path` (default
/// [`crate::history::DEFAULT_HISTORY_PATH`]). Set by the harness when
/// `--record` names an explicit history file.
pub fn set_history_path(path: &Path) {
    *history_path_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = path.to_path_buf();
}

/// The history store as a JSON array: one element per record line. The
/// file is read per request (it only grows by whole appended lines);
/// a missing file is an empty history, and a torn trailing line is
/// skipped rather than corrupting the array. `?workload=NAME` keeps
/// only records whose `workload` field matches, and `?tail=N` the last
/// N surviving records (clamped like `/runs?tail=N`; no tail keeps
/// everything).
fn history_json(query: Option<&str>) -> String {
    let path = history_path_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    render_history_json(&path, query)
}

/// The history store at `path` as a JSON array (the `/history` route's
/// body, factored out so other servers — `amlserve` — can serve a
/// history file of their own choosing). Same filter semantics as
/// `/history`: `?workload=NAME` and `?tail=N`.
pub fn render_history_json(path: &Path, query: Option<&str>) -> String {
    let Ok(text) = std::fs::read_to_string(path) else {
        return "[]\n".to_string();
    };
    // Records are single-line objects with a pinned field order, so a
    // workload filter is a substring match on the rendered field.
    let workload_field = query_param(query, "workload")
        .map(|w| format!("\"workload\":{}", crate::json_string_literal(w)));
    let mut records: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{') && l.ends_with('}'))
        .filter(|l| workload_field.as_deref().is_none_or(|f| l.contains(f)))
        .collect();
    if let Some(tail) = query_param(query, "tail").and_then(|v| v.parse::<usize>().ok()) {
        let keep = tail.clamp(1, EVENT_RING_CAP);
        records.drain(..records.len().saturating_sub(keep));
    }
    format!("[{}]\n", records.join(","))
}

// ---------------------------------------------------------------------
// Reusable HTTP plumbing (shared with `amlserve`, which layers a
// read/write job plane on the same std-only socket discipline).
// ---------------------------------------------------------------------

/// One parsed HTTP/1.1 request: request line, headers, and (when
/// `Content-Length` says so) the full body.
#[derive(Debug, Clone, Default)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, `DELETE`, …), as sent.
    pub method: String,
    /// Path component of the request target (before any `?`).
    pub path: String,
    /// Query string (after `?`), when present.
    pub query: Option<String>,
    /// Header name/value pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when there is none).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of `key=...` in this request's query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        query_param(self.query.as_deref(), key)
    }
}

/// Cap on request head bytes (request line + headers).
const MAX_HEAD: usize = 16 * 1024;

/// Read one HTTP/1.1 request from `stream`, including a
/// `Content-Length` body of at most `max_body` bytes. Oversized heads
/// and bodies, malformed request lines, and connections that close
/// mid-request all yield `InvalidData` errors — callers answer with a
/// 4xx and drop the connection. The stream's read timeout bounds how
/// long a silent client can hold the serving thread.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> std::io::Result<HttpRequest> {
    use std::io::{Error, ErrorKind};
    let bad = |msg: &str| Error::new(ErrorKind::InvalidData, msg.to_string());

    let mut buf: Vec<u8> = Vec::with_capacity(2048);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(pos) = find_subslice(&buf, b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(bad("request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q.to_string())),
        None => (target, None),
    };
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > max_body {
        return Err(bad("request body too large"));
    }
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        query,
        headers,
        body,
    })
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Write one complete HTTP/1.1 response with `Connection: close`.
/// `extra_headers` lets callers add e.g. `Retry-After`.
pub fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// The self-contained `/dashboard` page, for servers that reuse it.
pub fn dashboard_html() -> &'static str {
    DASHBOARD_HTML
}

// ---------------------------------------------------------------------
// The HTTP server.
// ---------------------------------------------------------------------

struct ServerState {
    header: RunHeader,
    started: Instant,
}

struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

fn server_slot() -> &'static Mutex<Option<Server>> {
    static SLOT: OnceLock<Mutex<Option<Server>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Bind `addr` (e.g. `127.0.0.1:9898`, or port `0` for an ephemeral
/// port), start the serving thread, install the `/runs` ledger ring
/// sink, and return the bound address. Replaces any previous server.
pub fn start(addr: &str, header: &RunHeader) -> std::io::Result<SocketAddr> {
    stop();
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let state = Arc::new(ServerState {
        header: header.clone(),
        started: Instant::now(),
    });
    let stop_flag = Arc::new(AtomicBool::new(false));
    let stop_seen = Arc::clone(&stop_flag);
    let thread = std::thread::Builder::new()
        .name("aml-telemetry-serve".into())
        .spawn(move || serve_loop(listener, stop_seen, state))?;
    reset_status();
    // The live plane answers /search and /quality from their collectors;
    // arm them here (without clearing — `--search-out`/`--quality-out`
    // may have armed and reset them already during flag preparation).
    crate::searchview::set_active(true);
    crate::quality::set_active(true);
    crate::sink::install(Box::new(RingSink));
    *server_slot().lock().unwrap_or_else(PoisonError::into_inner) = Some(Server {
        addr: bound,
        stop: stop_flag,
        thread: Some(thread),
    });
    ACTIVE.store(true, Ordering::Release);
    Ok(bound)
}

/// The bound address of the running server, if any.
pub fn bound_addr() -> Option<SocketAddr> {
    server_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_ref()
        .map(|s| s.addr)
}

/// Stop the server (if running) and join its thread. Idempotent; in-
/// flight responses complete first, and `/events` clients observe EOF
/// before this returns (the serve thread closes them on its way out;
/// the extra call here covers a thread that died without cleaning up).
pub fn stop() {
    let taken = server_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    if let Some(mut server) = taken {
        ACTIVE.store(false, Ordering::Release);
        server.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = server.thread.take() {
            let _ = thread.join();
        }
        close_sse_clients();
    }
}

fn serve_loop(listener: TcpListener, stop: Arc<AtomicBool>, state: Arc<ServerState>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle_connection(stream, &state);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                flush_sse_clients();
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
        flush_sse_clients();
    }
    // Shutdown path: close streaming clients from the serve thread, so
    // by the time `stop()`'s join returns every `/events` reader has
    // seen the terminating chunk and EOF.
    close_sse_clients();
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // The live plane is read-only: GET requests carry no body.
    let req = read_request(&mut stream, 0)?;
    let (method, path) = (req.method.as_str(), req.path.as_str());
    let query = req.query.as_deref();
    if method == "GET" {
        count_request(path);
    }
    if method == "GET" && path == "/events" {
        // Streaming response: the socket outlives this request.
        return open_event_stream(stream);
    }
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "GET only\n".into())
    } else {
        route(path, query, state)
    };
    write_response(&mut stream, status, content_type, &[], body.as_bytes())
}

/// Bump the per-route request counter for a known route. Unknown paths
/// are not counted, so probes can't grow the registry unboundedly.
fn count_request(path: &str) {
    if matches!(
        path,
        "/metrics"
            | "/healthz"
            | "/runs"
            | "/events"
            | "/history"
            | "/dashboard"
            | "/crit"
            | "/search"
            | "/quality"
    ) {
        crate::counter_add_labeled("serve.requests", path, 1);
    }
}

/// The value of `key=...` in a query string, if present.
fn query_param<'a>(query: Option<&'a str>, key: &str) -> Option<&'a str> {
    query?
        .split('&')
        .find_map(|pair| pair.strip_prefix(key)?.strip_prefix('='))
}

/// `tail=N` from a query string, clamped to `1..=`[`EVENT_RING_CAP`];
/// absent or unparsable values fall back to the full ring.
fn tail_param(query: Option<&str>) -> usize {
    query_param(query, "tail")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(EVENT_RING_CAP)
        .clamp(1, EVENT_RING_CAP)
}

fn route(
    path: &str,
    query: Option<&str>,
    state: &ServerState,
) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            // Registry metrics plus the quality plane's float gauges
            // (`quality_final_acc`, `quality_ece`, `quality_psi`).
            format!(
                "{}{}",
                render_prometheus(&crate::global().snapshot()),
                crate::quality::prometheus_gauges(),
            ),
        ),
        "/healthz" => ("200 OK", "application/json", healthz_json(state)),
        "/runs" => (
            "200 OK",
            "application/json",
            runs_json(state, tail_param(query)),
        ),
        "/history" => ("200 OK", "application/json", history_json(query)),
        "/crit" => ("200 OK", "application/json", crate::crit::live_json()),
        "/search" => (
            "200 OK",
            "application/json",
            crate::searchview::live_json(),
        ),
        "/quality" => (
            "200 OK",
            "application/json",
            crate::quality::live_json(),
        ),
        "/dashboard" => (
            "200 OK",
            "text/html; charset=utf-8",
            DASHBOARD_HTML.to_string(),
        ),
        _ => (
            "404 Not Found",
            "text/plain",
            "not found (try /metrics, /healthz, /runs, /events, /history, /crit, /search, /quality, /dashboard)\n"
                .into(),
        ),
    }
}

// ---------------------------------------------------------------------
// JSON endpoints.
// ---------------------------------------------------------------------

fn healthz_json(state: &ServerState) -> String {
    let phase = phase_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    format!(
        "{{\"status\":\"ok\",\"workload\":{},\"seed\":{},\"phase\":{},\"uptime_s\":{:.3}}}\n",
        crate::json_string_literal(&state.header.workload),
        state.header.seed,
        crate::json_string_literal(&phase),
        state.started.elapsed().as_secs_f64(),
    )
}

fn runs_json(state: &ServerState, tail: usize) -> String {
    let phase = phase_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let ring = event_ring().lock().unwrap_or_else(PoisonError::into_inner);
    let events: Vec<String> = ring
        .iter()
        .skip(ring.len().saturating_sub(tail))
        .cloned()
        .collect();
    drop(ring);
    let snapshot = crate::global().snapshot();
    format!(
        concat!(
            "{{\"run\":{{\"run_id\":{},\"workload\":{},\"seed\":{},\"git\":{}}},",
            "\"progress\":{{\"phase\":{},\"rounds_done\":{},\"trials_done\":{},\"trials_planned\":{}}},",
            "\"metrics\":{{\"spans\":{},\"counters\":{},\"gauges\":{},\"histograms\":{}}},",
            "\"events\":[{}]}}\n"
        ),
        crate::json_string_literal(&state.header.run_id),
        crate::json_string_literal(&state.header.workload),
        state.header.seed,
        crate::json_string_literal(&state.header.git),
        crate::json_string_literal(&phase),
        ROUNDS_DONE.load(Ordering::Relaxed),
        TRIALS_DONE.load(Ordering::Relaxed),
        TRIALS_PLANNED.load(Ordering::Relaxed),
        snapshot.spans.len(),
        snapshot.counters.len(),
        snapshot.gauges.len(),
        snapshot.histograms.len(),
        events.join(","),
    )
}

// ---------------------------------------------------------------------
// Prometheus text exposition.
// ---------------------------------------------------------------------

/// Render `snapshot` in Prometheus text exposition format (v0.0.4).
///
/// * counters / gauges: sanitized name, `base[label]` becomes
///   `base{key="label"}`;
/// * spans: one `aml_span_duration_seconds` summary family labeled by
///   span name, with `quantile="0"`/`"1"` series carrying min/max;
/// * histograms: native histogram families with cumulative
///   `_bucket{le="..."}` series at the log2 bucket upper edges (top
///   bucket folds into `+Inf`), plus `_sum` and `_count`.
///
/// Pure function of the snapshot — pinned byte-for-byte by a golden
/// test, so scrape-side dashboards can rely on the shape.
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();

    let mut last_family = String::new();
    for (name, value) in &snapshot.counters {
        let (metric, label) = prom_name(name);
        emit_type(&mut out, &mut last_family, &metric, "counter");
        let labels = label
            .as_deref()
            .map(|l| format!("{{key=\"{}\"}}", prom_label_escape(l)))
            .unwrap_or_default();
        out.push_str(&format!("{metric}{labels} {value}\n"));
    }

    last_family.clear();
    for (name, value) in &snapshot.gauges {
        let (metric, label) = prom_name(name);
        emit_type(&mut out, &mut last_family, &metric, "gauge");
        let labels = label
            .as_deref()
            .map(|l| format!("{{key=\"{}\"}}", prom_label_escape(l)))
            .unwrap_or_default();
        out.push_str(&format!("{metric}{labels} {value}\n"));
    }

    if !snapshot.spans.is_empty() {
        out.push_str("# TYPE aml_span_duration_seconds summary\n");
        for s in &snapshot.spans {
            let span = prom_label_escape(&s.name);
            out.push_str(&format!(
                "aml_span_duration_seconds{{span=\"{span}\",quantile=\"0\"}} {}\n",
                fmt_f64(s.min_ns as f64 / 1e9)
            ));
            out.push_str(&format!(
                "aml_span_duration_seconds{{span=\"{span}\",quantile=\"1\"}} {}\n",
                fmt_f64(s.max_ns as f64 / 1e9)
            ));
            out.push_str(&format!(
                "aml_span_duration_seconds_sum{{span=\"{span}\"}} {}\n",
                fmt_f64(s.total_secs())
            ));
            out.push_str(&format!(
                "aml_span_duration_seconds_count{{span=\"{span}\"}} {}\n",
                s.calls
            ));
        }
    }

    last_family.clear();
    for h in &snapshot.histograms {
        let (metric, label) = prom_name(&h.name);
        emit_type(&mut out, &mut last_family, &metric, "histogram");
        let key_prefix = label
            .as_deref()
            .map(|l| format!("key=\"{}\",", prom_label_escape(l)))
            .unwrap_or_default();
        let key_only = label
            .as_deref()
            .map(|l| format!("{{key=\"{}\"}}", prom_label_escape(l)))
            .unwrap_or_default();
        let mut cumulative = 0u64;
        for (i, &bucket_count) in h.buckets.iter().enumerate() {
            if bucket_count == 0 {
                continue;
            }
            cumulative += bucket_count;
            let edge = bucket_upper_edge(i);
            if edge == u64::MAX {
                continue; // top bucket is carried by +Inf below
            }
            out.push_str(&format!(
                "{metric}_bucket{{{key_prefix}le=\"{edge}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "{metric}_bucket{{{key_prefix}le=\"+Inf\"}} {}\n",
            h.count
        ));
        out.push_str(&format!("{metric}_sum{key_only} {}\n", h.sum));
        out.push_str(&format!("{metric}_count{key_only} {}\n", h.count));
    }

    out
}

fn emit_type(out: &mut String, last_family: &mut String, metric: &str, kind: &str) {
    if metric != last_family {
        out.push_str(&format!("# TYPE {metric} {kind}\n"));
        last_family.clear();
        last_family.push_str(metric);
    }
}

/// Split `base[label]` into a sanitized Prometheus metric name and the
/// optional label value.
fn prom_name(name: &str) -> (String, Option<String>) {
    let (base, label) = match name.strip_suffix(']').and_then(|s| s.split_once('[')) {
        Some((base, label)) => (base, Some(label.to_string())),
        None => (name, None),
    };
    let mut metric = String::with_capacity(base.len());
    for (i, c) in base.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        metric.push(if ok { c } else { '_' });
    }
    (metric, label)
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
fn prom_label_escape(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Shortest round-trip decimal for a float (Rust's `Display` for `f64`).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::{set_level, test_lock, TelemetryLevel};

    #[test]
    fn prom_name_splits_and_sanitizes() {
        assert_eq!(
            prom_name("netsim.sim.events"),
            ("netsim_sim_events".into(), None)
        );
        assert_eq!(
            prom_name("automl.fit_us[forest]"),
            ("automl_fit_us".into(), Some("forest".into()))
        );
        assert_eq!(prom_name("9lives"), ("_lives".into(), None));
        assert_eq!(
            prom_name("core.labeler.queries[Cross-ALE]"),
            ("core_labeler_queries".into(), Some("Cross-ALE".into()))
        );
    }

    #[test]
    fn render_covers_every_section_with_one_type_line_per_family() {
        let reg = Registry::new();
        reg.counter_add("automl.candidates_trained", 864);
        reg.gauge_set("proc.rss_bytes", 1_048_576);
        reg.span_stat("bench.datagen").record(2_000_000_000);
        reg.histogram_record("automl.fit_us[forest]", 100);
        reg.histogram_record("automl.fit_us[forest]", 1000);
        reg.histogram_record("automl.fit_us[knn]", 7);
        let text = render_prometheus(&reg.snapshot());

        assert!(
            text.contains("# TYPE automl_candidates_trained counter"),
            "{text}"
        );
        assert!(text.contains("automl_candidates_trained 864"), "{text}");
        assert!(text.contains("# TYPE proc_rss_bytes gauge"), "{text}");
        assert!(text.contains("proc_rss_bytes 1048576"), "{text}");
        assert!(
            text.contains("# TYPE aml_span_duration_seconds summary"),
            "{text}"
        );
        assert!(
            text.contains("aml_span_duration_seconds_sum{span=\"bench.datagen\"} 2"),
            "{text}"
        );
        // One TYPE line for the two-label histogram family.
        assert_eq!(
            text.matches("# TYPE automl_fit_us histogram").count(),
            1,
            "{text}"
        );
        assert!(
            text.contains("automl_fit_us_bucket{key=\"forest\",le=\"127\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("automl_fit_us_bucket{key=\"forest\",le=\"1023\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("automl_fit_us_bucket{key=\"forest\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("automl_fit_us_sum{key=\"forest\"} 1100"),
            "{text}"
        );
        assert!(
            text.contains("automl_fit_us_count{key=\"knn\"} 1"),
            "{text}"
        );
        // Every line is either a comment or `name{...} value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ") || line.split(' ').count() == 2,
                "{line}"
            );
        }
    }

    #[test]
    fn huge_observations_fold_into_inf_bucket_only() {
        let reg = Registry::new();
        reg.histogram_record("h", u64::MAX);
        let text = render_prometheus(&reg.snapshot());
        assert!(text.contains("h_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(!text.contains("le=\"18446744073709551615\""), "{text}");
    }

    #[test]
    fn status_setters_are_inert_without_a_server() {
        let _guard = test_lock::hold();
        stop();
        reset_status();
        assert!(!active());
        set_phase("datagen");
        add_planned_trials(10);
        note_trial_done();
        note_round_done();
        assert_eq!(TRIALS_PLANNED.load(Ordering::Relaxed), 0);
        assert_eq!(TRIALS_DONE.load(Ordering::Relaxed), 0);
        assert_eq!(ROUNDS_DONE.load(Ordering::Relaxed), 0);
        assert_eq!(phase_slot().lock().unwrap().as_str(), "starting");
    }

    fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn server_answers_all_routes_end_to_end() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        crate::global().reset();
        let header = RunHeader {
            run_id: "t-s1-p1".into(),
            workload: "test_workload".into(),
            seed: 1,
            git: "abc".into(),
        };
        let addr = start("127.0.0.1:0", &header).unwrap();
        assert!(active());
        assert_eq!(bound_addr(), Some(addr));

        set_phase("strategies");
        add_planned_trials(8);
        note_trial_done();
        note_round_done();
        crate::counter_add("test.serve.counter", 3);
        crate::gauge_set("proc.rss_bytes", 4096);
        crate::ledger::emit_with(|| LedgerEvent::TrialFailed {
            trial: 1,
            rung: 0,
            family: "mlp".into(),
            reason: "error".into(),
        });

        let metrics = http_get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
        assert!(metrics.contains("test_serve_counter 3"), "{metrics}");
        assert!(metrics.contains("proc_rss_bytes 4096"), "{metrics}");

        let health = http_get(addr, "/healthz");
        assert!(health.contains("application/json"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        assert!(
            health.contains("\"workload\":\"test_workload\""),
            "{health}"
        );
        assert!(health.contains("\"phase\":\"strategies\""), "{health}");

        let runs = http_get(addr, "/runs");
        assert!(runs.contains("\"run_id\":\"t-s1-p1\""), "{runs}");
        assert!(runs.contains("\"trials_planned\":8"), "{runs}");
        assert!(runs.contains("\"trials_done\":1"), "{runs}");
        assert!(runs.contains("\"rounds_done\":1"), "{runs}");
        assert!(runs.contains("\"type\":\"trial_failed\""), "{runs}");

        // /crit answers the inactive sentinel when no collector armed.
        let crit = http_get(addr, "/crit");
        assert!(crit.contains("application/json"), "{crit}");
        assert!(crit.contains("{\"active\":false}"), "{crit}");

        // start() armed the search collector, so /search answers live —
        // the emitted ledger event above flowed into it.
        let search = http_get(addr, "/search");
        assert!(search.contains("application/json"), "{search}");
        assert!(search.contains("\"active\":true"), "{search}");
        assert!(search.contains("\"schema_version\":1"), "{search}");
        assert!(search.contains("\"families\":["), "{search}");

        // start() also armed the quality collector; before any quality
        // event it serves an active-but-empty report, and a diagnostics
        // event fills it in live.
        let quality = http_get(addr, "/quality");
        assert!(quality.contains("application/json"), "{quality}");
        assert!(quality.contains("\"active\":true"), "{quality}");
        assert!(quality.contains("\"rounds\":[]"), "{quality}");
        crate::ledger::emit_with(|| LedgerEvent::ModelDiagnostics {
            round: 0,
            strategy: "Random".into(),
            rows: 4,
            classes: vec!["a".into(), "b".into()],
            confusion: vec![vec![2, 0], vec![0, 2]],
            brier: 0.1,
            bin_count: vec![4],
            bin_conf_sum: vec![3.6],
            bin_hit: vec![4],
            ale_band_width: 0.0,
        });
        let quality = http_get(addr, "/quality");
        assert!(quality.contains("\"active\":true"), "{quality}");
        assert!(quality.contains("\"confusion\":[[2,0],[0,2]]"), "{quality}");
        let metrics_with_quality = http_get(addr, "/metrics");
        assert!(
            metrics_with_quality.contains("quality_final_acc 1"),
            "{metrics_with_quality}"
        );

        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        // Per-route request counters land on /metrics; this third
        // /metrics scrape counts itself, unknown paths are not counted.
        let metrics = http_get(addr, "/metrics");
        assert!(
            metrics.contains("serve_requests{key=\"/metrics\"} 3"),
            "{metrics}"
        );
        assert!(
            metrics.contains("serve_requests{key=\"/quality\"} 2"),
            "{metrics}"
        );
        assert!(
            metrics.contains("serve_requests{key=\"/healthz\"} 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("serve_requests{key=\"/crit\"} 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("serve_requests{key=\"/search\"} 1"),
            "{metrics}"
        );
        assert!(!metrics.contains("\"/nope\""), "{metrics}");

        stop();
        assert!(!active());
        assert!(bound_addr().is_none());
        assert!(TcpStream::connect(addr).is_err() || http_get_err(addr));

        // Drain the RingSink installed by start() and disarm the search
        // and quality collectors it armed.
        crate::searchview::set_active(false);
        crate::searchview::reset();
        crate::quality::set_active(false);
        crate::quality::reset();
        crate::sink::finish(&Snapshot::default());
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }

    #[test]
    fn stop_closes_event_stream_clients_promptly() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        let header = RunHeader {
            run_id: "t-sse".into(),
            workload: "sse_eof".into(),
            seed: 1,
            git: "abc".into(),
        };
        let addr = start("127.0.0.1:0", &header).unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /events HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Reading the prologue proves the serve thread registered us.
        let mut buf = [0u8; 4096];
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "no SSE prologue");

        let started = Instant::now();
        stop();
        // The client must observe EOF well within the shutdown deadline,
        // not hang until a TCP timeout.
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) => panic!("expected EOF, got error: {e}"),
            }
        }
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "EOF took {:?}",
            started.elapsed()
        );

        crate::searchview::set_active(false);
        crate::searchview::reset();
        crate::quality::set_active(false);
        crate::quality::reset();
        crate::sink::finish(&Snapshot::default());
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }

    #[test]
    fn read_request_parses_method_headers_and_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(
                stream,
                "POST /submit?dry=1 HTTP/1.1\r\nHost: x\r\nX-Tenant: alice\r\nContent-Length: 11\r\n\r\nhello world"
            )
            .unwrap();
            stream.flush().unwrap();
            // Keep the socket open until the server side finished reading.
            let mut sink = [0u8; 16];
            let _ = stream.read(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let req = read_request(&mut stream, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/submit");
        assert_eq!(req.query.as_deref(), Some("dry=1"));
        assert_eq!(req.query_param("dry"), Some("1"));
        assert_eq!(req.header("x-tenant"), Some("alice"));
        assert_eq!(req.header("X-Tenant"), Some("alice"));
        assert_eq!(req.body, b"hello world");
        drop(stream);
        writer.join().unwrap();
    }

    #[test]
    fn read_request_rejects_oversized_bodies() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(
                stream,
                "POST /submit HTTP/1.1\r\nContent-Length: 64\r\n\r\n"
            )
            .unwrap();
            let mut sink = [0u8; 16];
            let _ = stream.read(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let err = read_request(&mut stream, 16).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("too large"), "{err}");
        drop(stream);
        writer.join().unwrap();
    }

    #[test]
    fn query_params_parse_and_clamp() {
        assert_eq!(tail_param(None), EVENT_RING_CAP);
        assert_eq!(tail_param(Some("tail=5")), 5);
        assert_eq!(tail_param(Some("tail=0")), 1);
        assert_eq!(tail_param(Some("tail=10000")), EVENT_RING_CAP);
        assert_eq!(query_param(Some("a=1&b=2"), "b"), Some("2"));
        assert_eq!(query_param(Some("detail=9"), "tail"), None);
        assert_eq!(query_param(None, "tail"), None);
    }

    #[test]
    fn history_route_filters_by_workload_and_tail() {
        let _guard = test_lock::hold();
        let dir = std::env::temp_dir().join(format!("aml_serve_hist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        let mut text = String::new();
        for i in 0..5 {
            text += &format!("{{\"schema_version\":1,\"workload\":\"alpha\",\"seed\":{i}}}\n");
        }
        text += "{\"schema_version\":1,\"workload\":\"beta\",\"seed\":9}\n";
        text += "{\"torn"; // torn trailing line is skipped
        std::fs::write(&path, text).unwrap();
        set_history_path(&path);

        let all = history_json(None);
        assert_eq!(all.matches("\"workload\"").count(), 6, "{all}");
        let alpha = history_json(Some("workload=alpha"));
        assert_eq!(alpha.matches("\"workload\"").count(), 5, "{alpha}");
        assert!(!alpha.contains("beta"), "{alpha}");
        let tail = history_json(Some("workload=alpha&tail=2"));
        assert_eq!(tail.matches("\"workload\"").count(), 2, "{tail}");
        assert!(
            tail.contains("\"seed\":3") && tail.contains("\"seed\":4"),
            "{tail}"
        );
        // tail=0 clamps up to 1, like /runs.
        let clamped = history_json(Some("tail=0"));
        assert_eq!(clamped.matches("\"workload\"").count(), 1, "{clamped}");
        assert!(clamped.contains("beta"), "{clamped}");

        set_history_path(Path::new(crate::history::DEFAULT_HISTORY_PATH));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// After stop, a lingering listener backlog connection must at least
    /// never answer.
    fn http_get_err(addr: std::net::SocketAddr) -> bool {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            return true;
        };
        let _ = write!(stream, "GET /healthz HTTP/1.1\r\n\r\n");
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let mut response = String::new();
        stream.read_to_string(&mut response).is_err() || response.is_empty()
    }
}
