//! Per-span *self-time* profiling with collapsed-stack (folded) output.
//!
//! The registry's span aggregates answer "how long did `automl.search.run`
//! take in total?" — but a span's total includes every child span nested
//! inside it, so the totals cannot be compared to find the hot code. This
//! module computes **exclusive** (self) time per span stack: the span's
//! wall time minus the wall time of its direct children, attributed to the
//! full `root;child;leaf` stack string. The result is written in the
//! collapsed-stack "folded" format that flamegraph tooling
//! (`flamegraph.pl`, inferno, speedscope) loads directly:
//!
//! ```text
//! bench.strategies;automl.search.run 184023
//! bench.strategies;automl.search.run;core.strategy.refit[Cross-ALE] 9120
//! ```
//!
//! (one line per distinct stack, value = self time in microseconds).
//!
//! Profiling rides on the existing span guards: [`crate::Span`] calls
//! [`on_span_open`]/[`on_span_close`] only when the profiler is active, so
//! with `--profile-out` unset the span hot path pays exactly one extra
//! relaxed atomic load and nothing else (the crate's off-is-free rule).
//! Stacks are tracked per thread; worker-thread spans form their own
//! roots, exactly like per-thread lanes in the Chrome trace.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Whether self-time profiling is collecting. One relaxed load on the
/// span hot path.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Turn the profiler on or off (typically once, from CLI parsing, before
/// any spans open).
pub fn set_active(on: bool) {
    ACTIVE.store(on, Ordering::Release);
}

/// Whether the profiler is collecting (one relaxed atomic load).
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// One open span on this thread's profile stack.
struct Frame {
    name: String,
    /// Total wall time of already-closed direct children, in ns.
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated profile entry for one distinct span stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackStat {
    /// Exclusive (self) wall time, in nanoseconds.
    pub self_ns: u64,
    /// Number of times this exact stack closed.
    pub calls: u64,
}

fn stacks() -> &'static Mutex<HashMap<String, StackStat>> {
    static STACKS: OnceLock<Mutex<HashMap<String, StackStat>>> = OnceLock::new();
    STACKS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Push `name` onto the calling thread's profile stack. Called from span
/// open, only when [`active`].
pub(crate) fn on_span_open(name: &str) {
    STACK.with(|s| {
        s.borrow_mut().push(Frame {
            name: name.to_string(),
            child_ns: 0,
        })
    });
}

/// Pop the top frame, attribute `total_ns` minus its children's time to
/// the full stack string, and charge `total_ns` to the parent frame.
/// Called from span drop, only for spans that pushed a frame.
pub(crate) fn on_span_close(total_ns: u64) {
    let entry = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let frame = stack.pop()?;
        let self_ns = total_ns.saturating_sub(frame.child_ns);
        let mut key = String::new();
        for f in stack.iter() {
            key.push_str(&f.name);
            key.push(';');
        }
        key.push_str(&frame.name);
        if let Some(parent) = stack.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(total_ns);
        }
        Some((key, self_ns))
    });
    let Some((key, self_ns)) = entry else { return };
    let mut map = stacks().lock().unwrap_or_else(PoisonError::into_inner);
    let stat = map.entry(key).or_default();
    stat.self_ns = stat.self_ns.saturating_add(self_ns);
    stat.calls += 1;
}

/// Every aggregated `(stack, stat)` pair, sorted by stack string for
/// deterministic output.
pub fn entries() -> Vec<(String, StackStat)> {
    let map = stacks().lock().unwrap_or_else(PoisonError::into_inner);
    let mut out: Vec<(String, StackStat)> = map.iter().map(|(k, v)| (k.clone(), *v)).collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Drop all aggregated stacks and this thread's open-frame stack (used
/// between test cases and when a bin runs several independent phases).
pub fn reset() {
    stacks()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    STACK.with(|s| s.borrow_mut().clear());
}

/// Render `entries` in collapsed-stack folded format: one
/// `stack;frames;joined <self_us>` line per stack, sorted, value in
/// microseconds. The format is pinned by a golden test.
pub fn render_folded(entries: &[(String, StackStat)]) -> String {
    let mut out = String::new();
    for (stack, stat) in entries {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&(stat.self_ns / 1_000).to_string());
        out.push('\n');
    }
    out
}

/// Write the current profile to `path` in folded format.
pub fn write_folded(path: &Path) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(render_folded(&entries()).as_bytes())?;
    file.flush()
}

/// Self time aggregated per span *name* (summed over every stack whose
/// leaf is that name), sorted descending — the "where did the time
/// actually go" view. Returns `(name, self_ns, calls)`.
pub fn top_self_time(entries: &[(String, StackStat)]) -> Vec<(String, u64, u64)> {
    let mut by_leaf: HashMap<&str, (u64, u64)> = HashMap::new();
    for (stack, stat) in entries {
        let leaf = stack.rsplit(';').next().unwrap_or(stack);
        let e = by_leaf.entry(leaf).or_default();
        e.0 = e.0.saturating_add(stat.self_ns);
        e.1 += stat.calls;
    }
    let mut out: Vec<(String, u64, u64)> = by_leaf
        .into_iter()
        .map(|(name, (self_ns, calls))| (name.to_string(), self_ns, calls))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Render the top-`n` self-time table shown in the run summary.
pub fn render_top_table(entries: &[(String, StackStat)], n: usize) -> String {
    let top = top_self_time(entries);
    if top.is_empty() {
        return String::new();
    }
    let grand: u64 = top.iter().map(|(_, s, _)| *s).sum();
    let mut out = String::from("self time (exclusive, from --profile-out):\n");
    out.push_str(&format!(
        "  {:<44} {:>7} {:>11} {:>6}\n",
        "span", "calls", "self", "%"
    ));
    for (name, self_ns, calls) in top.iter().take(n) {
        let pct = if grand == 0 {
            0.0
        } else {
            *self_ns as f64 * 100.0 / grand as f64
        };
        out.push_str(&format!(
            "  {:<44} {:>7} {:>11} {:>5.1}%\n",
            name,
            calls,
            fmt_ns(*self_ns),
            pct
        ));
    }
    out
}

/// `1.234s` / `56.7ms` / `89µs` — compact duration for the table.
fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{}µs", ns / 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_level, span, test_lock, TelemetryLevel};

    fn run_nested_program() {
        let _root = span("test.profile.root");
        std::thread::sleep(std::time::Duration::from_millis(2));
        for _ in 0..2 {
            let _mid = span("test.profile.mid");
            std::thread::sleep(std::time::Duration::from_millis(1));
            let _leaf = span("test.profile.leaf");
        }
    }

    #[test]
    fn nested_spans_fold_into_stacks_with_self_time() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        crate::global().reset();
        reset();
        set_active(true);
        run_nested_program();
        set_active(false);

        let entries = entries();
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                "test.profile.root",
                "test.profile.root;test.profile.mid",
                "test.profile.root;test.profile.mid;test.profile.leaf",
            ]
        );
        let get = |k: &str| entries.iter().find(|(n, _)| n == k).unwrap().1;
        assert_eq!(get("test.profile.root").calls, 1);
        assert_eq!(get("test.profile.root;test.profile.mid").calls, 2);
        assert_eq!(
            get("test.profile.root;test.profile.mid;test.profile.leaf").calls,
            2
        );

        // Self times sum to the root span's total wall time: exclusive
        // accounting partitions the root, it never double-counts.
        let snap = crate::global().snapshot();
        let root_total = snap
            .spans
            .iter()
            .find(|s| s.name == "test.profile.root")
            .unwrap()
            .total_ns;
        let self_sum: u64 = entries.iter().map(|(_, s)| s.self_ns).sum();
        assert!(
            self_sum <= root_total,
            "self {self_sum} > root {root_total}"
        );
        // The root slept ~2ms outside its children.
        assert!(get("test.profile.root").self_ns >= 1_000_000);

        reset();
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }

    #[test]
    fn inactive_profiler_collects_nothing() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        crate::global().reset();
        reset();
        assert!(!active());
        run_nested_program();
        assert!(entries().is_empty());
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }

    #[test]
    fn top_self_time_aggregates_by_leaf_and_sorts_desc() {
        let entries = vec![
            (
                "a".to_string(),
                StackStat {
                    self_ns: 5_000,
                    calls: 1,
                },
            ),
            (
                "a;b".to_string(),
                StackStat {
                    self_ns: 100_000,
                    calls: 3,
                },
            ),
            (
                "c;b".to_string(),
                StackStat {
                    self_ns: 50_000,
                    calls: 2,
                },
            ),
        ];
        let top = top_self_time(&entries);
        assert_eq!(top[0], ("b".to_string(), 150_000, 5));
        assert_eq!(top[1], ("a".to_string(), 5_000, 1));
        let table = render_top_table(&entries, 10);
        assert!(table.contains("self time"), "{table}");
        assert!(table.contains('b'), "{table}");
    }

    #[test]
    fn folded_rendering_is_stable() {
        let entries = vec![
            (
                "root".to_string(),
                StackStat {
                    self_ns: 1_500,
                    calls: 1,
                },
            ),
            (
                "root;leaf".to_string(),
                StackStat {
                    self_ns: 2_000_000,
                    calls: 4,
                },
            ),
        ];
        assert_eq!(render_folded(&entries), "root 1\nroot;leaf 2000\n");
    }
}
