//! Experiment ledger: typed, versioned ML-level events of a run.
//!
//! Spans and counters (PRs 1–2) describe the *system* — where time and
//! allocations go. The ledger describes the *experiment*: which candidate
//! configurations the search tried and at which halving rung they were
//! eliminated, what the final ensemble is composed of, how accuracy /
//! label budget / suggested regions evolved across feedback rounds, and
//! the provenance of every ALE curve. One [`LedgerEvent`] per fact,
//! serialized as one JSON line with a fixed field order
//! ([`LedgerEvent::to_json_line`]).
//!
//! ## Determinism
//!
//! Ledger events carry **no wall-clock or thread identity** — timing
//! lives in spans and histograms. Trial ids are the sequential sampling
//! indices assigned before any parallel work starts, so the multiset of
//! ledger lines is identical whether the search runs on 1 or N threads;
//! sorting the lines yields byte-identical content. The determinism test
//! in `aml-automl` relies on this, which makes the ledger double as a
//! correctness oracle for the parallel search.
//!
//! ## Off-is-free
//!
//! Emission is gated on a dedicated atomic ([`active`]) that is only set
//! when a ledger-consuming sink is installed. [`emit_with`] takes a
//! closure so argument construction (config debug strings, band copies)
//! is skipped entirely when no ledger sink is listening.
//!
//! ## Versioning
//!
//! [`LEDGER_SCHEMA_VERSION`] is stamped into the ledger file header and
//! bumped on any breaking change to a line shape (field rename/removal,
//! semantic change). Adding a new event type or a new trailing field is
//! backward compatible and does not bump the version. The golden test in
//! `aml-bench` pins every line shape.

use crate::registry::Snapshot;
use crate::sink::{json_str, RunHeader, Sink, SpanEvent};
use std::fmt::Write as _;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Version of the ledger line shapes; stamped into the file header and
/// pinned by the `ledger_golden` test. Bump on breaking changes only.
pub const LEDGER_SCHEMA_VERSION: u64 = 1;

/// A typed hyperparameter value as sampled for one trial. Rendered into
/// the `trial_started` line's trailing `params` object: `Int` as a bare
/// integer, `Float` via the shortest round-trip form, `Cat` as a string
/// tag matching one of the dimension's declared `choices`.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Integer-valued dimension (tree depth, neighbour count, …).
    Int(i64),
    /// Real-valued dimension (regularization strength, smoothing, …).
    Float(f64),
    /// Categorical dimension (split criterion, weighting scheme, …).
    Cat(String),
}

impl ParamValue {
    pub(crate) fn to_json(&self) -> String {
        match self {
            ParamValue::Int(v) => format!("{v}"),
            ParamValue::Float(v) => json_f64(*v),
            ParamValue::Cat(tag) => json_str(tag),
        }
    }
}

/// One declared hyperparameter dimension of a model family, as described
/// by the once-per-run `search_space` ledger event.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceDim {
    /// Dimension name; matches the key in each trial's `params` map.
    pub name: String,
    /// Value kind: `int`, `float`, or `cat`.
    pub kind: String,
    /// Sampling scale: `linear` or `log10` (uniform in log-space).
    pub scale: String,
    /// Inclusive lower bound of the declared range (0 for `cat`).
    pub lo: f64,
    /// Inclusive upper bound of the declared range (0 for `cat`).
    pub hi: f64,
    /// Declared category tags (empty for numeric dimensions).
    pub choices: Vec<String>,
}

/// The declared search space of one model family.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceFamily {
    /// Model family name (matches `trial_*` lines).
    pub family: String,
    /// Declared dimensions in sampling order.
    pub dims: Vec<SpaceDim>,
}

/// One member of a selected ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleMember {
    /// Trial id of the leaderboard candidate (joins with `trial_*` lines).
    pub trial: u64,
    /// Model family name (`forest`, `logreg`, …).
    pub family: String,
    /// Ensemble weight (greedy-selection pick count).
    pub weight: f64,
    /// Validation score of the member on the inner split.
    pub score: f64,
}

/// One ML-level fact about the run. See the module docs for the
/// determinism contract (no wall time, no thread ids).
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerEvent {
    /// A candidate configuration enters training at a halving rung.
    TrialStarted {
        /// Stable trial id: the sequential sampling index of the config.
        trial: u64,
        /// Successive-halving rung (0 = first, smallest data fraction).
        rung: u64,
        /// Model family name.
        family: String,
        /// Human-readable hyperparameter dump of the configuration.
        config: String,
        /// Typed hyperparameter map in the family's declared dimension
        /// order. Trailing field added without a schema bump (see the
        /// module docs' versioning policy); joins with the run's
        /// `search_space` event for range/scale context.
        params: Vec<(String, ParamValue)>,
    },
    /// A candidate finished training and was scored on the rung's
    /// validation data.
    TrialFinished {
        /// Stable trial id (matches the `TrialStarted` line).
        trial: u64,
        /// Successive-halving rung.
        rung: u64,
        /// Model family name.
        family: String,
        /// Validation accuracy at this rung.
        score: f64,
    },
    /// A candidate failed to train (degenerate subsample, solver error,
    /// panic, budget timeout, or a non-finite score).
    TrialFailed {
        /// Stable trial id.
        trial: u64,
        /// Successive-halving rung.
        rung: u64,
        /// Model family name.
        family: String,
        /// Failure class: `error` (fit/scoring returned an error),
        /// `panic` (the sandbox caught an unwind), `timeout` (the
        /// `--max-trial-time` budget expired), or `nonfinite` (the
        /// validation score was NaN/inf). Trailing field added without a
        /// schema bump (see the module docs' versioning policy).
        reason: String,
    },
    /// The greedy ensemble selection committed to its final members.
    EnsembleSelected {
        /// Ensemble validation score on the inner split.
        val_score: f64,
        /// The selected members with their weights.
        members: Vec<EnsembleMember>,
    },
    /// One feedback round (strategy application) completed.
    RoundCompleted {
        /// Process-wide round sequence number (see [`next_round`]).
        round: u64,
        /// Strategy name (`Within-ALE`, `Random`, …).
        strategy: String,
        /// Mean accuracy across the round's test sets.
        acc_mean: f64,
        /// Minimum accuracy across the round's test sets.
        acc_min: f64,
        /// Maximum accuracy across the round's test sets.
        acc_max: f64,
        /// Labeled points added to the training set this round.
        points_added: u64,
        /// Number of suggested half-space intervals this round.
        regions: u64,
        /// Mean ALE cross-model std over all grid cells (0 if no ALE).
        ale_std_mean: f64,
        /// Max ALE cross-model std over all grid cells (0 if no ALE).
        ale_std_max: f64,
    },
    /// The feedback loop suggested under-explored regions for a feature,
    /// with the ALE mean±std band they were derived from.
    RegionSuggested {
        /// Feature index.
        feature: u64,
        /// Feature name.
        name: String,
        /// Std threshold above which a cell counts as uncertain.
        threshold: f64,
        /// Suggested `[lo, hi]` intervals in feature units.
        intervals: Vec<(f64, f64)>,
        /// ALE grid cell centers.
        grid: Vec<f64>,
        /// Cross-model mean ALE value per cell.
        mean: Vec<f64>,
        /// Cross-model std of the ALE value per cell.
        std: Vec<f64>,
    },
    /// The declared search space: every family's hyperparameter
    /// dimensions with their ranges, scales, and categorical choices.
    /// Emitted once per run, before the first trial (see
    /// [`claim_search_space_emission`]).
    SearchSpace {
        /// One entry per model family, in registration order.
        families: Vec<SpaceFamily>,
    },
    /// Provenance of one computed interpretability curve.
    AleCurveComputed {
        /// Feature index the curve explains.
        feature: u64,
        /// Name of the explained model.
        model: String,
        /// Curve method (`ale` or `pdp`).
        method: String,
        /// Number of grid points.
        grid_points: u64,
        /// Number of data rows the curve was computed over.
        rows: u64,
    },
    /// Per-feature distribution summary of one split (train/eval) at one
    /// feedback round, feeding the quality plane's drift scores.
    /// Additive event type, no schema bump (see the versioning policy).
    DatasetProfile {
        /// Process-wide round sequence number.
        round: u64,
        /// Split name (`train` or `eval`).
        split: String,
        /// Rows in the split.
        rows: u64,
        /// Rows per class (class balance), class-index order.
        class_counts: Vec<u64>,
        /// Per-feature summaries with fixed-edge histograms.
        features: Vec<crate::quality::FeatureProfile>,
    },
    /// Raw model-quality tallies of one feedback round, computed from
    /// the refit ensemble's eval predictions. Carries only counts and
    /// sums; accuracy/PRF1/ECE are derived on the read side so a
    /// recompute from the ledger is byte-identical. Additive event
    /// type, no schema bump.
    ModelDiagnostics {
        /// Process-wide round sequence number.
        round: u64,
        /// Strategy applied this round.
        strategy: String,
        /// Eval rows the tallies cover.
        rows: u64,
        /// Class names, confusion-matrix order.
        classes: Vec<String>,
        /// Confusion matrix, `confusion[true][pred]`.
        confusion: Vec<Vec<u64>>,
        /// Multiclass Brier score (mean over rows of the squared
        /// probability-vector error).
        brier: f64,
        /// Predictions per reliability confidence bin.
        bin_count: Vec<u64>,
        /// Sum of predicted max-probabilities per confidence bin.
        bin_conf_sum: Vec<f64>,
        /// Correct predictions per confidence bin.
        bin_hit: Vec<u64>,
        /// Mean ALE ±σ band width (2σ) over all grid cells; 0 without
        /// ALE feedback.
        ale_band_width: f64,
    },
}

/// Format an `f64` for the ledger: shortest round-trip representation
/// (`Display`), which is deterministic across platforms; non-finite
/// values become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_u64_array(vs: &[u64]) -> String {
    let mut out = String::with_capacity(2 + vs.len() * 4);
    out.push('[');
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

fn json_f64_array(vs: &[f64]) -> String {
    let mut out = String::with_capacity(2 + vs.len() * 8);
    out.push('[');
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_f64(*v));
    }
    out.push(']');
    out
}

impl LedgerEvent {
    /// Serialize as one JSON line (no trailing newline) with fixed field
    /// order. Pinned by the `ledger_golden` test in `aml-bench`.
    pub fn to_json_line(&self) -> String {
        match self {
            LedgerEvent::TrialStarted {
                trial,
                rung,
                family,
                config,
                params,
            } => {
                let mut out = format!(
                    "{{\"type\":\"trial_started\",\"trial\":{trial},\"rung\":{rung},\"family\":{},\"config\":{},\"params\":{{",
                    json_str(family),
                    json_str(config),
                );
                for (i, (name, value)) in params.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{}", json_str(name), value.to_json());
                }
                out.push_str("}}");
                out
            }
            LedgerEvent::TrialFinished {
                trial,
                rung,
                family,
                score,
            } => format!(
                "{{\"type\":\"trial_finished\",\"trial\":{trial},\"rung\":{rung},\"family\":{},\"score\":{}}}",
                json_str(family),
                json_f64(*score),
            ),
            LedgerEvent::TrialFailed {
                trial,
                rung,
                family,
                reason,
            } => format!(
                "{{\"type\":\"trial_failed\",\"trial\":{trial},\"rung\":{rung},\"family\":{},\"reason\":{}}}",
                json_str(family),
                json_str(reason),
            ),
            LedgerEvent::EnsembleSelected { val_score, members } => {
                let mut out = format!(
                    "{{\"type\":\"ensemble_selected\",\"val_score\":{},\"members\":[",
                    json_f64(*val_score)
                );
                for (i, m) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"trial\":{},\"family\":{},\"weight\":{},\"score\":{}}}",
                        m.trial,
                        json_str(&m.family),
                        json_f64(m.weight),
                        json_f64(m.score),
                    );
                }
                out.push_str("]}");
                out
            }
            LedgerEvent::RoundCompleted {
                round,
                strategy,
                acc_mean,
                acc_min,
                acc_max,
                points_added,
                regions,
                ale_std_mean,
                ale_std_max,
            } => format!(
                "{{\"type\":\"round_completed\",\"round\":{round},\"strategy\":{},\"acc_mean\":{},\"acc_min\":{},\"acc_max\":{},\"points_added\":{points_added},\"regions\":{regions},\"ale_std_mean\":{},\"ale_std_max\":{}}}",
                json_str(strategy),
                json_f64(*acc_mean),
                json_f64(*acc_min),
                json_f64(*acc_max),
                json_f64(*ale_std_mean),
                json_f64(*ale_std_max),
            ),
            LedgerEvent::RegionSuggested {
                feature,
                name,
                threshold,
                intervals,
                grid,
                mean,
                std,
            } => {
                let mut ivals = String::from("[");
                for (i, (lo, hi)) in intervals.iter().enumerate() {
                    if i > 0 {
                        ivals.push(',');
                    }
                    let _ = write!(ivals, "[{},{}]", json_f64(*lo), json_f64(*hi));
                }
                ivals.push(']');
                format!(
                    "{{\"type\":\"region_suggested\",\"feature\":{feature},\"name\":{},\"threshold\":{},\"intervals\":{ivals},\"grid\":{},\"mean\":{},\"std\":{}}}",
                    json_str(name),
                    json_f64(*threshold),
                    json_f64_array(grid),
                    json_f64_array(mean),
                    json_f64_array(std),
                )
            }
            LedgerEvent::SearchSpace { families } => {
                let mut out = String::from("{\"type\":\"search_space\",\"families\":[");
                for (i, fam) in families.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{{\"family\":{},\"dims\":[", json_str(&fam.family));
                    for (j, d) in fam.dims.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let mut choices = String::from("[");
                        for (k, c) in d.choices.iter().enumerate() {
                            if k > 0 {
                                choices.push(',');
                            }
                            choices.push_str(&json_str(c));
                        }
                        choices.push(']');
                        let _ = write!(
                            out,
                            "{{\"name\":{},\"kind\":{},\"scale\":{},\"lo\":{},\"hi\":{},\"choices\":{choices}}}",
                            json_str(&d.name),
                            json_str(&d.kind),
                            json_str(&d.scale),
                            json_f64(d.lo),
                            json_f64(d.hi),
                        );
                    }
                    out.push_str("]}");
                }
                out.push_str("]}");
                out
            }
            LedgerEvent::AleCurveComputed {
                feature,
                model,
                method,
                grid_points,
                rows,
            } => format!(
                "{{\"type\":\"ale_curve\",\"feature\":{feature},\"model\":{},\"method\":{},\"grid_points\":{grid_points},\"rows\":{rows}}}",
                json_str(model),
                json_str(method),
            ),
            LedgerEvent::DatasetProfile {
                round,
                split,
                rows,
                class_counts,
                features,
            } => {
                let mut out = format!(
                    "{{\"type\":\"dataset_profile\",\"round\":{round},\"split\":{},\"rows\":{rows},\"class_counts\":{},\"features\":[",
                    json_str(split),
                    json_u64_array(class_counts),
                );
                for (i, f) in features.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&f.to_json());
                }
                out.push_str("]}");
                out
            }
            LedgerEvent::ModelDiagnostics {
                round,
                strategy,
                rows,
                classes,
                confusion,
                brier,
                bin_count,
                bin_conf_sum,
                bin_hit,
                ale_band_width,
            } => {
                let mut out = format!(
                    "{{\"type\":\"model_diagnostics\",\"round\":{round},\"strategy\":{},\"rows\":{rows},\"classes\":[",
                    json_str(strategy),
                );
                for (i, c) in classes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_str(c));
                }
                out.push_str("],\"confusion\":[");
                for (i, row) in confusion.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_u64_array(row));
                }
                let _ = write!(
                    out,
                    "],\"brier\":{},\"bin_count\":{},\"bin_conf_sum\":{},\"bin_hit\":{},\"ale_band_width\":{}}}",
                    json_f64(*brier),
                    json_u64_array(bin_count),
                    json_f64_array(bin_conf_sum),
                    json_u64_array(bin_hit),
                    json_f64(*ale_band_width),
                );
                out
            }
        }
    }
}

/// Whether any installed sink consumes ledger events — the hot-path gate
/// for emission (one relaxed atomic load).
static LEDGER_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Whether a ledger-consuming sink is installed.
#[inline]
pub fn active() -> bool {
    LEDGER_ACTIVE.load(Ordering::Relaxed)
}

pub(crate) fn set_active(on: bool) {
    LEDGER_ACTIVE.store(on, Ordering::Release);
}

/// Deliver `event` to every installed ledger-consuming sink. No-op when
/// none is installed; prefer [`emit_with`] when building the event
/// allocates.
pub fn emit(event: &LedgerEvent) {
    if active() {
        crate::searchview::observe(event);
        crate::quality::observe(event);
        crate::sink::emit_ledger_event(event);
    }
}

/// Build (lazily) and deliver a ledger event. The closure only runs when
/// a ledger sink is installed, so emission sites stay allocation-free in
/// the common no-sink case.
#[inline]
pub fn emit_with(f: impl FnOnce() -> LedgerEvent) {
    if active() {
        let event = f();
        crate::searchview::observe(&event);
        crate::quality::observe(&event);
        crate::sink::emit_ledger_event(&event);
    }
}

/// Whether this run's `search_space` event has already been emitted.
/// The search loop runs once per strategy/round within a workload, but
/// the declared space never changes — one descriptor line per run keeps
/// the ledger lean and the 1-vs-N-worker sorted-line identity intact.
static SEARCH_SPACE_EMITTED: AtomicBool = AtomicBool::new(false);

/// Claim the right to emit this run's single `search_space` event.
/// Returns `true` exactly once per run (until [`reset_search_space_gate`]).
/// Callers must only claim while [`active`] — claiming with no sink
/// listening would silently swallow the event for the armed run.
pub fn claim_search_space_emission() -> bool {
    SEARCH_SPACE_EMITTED
        .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
}

/// Mark the `search_space` event as already emitted without claiming it —
/// the `--resume` path: the checkpointed run's ledger already carries the
/// line, and appending a second copy would break resume byte-identity.
pub fn mark_search_space_emitted() {
    SEARCH_SPACE_EMITTED.store(true, Ordering::Relaxed);
}

/// Re-arm the once-per-run `search_space` gate; called when sinks finish
/// so the next run in the same process gets its own descriptor line.
pub fn reset_search_space_gate() {
    SEARCH_SPACE_EMITTED.store(false, Ordering::Relaxed);
}

/// Process-wide feedback-round sequence counter (see [`next_round`]).
static NEXT_ROUND: AtomicU64 = AtomicU64::new(0);

/// Next process-wide feedback-round sequence number (0, 1, 2, …).
/// Strategies run sequentially within a workload, so this is
/// deterministic for a given run.
pub fn next_round() -> u64 {
    NEXT_ROUND.fetch_add(1, Ordering::Relaxed)
}

/// Fast-forward the round counter so a `--resume`d run continues the
/// sequence where the checkpointed run left off — round numbers in the
/// appended ledger lines must match the uninterrupted run's.
pub fn set_next_round(next: u64) {
    NEXT_ROUND.store(next, Ordering::Relaxed);
}

/// Ledger sink: one JSON line per [`LedgerEvent`], preceded by a header
/// line identifying the run and the schema version:
///
/// ```text
/// {"type":"ledger","schema_version":1,"run_id":"…","workload":"…","seed":1,"git":"…"}
/// ```
///
/// Ignores span closes entirely; write failures are counted in the
/// `telemetry.events_dropped` counter rather than crashing the run.
pub struct LedgerJsonlSink {
    target: String,
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl LedgerJsonlSink {
    /// Create (truncate) `path` and write the ledger header line.
    pub fn create(path: &Path, header: &RunHeader) -> std::io::Result<LedgerJsonlSink> {
        let file: Box<dyn Write + Send> = Box::new(std::fs::File::create(path)?);
        LedgerJsonlSink::from_writer(file, &path.display().to_string(), header)
    }

    /// Reopen an existing ledger for append, without writing a header —
    /// the resume path: the original run's header (and the rounds kept by
    /// the checkpoint) are already in the file. The caller is responsible
    /// for truncating the file to the checkpoint's recorded length first.
    pub fn append(path: &Path) -> std::io::Result<LedgerJsonlSink> {
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(LedgerJsonlSink {
            target: path.display().to_string(),
            writer: Mutex::new(BufWriter::new(Box::new(file))),
        })
    }

    /// Wrap an arbitrary writer (tests inject failing writers here).
    pub fn from_writer(
        writer: Box<dyn Write + Send>,
        target: &str,
        header: &RunHeader,
    ) -> std::io::Result<LedgerJsonlSink> {
        let mut writer = BufWriter::new(writer);
        writeln!(
            writer,
            "{{\"type\":\"ledger\",\"schema_version\":{LEDGER_SCHEMA_VERSION},\"run_id\":{},\"workload\":{},\"seed\":{},\"git\":{}}}",
            json_str(&header.run_id),
            json_str(&header.workload),
            header.seed,
            json_str(&header.git),
        )?;
        Ok(LedgerJsonlSink {
            target: target.to_string(),
            writer: Mutex::new(writer),
        })
    }
}

impl Sink for LedgerJsonlSink {
    fn on_span_close(&self, _event: &SpanEvent) {}

    fn on_ledger_event(&self, event: &LedgerEvent) {
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if writeln!(w, "{}", event.to_json_line()).is_err() {
            crate::counter_add("telemetry.events_dropped", 1);
        }
    }

    fn wants_ledger(&self) -> bool {
        true
    }

    fn flush_now(&self) -> std::io::Result<()> {
        self.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush()
    }

    fn finish(&self, _snapshot: &Snapshot) -> std::io::Result<()> {
        self.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush()
    }

    fn target(&self) -> String {
        self.target.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let line = LedgerEvent::TrialFinished {
            trial: 1,
            rung: 0,
            family: "mlp".into(),
            score: f64::NAN,
        }
        .to_json_line();
        assert!(line.contains("\"score\":null"), "{line}");
    }

    #[test]
    fn trial_started_params_render_as_trailing_typed_map() {
        let line = LedgerEvent::TrialStarted {
            trial: 7,
            rung: 0,
            family: "knn".into(),
            config: "KnnConfig { k: 5 }".into(),
            params: vec![
                ("k".into(), ParamValue::Int(5)),
                ("weights".into(), ParamValue::Cat("distance".into())),
                ("smoothing".into(), ParamValue::Float(1e-7)),
            ],
        }
        .to_json_line();
        assert_eq!(
            line,
            "{\"type\":\"trial_started\",\"trial\":7,\"rung\":0,\"family\":\"knn\",\"config\":\"KnnConfig { k: 5 }\",\"params\":{\"k\":5,\"weights\":\"distance\",\"smoothing\":0.0000001}}"
        );
    }

    #[test]
    fn search_space_line_describes_every_dimension() {
        let line = LedgerEvent::SearchSpace {
            families: vec![SpaceFamily {
                family: "knn".into(),
                dims: vec![
                    SpaceDim {
                        name: "k".into(),
                        kind: "int".into(),
                        scale: "linear".into(),
                        lo: 1.0,
                        hi: 25.0,
                        choices: vec![],
                    },
                    SpaceDim {
                        name: "weights".into(),
                        kind: "cat".into(),
                        scale: "linear".into(),
                        lo: 0.0,
                        hi: 0.0,
                        choices: vec!["uniform".into(), "distance".into()],
                    },
                ],
            }],
        }
        .to_json_line();
        assert_eq!(
            line,
            "{\"type\":\"search_space\",\"families\":[{\"family\":\"knn\",\"dims\":[{\"name\":\"k\",\"kind\":\"int\",\"scale\":\"linear\",\"lo\":1,\"hi\":25,\"choices\":[]},{\"name\":\"weights\",\"kind\":\"cat\",\"scale\":\"linear\",\"lo\":0,\"hi\":0,\"choices\":[\"uniform\",\"distance\"]}]}]}"
        );
    }

    #[test]
    fn search_space_gate_claims_once_until_reset() {
        let _guard = crate::test_lock::hold();
        reset_search_space_gate();
        assert!(claim_search_space_emission());
        assert!(!claim_search_space_emission(), "second claim must fail");
        reset_search_space_gate();
        assert!(claim_search_space_emission(), "reset re-arms the gate");
        mark_search_space_emitted();
        reset_search_space_gate();
    }

    #[test]
    fn floats_use_shortest_round_trip_form() {
        assert_eq!(json_f64(0.25), "0.25");
        assert_eq!(json_f64(1.0), "1");
        assert_eq!(json_f64_array(&[0.5, 2.0]), "[0.5,2]");
    }

    #[test]
    fn ledger_sink_writes_header_and_event_lines() {
        let dir = std::env::temp_dir().join(format!("aml_ledger_sink_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let header = RunHeader {
            run_id: "w-s1-p1".into(),
            workload: "w".into(),
            seed: 1,
            git: "abc".into(),
        };
        let sink = LedgerJsonlSink::create(&path, &header).unwrap();
        sink.on_ledger_event(&LedgerEvent::TrialFailed {
            trial: 3,
            rung: 1,
            family: "mlp".into(),
            reason: "error".into(),
        });
        sink.finish(&Snapshot::default()).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert_eq!(
            lines[0],
            "{\"type\":\"ledger\",\"schema_version\":1,\"run_id\":\"w-s1-p1\",\"workload\":\"w\",\"seed\":1,\"git\":\"abc\"}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"trial_failed\",\"trial\":3,\"rung\":1,\"family\":\"mlp\",\"reason\":\"error\"}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Fails every write; exercises the ledger's drop accounting.
    struct FailingWriter;

    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("disk full"))
        }
    }

    #[test]
    fn failed_ledger_writes_count_as_dropped_events() {
        let _guard = crate::test_lock::hold();
        crate::set_level(crate::TelemetryLevel::Summary);
        crate::global().reset();
        // The header line fits in the BufWriter's buffer, so creation
        // succeeds even over a dead writer — same as the event sink.
        let sink =
            LedgerJsonlSink::from_writer(Box::new(FailingWriter), "failing", &RunHeader::default())
                .unwrap();
        // An event larger than the buffer forces a real write — which
        // fails and must be accounted, not silently lost.
        sink.on_ledger_event(&LedgerEvent::TrialFailed {
            trial: 1,
            rung: 0,
            family: "x".repeat(16 * 1024),
            reason: "error".into(),
        });
        let snap = crate::global().snapshot();
        assert!(
            snap.counters
                .iter()
                .any(|(n, v)| n == "telemetry.events_dropped" && *v >= 1),
            "{:?}",
            snap.counters
        );
        assert!(sink.finish(&snap).is_err(), "flush over a dead writer");
        crate::set_level(crate::TelemetryLevel::Off);
        crate::global().reset();
    }

    #[test]
    fn emit_with_skips_closure_when_inactive() {
        let _guard = crate::test_lock::hold();
        assert!(!active(), "no ledger sink should be installed here");
        let mut ran = false;
        emit_with(|| {
            ran = true;
            LedgerEvent::TrialFailed {
                trial: 0,
                rung: 0,
                family: "x".into(),
                reason: "error".into(),
            }
        });
        assert!(!ran, "closure must not run without a ledger sink");
    }
}
