//! Cross-run perf/accuracy history: an append-only JSONL store.
//!
//! Every other telemetry surface sees **one run at a time** — the
//! manifest, the BENCH record, the ledger, and the live plane all start
//! from zero when the process does. The history store is the first
//! cross-run surface: one [`HistoryRecord`] line per completed run,
//! appended to `results/history/history.jsonl` (committed alongside the
//! frozen baselines), so `perfgate --against-history N` can gate against
//! the rolling median of the last N runs instead of a single frozen
//! file, and the `/dashboard` trend section can plot wall time and final
//! accuracy across commits.
//!
//! ## Record shape
//!
//! One JSON object per line, fixed field order, shortest round-trip
//! floats (same discipline as the ledger):
//!
//! ```text
//! {"type":"history","schema_version":1,"workload":"table1_scream",
//!  "seed":11,"git":"…","source":"run","wall_time_s":12.3,
//!  "top_span_total_s":11.8,"peak_rss_bytes":73400320,
//!  "alloc_peak_bytes":0,"final_acc":0.91,"trials_finished":120,
//!  "trials_failed":3,"rounds":12}
//! ```
//!
//! Perf fields come from the BENCH record; `final_acc` and the
//! trial/failure/round counts come from the ledger summary
//! (`aml_core::summary`). `final_acc` is `null` when the run completed
//! no feedback rounds (the figure bins, for instance).
//!
//! ## Versioning and off-is-free
//!
//! [`HISTORY_SCHEMA_VERSION`] is stamped into every line and bumped only
//! on breaking shape changes; consumers skip lines with unknown
//! versions. Nothing in this module runs unless `--record` is given —
//! no thread, no allocation, no file handle.

use std::io::Write;
use std::path::Path;

/// Version of the history line shape; stamped into every record. Bump on
/// breaking changes only (field rename/removal, semantic change).
pub const HISTORY_SCHEMA_VERSION: u64 = 1;

/// Where history records land unless a path is given explicitly — both
/// for `--record` (the writer) and the `/history` route (the reader).
pub const DEFAULT_HISTORY_PATH: &str = "results/history/history.jsonl";

/// One completed run, as remembered across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Workload name (joins records of the same benchmark).
    pub workload: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Build git describe.
    pub git: String,
    /// Who appended the record: `run` (a workload bin's `--record`) or
    /// `perfgate` (the median of a gate run).
    pub source: String,
    /// Wall-clock duration of the run, seconds.
    pub wall_time_s: f64,
    /// Total seconds across the top-level `bench.*` phase spans.
    pub top_span_total_s: f64,
    /// Peak resident set size observed, bytes (0 when unknown).
    pub peak_rss_bytes: u64,
    /// Peak live heap bytes (0 unless built with `alloc-track`).
    pub alloc_peak_bytes: u64,
    /// Mean accuracy of the last completed feedback round; `None` when
    /// the run had no feedback rounds (serialized as JSON `null`).
    pub final_acc: Option<f64>,
    /// `trial_finished` ledger events observed.
    pub trials_finished: u64,
    /// `trial_failed` ledger events observed.
    pub trials_failed: u64,
    /// `round_completed` ledger events observed.
    pub rounds: u64,
    /// Expected Calibration Error of the last feedback round's model
    /// diagnostics; `None` when the run emitted none (serialized as
    /// JSON `null`). Trailing field added without a schema bump —
    /// records written before it simply parse as `None`.
    pub ece: Option<f64>,
}

/// Shortest round-trip float; non-finite values become `null` (the
/// ledger's convention).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl HistoryRecord {
    /// Serialize as one JSON line (no trailing newline) with fixed field
    /// order, pinned by the golden test in `aml-bench`.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"type\":\"history\",\"schema_version\":{HISTORY_SCHEMA_VERSION},\"workload\":{},\"seed\":{},\"git\":{},\"source\":{},\"wall_time_s\":{},\"top_span_total_s\":{},\"peak_rss_bytes\":{},\"alloc_peak_bytes\":{},\"final_acc\":{},\"trials_finished\":{},\"trials_failed\":{},\"rounds\":{},\"ece\":{}}}",
            crate::json_string_literal(&self.workload),
            self.seed,
            crate::json_string_literal(&self.git),
            crate::json_string_literal(&self.source),
            json_f64(self.wall_time_s),
            json_f64(self.top_span_total_s),
            self.peak_rss_bytes,
            self.alloc_peak_bytes,
            self.final_acc.map_or("null".to_string(), json_f64),
            self.trials_finished,
            self.trials_failed,
            self.rounds,
            self.ece.map_or("null".to_string(), json_f64),
        )
    }

    /// Append this record to `path` as one line, creating the parent
    /// directory if needed. The store is append-only: existing lines are
    /// never rewritten, so concurrent readers (the `/history` route) only
    /// ever see whole records plus possibly a torn trailing line, which
    /// they skip.
    ///
    /// Safe under concurrent writers: the line (newline included) goes
    /// out as a single `write` on an `O_APPEND` handle, so the kernel
    /// positions each write atomically at the current end of file and two
    /// runs finishing together cannot interleave bytes within a line.
    /// (`writeln!` would issue the body and the newline as separate
    /// syscalls, which is exactly the interleaving window this avoids.)
    pub fn append(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut line = self.to_json_line();
        line.push('\n');
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(line.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HistoryRecord {
        HistoryRecord {
            workload: "table1_scream".into(),
            seed: 11,
            git: "abc1234".into(),
            source: "run".into(),
            wall_time_s: 12.5,
            top_span_total_s: 11.25,
            peak_rss_bytes: 73_400_320,
            alloc_peak_bytes: 0,
            final_acc: Some(0.91),
            trials_finished: 120,
            trials_failed: 3,
            rounds: 12,
            ece: Some(0.05),
        }
    }

    #[test]
    fn line_shape_is_pinned() {
        assert_eq!(
            sample().to_json_line(),
            "{\"type\":\"history\",\"schema_version\":1,\"workload\":\"table1_scream\",\
             \"seed\":11,\"git\":\"abc1234\",\"source\":\"run\",\"wall_time_s\":12.5,\
             \"top_span_total_s\":11.25,\"peak_rss_bytes\":73400320,\"alloc_peak_bytes\":0,\
             \"final_acc\":0.91,\"trials_finished\":120,\"trials_failed\":3,\"rounds\":12,\
             \"ece\":0.05}",
        );
    }

    #[test]
    fn missing_accuracy_serializes_as_null() {
        let mut rec = sample();
        rec.final_acc = None;
        assert!(rec.to_json_line().contains("\"final_acc\":null"));
        rec.final_acc = Some(f64::NAN);
        assert!(rec.to_json_line().contains("\"final_acc\":null"));
    }

    #[test]
    fn concurrent_appends_never_tear_lines() {
        let dir = std::env::temp_dir().join(format!("aml_history_conc_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("history.jsonl");
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 200;
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let path = path.clone();
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        let mut rec = sample();
                        rec.seed = w * PER_WRITER + i;
                        rec.append(&path).unwrap();
                    }
                });
            }
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), (WRITERS * PER_WRITER) as usize);
        let mut seen = vec![false; (WRITERS * PER_WRITER) as usize];
        for line in lines {
            assert!(
                line.starts_with("{\"type\":\"history\"") && line.ends_with('}'),
                "torn line: {line}"
            );
            let seed: usize = line
                .split("\"seed\":")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("unparseable line: {line}"));
            assert!(!seen[seed], "duplicate seed {seed}");
            seen[seed] = true;
        }
        assert!(seen.iter().all(|&s| s), "missing records");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_creates_parents_and_accumulates_lines() {
        let dir = std::env::temp_dir().join(format!("aml_history_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/history.jsonl");
        sample().append(&path).unwrap();
        let mut second = sample();
        second.seed = 12;
        second.append(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"seed\":11"));
        assert!(lines[1].contains("\"seed\":12"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
