//! Pluggable export sinks: machine-readable telemetry beyond the stderr
//! summary table.
//!
//! A [`Sink`] receives every span close as a [`SpanEvent`] (with a
//! monotonic timestamp relative to the run origin, a stable per-thread
//! lane id, and the nesting depth) and, at the end of the run, the final
//! registry [`Snapshot`] — the "counter flush". Two sinks ship with the
//! crate:
//!
//! * [`JsonlSink`] — one JSON line per span close, then one line per
//!   counter/histogram at flush. Greppable, streamable, `jq`-able.
//! * [`crate::trace::ChromeTraceSink`] — a Chrome trace-event file
//!   (`trace.json`) loadable in Perfetto / `chrome://tracing`,
//!   reconstructing the span tree with per-thread lanes.
//!
//! Sinks are process-global, installed once at startup (CLI parsing) via
//! [`install`] and drained by [`finish`]. The hot-path cost when no sink
//! is installed is a single relaxed atomic load, preserving the crate's
//! off-is-free guarantee.

use crate::ledger::LedgerEvent;
use crate::registry::Snapshot;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock, PoisonError, TryLockError};
use std::time::Instant;

/// Identity of the run, stamped into every sink's output so exported
/// files are self-describing and joinable with `manifest.json`.
#[derive(Debug, Clone, Default)]
pub struct RunHeader {
    /// Unique-enough id (`<workload>-s<seed>-p<pid>`).
    pub run_id: String,
    /// Workload (benchmark binary) name.
    pub workload: String,
    /// Master RNG seed.
    pub seed: u64,
    /// `git describe` of the build, or `"unknown"`.
    pub git: String,
}

impl RunHeader {
    /// Build a header for `workload` at `seed`; the run id folds in the
    /// pid so concurrent runs stay distinguishable.
    pub fn new(workload: &str, seed: u64) -> RunHeader {
        RunHeader {
            run_id: format!("{workload}-s{seed}-p{}", std::process::id()),
            workload: workload.to_string(),
            seed,
            git: crate::manifest::git_describe(),
        }
    }
}

/// One closed span, as delivered to sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (`crate.component.action`, optionally `[label]`-suffixed).
    pub name: String,
    /// Stable per-thread lane id (0 = first thread to close a span,
    /// usually main).
    pub tid: u64,
    /// Nesting depth of the span on its thread (0 = top level).
    pub depth: usize,
    /// Start time in microseconds since the run origin.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

impl SpanEvent {
    /// End time in microseconds since the run origin.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }
}

/// A telemetry export destination.
///
/// Implementations must be thread-safe: span closes arrive concurrently
/// from worker threads. [`Sink::on_span_close`] should be cheap (buffer or
/// append); expensive work belongs in [`Sink::finish`].
pub trait Sink: Send + Sync {
    /// Called once per span close while the run executes.
    fn on_span_close(&self, event: &SpanEvent);
    /// Called once per experiment-ledger event, but only when
    /// [`Sink::wants_ledger`] returns `true`. Default: ignore.
    fn on_ledger_event(&self, _event: &LedgerEvent) {}
    /// Whether this sink consumes [`LedgerEvent`]s. The ledger emission
    /// gate ([`crate::ledger::active`]) is only raised when at least one
    /// installed sink returns `true`, keeping emission off-is-free.
    fn wants_ledger(&self) -> bool {
        false
    }
    /// Flush any buffered output *now*, mid-run, without removing the
    /// sink. Used by the checkpoint path, which must know the ledger's
    /// on-disk length at each round boundary. Default: nothing to flush.
    fn flush_now(&self) -> std::io::Result<()> {
        Ok(())
    }
    /// Called once at the end of the run with the final registry
    /// snapshot; flush buffers and write the output file here.
    fn finish(&self, snapshot: &Snapshot) -> std::io::Result<()>;
    /// Where this sink writes, for the end-of-run "wrote …" note.
    fn target(&self) -> String;
}

/// Whether any sink is installed — the hot-path gate for event emission.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn sinks() -> &'static Mutex<Vec<Box<dyn Sink>>> {
    static SINKS: OnceLock<Mutex<Vec<Box<dyn Sink>>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The run's monotonic origin: fixed the first time anything asks for it
/// (installing a sink does), so every [`SpanEvent`] timestamp shares one
/// zero point.
pub fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Stable small-integer id for the calling thread (assigned on first
/// use; 0 is the first thread to emit, usually main).
pub fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Install a sink. Fixes the run origin so subsequent span timestamps are
/// relative to (roughly) installation time, raises the ledger emission
/// gate if the sink consumes ledger events, and (once per process)
/// registers a panic hook that flushes installed sinks so export files
/// stay valid when the run panics mid-way.
pub fn install(sink: Box<dyn Sink>) {
    origin();
    install_panic_flush_hook();
    if sink.wants_ledger() {
        crate::ledger::set_active(true);
    }
    sinks()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(sink);
    ACTIVE.store(true, Ordering::Release);
}

/// Chain a panic hook (once per process) that flushes and removes every
/// installed sink, so `--events-out` / `--trace-out` / `--ledger-out`
/// files are complete and parseable even when the run panics. The
/// previous hook (the default backtrace printer) still runs first.
fn install_panic_flush_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // A panic inside an armed sandbox (the AutoML trial
            // sandbox) is about to be caught and recovered from: no
            // report, and crucially no sink drain — the run continues.
            if crate::sandbox::armed() {
                return;
            }
            previous(info);
            flush_on_panic();
        }));
    });
}

/// Best-effort sink flush from inside a panic hook. Uses `try_lock` (the
/// panicking thread may already hold the sink list) and tolerates
/// poisoning; write errors are swallowed — we are already crashing.
fn flush_on_panic() {
    if !active() {
        return;
    }
    ACTIVE.store(false, Ordering::Release);
    crate::ledger::set_active(false);
    let drained: Vec<Box<dyn Sink>> = match sinks().try_lock() {
        Ok(mut guard) => std::mem::take(&mut *guard),
        Err(TryLockError::Poisoned(poisoned)) => std::mem::take(&mut *poisoned.into_inner()),
        Err(TryLockError::WouldBlock) => return,
    };
    let snapshot = if crate::enabled() {
        crate::global().snapshot()
    } else {
        Snapshot::default()
    };
    for sink in &drained {
        let _ = sink.finish(&snapshot);
    }
}

/// Whether any sink is installed (one relaxed atomic load).
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Deliver one span close to every installed sink. Called from
/// [`crate::Span`]'s drop; no-op (and allocation-free) when no sink is
/// installed.
pub(crate) fn emit_span_close(name: &str, start: Instant, dur_ns: u64, depth: usize) {
    if !active() {
        return;
    }
    let start_us = start
        .checked_duration_since(origin())
        .map(|d| d.as_nanos() as f64 / 1e3)
        .unwrap_or(0.0);
    let event = SpanEvent {
        name: name.to_string(),
        tid: current_tid(),
        depth,
        start_us,
        dur_us: dur_ns as f64 / 1e3,
    };
    for sink in sinks()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
    {
        sink.on_span_close(&event);
    }
}

/// Deliver one ledger event to every sink that wants it. Called from
/// [`crate::ledger::emit`] behind the ledger-active gate.
pub(crate) fn emit_ledger_event(event: &LedgerEvent) {
    for sink in sinks()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
    {
        if sink.wants_ledger() {
            sink.on_ledger_event(event);
        }
    }
}

/// Flush every installed sink in place (no removal, no snapshot). The
/// checkpoint writer calls this at round boundaries so the bytes of all
/// rounds up to and including the checkpointed one are durably in the
/// export files before the checkpoint that references them is committed.
pub fn flush_installed() -> std::io::Result<()> {
    let mut first_err = None;
    for sink in sinks()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
    {
        if let Err(e) = sink.flush_now() {
            first_err.get_or_insert(e);
        }
    }
    match first_err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Flush and remove every installed sink, handing each the final
/// `snapshot`. Returns `(target, result)` per sink so the caller can
/// report successes and failures; sinks are gone afterwards (a second
/// call returns an empty vec).
pub fn finish(snapshot: &Snapshot) -> Vec<(String, std::io::Result<()>)> {
    ACTIVE.store(false, Ordering::Release);
    crate::ledger::set_active(false);
    // Re-arm the once-per-run search-space descriptor so the next run in
    // this process (tests, perfgate repeats) gets its own line.
    crate::ledger::reset_search_space_gate();
    let drained: Vec<Box<dyn Sink>> =
        std::mem::take(&mut *sinks().lock().unwrap_or_else(PoisonError::into_inner));
    drained
        .iter()
        .map(|s| (s.target(), s.finish(snapshot)))
        .collect()
}

/// JSONL event sink: one self-contained JSON object per line.
///
/// Line shapes (stable field order):
///
/// ```text
/// {"type":"run","run_id":"…","workload":"…","seed":1,"git":"…"}
/// {"type":"span","name":"…","tid":0,"depth":1,"ts_us":12.345,"dur_us":6.789}
/// {"type":"counter","name":"…","value":123}
/// {"type":"histogram","name":"…","count":3,"sum":300,"min":50,"max":200,"p50":127,"p95":255}
/// ```
///
/// The `run` line is written at creation; `span` lines stream during the
/// run; `counter`/`histogram` lines are the flush, written by
/// [`Sink::finish`].
pub struct JsonlSink {
    target: String,
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    /// Create (truncate) `path` and write the `run` header line.
    pub fn create(path: &Path, header: &RunHeader) -> std::io::Result<JsonlSink> {
        let file: Box<dyn Write + Send> = Box::new(std::fs::File::create(path)?);
        JsonlSink::from_writer(file, &path.display().to_string(), header)
    }

    /// Wrap an arbitrary writer and write the `run` header line (tests
    /// inject failing writers here to exercise drop accounting).
    pub fn from_writer(
        writer: Box<dyn Write + Send>,
        target: &str,
        header: &RunHeader,
    ) -> std::io::Result<JsonlSink> {
        let mut writer = BufWriter::new(writer);
        writeln!(
            writer,
            "{{\"type\":\"run\",\"run_id\":{},\"workload\":{},\"seed\":{},\"git\":{}}}",
            json_str(&header.run_id),
            json_str(&header.workload),
            header.seed,
            json_str(&header.git),
        )?;
        Ok(JsonlSink {
            target: target.to_string(),
            writer: Mutex::new(writer),
        })
    }
}

impl Sink for JsonlSink {
    fn on_span_close(&self, event: &SpanEvent) {
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        // Best-effort: a full disk must not crash the instrumented run —
        // but the loss is accounted for instead of silent.
        let written = writeln!(
            w,
            "{{\"type\":\"span\",\"name\":{},\"tid\":{},\"depth\":{},\"ts_us\":{:.3},\"dur_us\":{:.3}}}",
            json_str(&event.name),
            event.tid,
            event.depth,
            event.start_us,
            event.dur_us,
        );
        if written.is_err() {
            crate::counter_add("telemetry.events_dropped", 1);
        }
    }

    fn finish(&self, snapshot: &Snapshot) -> std::io::Result<()> {
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        for (name, value) in &snapshot.counters {
            writeln!(
                w,
                "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}",
                json_str(name),
                value
            )?;
        }
        for h in &snapshot.histograms {
            writeln!(
                w,
                "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{}}}",
                json_str(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
            )?;
        }
        w.flush()
    }

    fn target(&self) -> String {
        self.target.clone()
    }
}

pub(crate) fn json_str(s: &str) -> String {
    crate::manifest::json_string_literal(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_level, span, test_lock, TelemetryLevel};

    /// Collects events in memory; `finish` records that it ran.
    struct CollectingSink {
        events: Mutex<Vec<SpanEvent>>,
        finished: AtomicBool,
    }

    impl Sink for CollectingSink {
        fn on_span_close(&self, event: &SpanEvent) {
            self.events.lock().unwrap().push(event.clone());
        }
        fn finish(&self, _snapshot: &Snapshot) -> std::io::Result<()> {
            self.finished.store(true, Ordering::Relaxed);
            Ok(())
        }
        fn target(&self) -> String {
            "memory".into()
        }
    }

    #[test]
    fn spans_reach_installed_sinks_with_depth_and_order() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        crate::global().reset();
        // Leak a reference so we can inspect after `finish` consumes the box.
        let sink = Box::leak(Box::new(CollectingSink {
            events: Mutex::new(Vec::new()),
            finished: AtomicBool::new(false),
        }));
        struct Fwd(&'static CollectingSink);
        impl Sink for Fwd {
            fn on_span_close(&self, e: &SpanEvent) {
                self.0.on_span_close(e)
            }
            fn finish(&self, s: &Snapshot) -> std::io::Result<()> {
                self.0.finish(s)
            }
            fn target(&self) -> String {
                self.0.target()
            }
        }
        install(Box::new(Fwd(sink)));
        assert!(active());
        {
            let _outer = span("test.sink.outer");
            let _inner = span("test.sink.inner");
        }
        let results = finish(&crate::global().snapshot());
        assert_eq!(results.len(), 1);
        assert!(results[0].1.is_ok());
        assert!(!active(), "finish must deactivate emission");
        assert!(sink.finished.load(Ordering::Relaxed));

        let events = sink.events.lock().unwrap();
        // Inner closes before outer.
        assert_eq!(events[0].name, "test.sink.inner");
        assert_eq!(events[1].name, "test.sink.outer");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].depth, 0);
        assert_eq!(events[0].tid, events[1].tid);
        // Outer started no later than inner and ended no earlier.
        assert!(events[1].start_us <= events[0].start_us);
        assert!(events[1].end_us() >= events[0].end_us());
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }

    #[test]
    fn no_sink_means_inactive_and_second_finish_is_empty() {
        let _guard = test_lock::hold();
        let results = finish(&Snapshot::default());
        assert!(results.is_empty());
        assert!(!active());
    }

    #[test]
    fn jsonl_sink_writes_header_spans_and_flush_lines() {
        let _guard = test_lock::hold();
        let dir = std::env::temp_dir().join(format!("aml_jsonl_sink_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let header = RunHeader {
            run_id: "w-s1-p1".into(),
            workload: "w".into(),
            seed: 1,
            git: "abc".into(),
        };
        let sink = JsonlSink::create(&path, &header).unwrap();
        sink.on_span_close(&SpanEvent {
            name: "a.b".into(),
            tid: 0,
            depth: 0,
            start_us: 1.5,
            dur_us: 2.25,
        });
        let mut snapshot = Snapshot::default();
        snapshot.counters.push(("c.n".into(), 7));
        sink.finish(&snapshot).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert_eq!(
            lines[0],
            "{\"type\":\"run\",\"run_id\":\"w-s1-p1\",\"workload\":\"w\",\"seed\":1,\"git\":\"abc\"}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"span\",\"name\":\"a.b\",\"tid\":0,\"depth\":0,\"ts_us\":1.500,\"dur_us\":2.250}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"counter\",\"name\":\"c.n\",\"value\":7}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tid_is_stable_within_a_thread() {
        assert_eq!(current_tid(), current_tid());
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(other, current_tid());
    }

    /// Fails every write; used to exercise the drop accounting.
    struct FailingWriter;

    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("disk full"))
        }
    }

    #[test]
    fn failed_writes_count_as_dropped_events() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        crate::global().reset();
        // The header lands in the BufWriter's buffer, so creation
        // succeeds even over a dead writer.
        let sink =
            JsonlSink::from_writer(Box::new(FailingWriter), "failing", &RunHeader::default())
                .unwrap();
        // A line larger than the buffer forces a real write — which fails.
        sink.on_span_close(&SpanEvent {
            name: "x".repeat(16 * 1024),
            tid: 0,
            depth: 0,
            start_us: 0.0,
            dur_us: 1.0,
        });
        let snap = crate::global().snapshot();
        assert!(
            snap.counters
                .iter()
                .any(|(n, v)| n == "telemetry.events_dropped" && *v >= 1),
            "{:?}",
            snap.counters
        );
        assert!(sink.finish(&snap).is_err(), "flush over a dead writer");
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }

    #[test]
    fn panic_mid_span_still_leaves_valid_export_files() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        crate::global().reset();
        let dir = std::env::temp_dir().join(format!("aml_panic_flush_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let events_path = dir.join("events.jsonl");
        let trace_path = dir.join("trace.json");
        let ledger_path = dir.join("ledger.jsonl");
        let header = RunHeader::new("panic-test", 1);
        install(Box::new(JsonlSink::create(&events_path, &header).unwrap()));
        install(Box::new(
            crate::trace::ChromeTraceSink::create(&trace_path, &header).unwrap(),
        ));
        install(Box::new(
            crate::ledger::LedgerJsonlSink::create(&ledger_path, &header).unwrap(),
        ));
        assert!(active());
        assert!(crate::ledger::active());

        let result = std::thread::spawn(|| {
            {
                let _done = crate::span("test.panic.before");
            }
            crate::ledger::emit(&LedgerEvent::TrialFailed {
                trial: 7,
                rung: 0,
                family: "mlp".into(),
                reason: "error".into(),
            });
            let _open = crate::span("test.panic.inside");
            panic!("boom");
        })
        .join();
        assert!(result.is_err(), "the thread must have panicked");

        // The hook drained the sinks and lowered both gates.
        assert!(!active(), "panic hook must deactivate emission");
        assert!(!crate::ledger::active());
        assert!(finish(&Snapshot::default()).is_empty());

        // events.jsonl: complete, newline-terminated JSONL with the
        // closed span present.
        let events = std::fs::read_to_string(&events_path).unwrap();
        assert!(events.ends_with('\n'), "{events:?}");
        assert!(events.contains("test.panic.before"), "{events}");
        for line in events.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }

        // trace.json: balanced braces and balanced B/E pairs.
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(!trace.is_empty(), "trace must be rendered on panic");
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
        assert_eq!(trace.matches('[').count(), trace.matches(']').count());
        assert_eq!(
            trace.matches("\"ph\": \"B\"").count(),
            trace.matches("\"ph\": \"E\"").count()
        );

        // ledger.jsonl: header + the emitted event, newline-terminated.
        let ledger = std::fs::read_to_string(&ledger_path).unwrap();
        assert!(ledger.ends_with('\n'), "{ledger:?}");
        assert!(ledger.contains("\"type\":\"ledger\""), "{ledger}");
        assert!(ledger.contains("\"type\":\"trial_failed\""), "{ledger}");

        std::fs::remove_dir_all(&dir).ok();
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }
}
