//! Pluggable export sinks: machine-readable telemetry beyond the stderr
//! summary table.
//!
//! A [`Sink`] receives every span close as a [`SpanEvent`] (with a
//! monotonic timestamp relative to the run origin, a stable per-thread
//! lane id, and the nesting depth) and, at the end of the run, the final
//! registry [`Snapshot`] — the "counter flush". Two sinks ship with the
//! crate:
//!
//! * [`JsonlSink`] — one JSON line per span close, then one line per
//!   counter/histogram at flush. Greppable, streamable, `jq`-able.
//! * [`crate::trace::ChromeTraceSink`] — a Chrome trace-event file
//!   (`trace.json`) loadable in Perfetto / `chrome://tracing`,
//!   reconstructing the span tree with per-thread lanes.
//!
//! Sinks are process-global, installed once at startup (CLI parsing) via
//! [`install`] and drained by [`finish`]. The hot-path cost when no sink
//! is installed is a single relaxed atomic load, preserving the crate's
//! off-is-free guarantee.

use crate::registry::Snapshot;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Identity of the run, stamped into every sink's output so exported
/// files are self-describing and joinable with `manifest.json`.
#[derive(Debug, Clone, Default)]
pub struct RunHeader {
    /// Unique-enough id (`<workload>-s<seed>-p<pid>`).
    pub run_id: String,
    /// Workload (benchmark binary) name.
    pub workload: String,
    /// Master RNG seed.
    pub seed: u64,
    /// `git describe` of the build, or `"unknown"`.
    pub git: String,
}

impl RunHeader {
    /// Build a header for `workload` at `seed`; the run id folds in the
    /// pid so concurrent runs stay distinguishable.
    pub fn new(workload: &str, seed: u64) -> RunHeader {
        RunHeader {
            run_id: format!("{workload}-s{seed}-p{}", std::process::id()),
            workload: workload.to_string(),
            seed,
            git: crate::manifest::git_describe(),
        }
    }
}

/// One closed span, as delivered to sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (`crate.component.action`, optionally `[label]`-suffixed).
    pub name: String,
    /// Stable per-thread lane id (0 = first thread to close a span,
    /// usually main).
    pub tid: u64,
    /// Nesting depth of the span on its thread (0 = top level).
    pub depth: usize,
    /// Start time in microseconds since the run origin.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

impl SpanEvent {
    /// End time in microseconds since the run origin.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }
}

/// A telemetry export destination.
///
/// Implementations must be thread-safe: span closes arrive concurrently
/// from worker threads. [`Sink::on_span_close`] should be cheap (buffer or
/// append); expensive work belongs in [`Sink::finish`].
pub trait Sink: Send + Sync {
    /// Called once per span close while the run executes.
    fn on_span_close(&self, event: &SpanEvent);
    /// Called once at the end of the run with the final registry
    /// snapshot; flush buffers and write the output file here.
    fn finish(&self, snapshot: &Snapshot) -> std::io::Result<()>;
    /// Where this sink writes, for the end-of-run "wrote …" note.
    fn target(&self) -> String;
}

/// Whether any sink is installed — the hot-path gate for event emission.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn sinks() -> &'static Mutex<Vec<Box<dyn Sink>>> {
    static SINKS: OnceLock<Mutex<Vec<Box<dyn Sink>>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The run's monotonic origin: fixed the first time anything asks for it
/// (installing a sink does), so every [`SpanEvent`] timestamp shares one
/// zero point.
pub fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Stable small-integer id for the calling thread (assigned on first
/// use; 0 is the first thread to emit, usually main).
pub fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Install a sink. Fixes the run origin so subsequent span timestamps are
/// relative to (roughly) installation time.
pub fn install(sink: Box<dyn Sink>) {
    origin();
    sinks().lock().unwrap().push(sink);
    ACTIVE.store(true, Ordering::Release);
}

/// Whether any sink is installed (one relaxed atomic load).
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Deliver one span close to every installed sink. Called from
/// [`crate::Span`]'s drop; no-op (and allocation-free) when no sink is
/// installed.
pub(crate) fn emit_span_close(name: &str, start: Instant, dur_ns: u64, depth: usize) {
    if !active() {
        return;
    }
    let start_us = start
        .checked_duration_since(origin())
        .map(|d| d.as_nanos() as f64 / 1e3)
        .unwrap_or(0.0);
    let event = SpanEvent {
        name: name.to_string(),
        tid: current_tid(),
        depth,
        start_us,
        dur_us: dur_ns as f64 / 1e3,
    };
    for sink in sinks().lock().unwrap().iter() {
        sink.on_span_close(&event);
    }
}

/// Flush and remove every installed sink, handing each the final
/// `snapshot`. Returns `(target, result)` per sink so the caller can
/// report successes and failures; sinks are gone afterwards (a second
/// call returns an empty vec).
pub fn finish(snapshot: &Snapshot) -> Vec<(String, std::io::Result<()>)> {
    ACTIVE.store(false, Ordering::Release);
    let drained: Vec<Box<dyn Sink>> = std::mem::take(&mut *sinks().lock().unwrap());
    drained
        .iter()
        .map(|s| (s.target(), s.finish(snapshot)))
        .collect()
}

/// JSONL event sink: one self-contained JSON object per line.
///
/// Line shapes (stable field order):
///
/// ```text
/// {"type":"run","run_id":"…","workload":"…","seed":1,"git":"…"}
/// {"type":"span","name":"…","tid":0,"depth":1,"ts_us":12.345,"dur_us":6.789}
/// {"type":"counter","name":"…","value":123}
/// {"type":"histogram","name":"…","count":3,"sum":300,"min":50,"max":200,"p50":127,"p95":255}
/// ```
///
/// The `run` line is written at creation; `span` lines stream during the
/// run; `counter`/`histogram` lines are the flush, written by
/// [`Sink::finish`].
pub struct JsonlSink {
    path: PathBuf,
    writer: Mutex<BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Create (truncate) `path` and write the `run` header line.
    pub fn create(path: &Path, header: &RunHeader) -> std::io::Result<JsonlSink> {
        let mut writer = BufWriter::new(std::fs::File::create(path)?);
        writeln!(
            writer,
            "{{\"type\":\"run\",\"run_id\":{},\"workload\":{},\"seed\":{},\"git\":{}}}",
            json_str(&header.run_id),
            json_str(&header.workload),
            header.seed,
            json_str(&header.git),
        )?;
        Ok(JsonlSink {
            path: path.to_path_buf(),
            writer: Mutex::new(writer),
        })
    }
}

impl Sink for JsonlSink {
    fn on_span_close(&self, event: &SpanEvent) {
        let mut w = self.writer.lock().unwrap();
        // Best-effort: a full disk must not crash the instrumented run.
        let _ = writeln!(
            w,
            "{{\"type\":\"span\",\"name\":{},\"tid\":{},\"depth\":{},\"ts_us\":{:.3},\"dur_us\":{:.3}}}",
            json_str(&event.name),
            event.tid,
            event.depth,
            event.start_us,
            event.dur_us,
        );
    }

    fn finish(&self, snapshot: &Snapshot) -> std::io::Result<()> {
        let mut w = self.writer.lock().unwrap();
        for (name, value) in &snapshot.counters {
            writeln!(
                w,
                "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}",
                json_str(name),
                value
            )?;
        }
        for h in &snapshot.histograms {
            writeln!(
                w,
                "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{}}}",
                json_str(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
            )?;
        }
        w.flush()
    }

    fn target(&self) -> String {
        self.path.display().to_string()
    }
}

pub(crate) fn json_str(s: &str) -> String {
    crate::manifest::json_string_literal(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_level, span, test_lock, TelemetryLevel};

    /// Collects events in memory; `finish` records that it ran.
    struct CollectingSink {
        events: Mutex<Vec<SpanEvent>>,
        finished: AtomicBool,
    }

    impl Sink for CollectingSink {
        fn on_span_close(&self, event: &SpanEvent) {
            self.events.lock().unwrap().push(event.clone());
        }
        fn finish(&self, _snapshot: &Snapshot) -> std::io::Result<()> {
            self.finished.store(true, Ordering::Relaxed);
            Ok(())
        }
        fn target(&self) -> String {
            "memory".into()
        }
    }

    #[test]
    fn spans_reach_installed_sinks_with_depth_and_order() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        crate::global().reset();
        // Leak a reference so we can inspect after `finish` consumes the box.
        let sink = Box::leak(Box::new(CollectingSink {
            events: Mutex::new(Vec::new()),
            finished: AtomicBool::new(false),
        }));
        struct Fwd(&'static CollectingSink);
        impl Sink for Fwd {
            fn on_span_close(&self, e: &SpanEvent) {
                self.0.on_span_close(e)
            }
            fn finish(&self, s: &Snapshot) -> std::io::Result<()> {
                self.0.finish(s)
            }
            fn target(&self) -> String {
                self.0.target()
            }
        }
        install(Box::new(Fwd(sink)));
        assert!(active());
        {
            let _outer = span("test.sink.outer");
            let _inner = span("test.sink.inner");
        }
        let results = finish(&crate::global().snapshot());
        assert_eq!(results.len(), 1);
        assert!(results[0].1.is_ok());
        assert!(!active(), "finish must deactivate emission");
        assert!(sink.finished.load(Ordering::Relaxed));

        let events = sink.events.lock().unwrap();
        // Inner closes before outer.
        assert_eq!(events[0].name, "test.sink.inner");
        assert_eq!(events[1].name, "test.sink.outer");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].depth, 0);
        assert_eq!(events[0].tid, events[1].tid);
        // Outer started no later than inner and ended no earlier.
        assert!(events[1].start_us <= events[0].start_us);
        assert!(events[1].end_us() >= events[0].end_us());
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }

    #[test]
    fn no_sink_means_inactive_and_second_finish_is_empty() {
        let _guard = test_lock::hold();
        let results = finish(&Snapshot::default());
        assert!(results.is_empty());
        assert!(!active());
    }

    #[test]
    fn jsonl_sink_writes_header_spans_and_flush_lines() {
        let _guard = test_lock::hold();
        let dir = std::env::temp_dir().join(format!("aml_jsonl_sink_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let header = RunHeader {
            run_id: "w-s1-p1".into(),
            workload: "w".into(),
            seed: 1,
            git: "abc".into(),
        };
        let sink = JsonlSink::create(&path, &header).unwrap();
        sink.on_span_close(&SpanEvent {
            name: "a.b".into(),
            tid: 0,
            depth: 0,
            start_us: 1.5,
            dur_us: 2.25,
        });
        let mut snapshot = Snapshot::default();
        snapshot.counters.push(("c.n".into(), 7));
        sink.finish(&snapshot).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert_eq!(
            lines[0],
            "{\"type\":\"run\",\"run_id\":\"w-s1-p1\",\"workload\":\"w\",\"seed\":1,\"git\":\"abc\"}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"span\",\"name\":\"a.b\",\"tid\":0,\"depth\":0,\"ts_us\":1.500,\"dur_us\":2.250}"
        );
        assert_eq!(
            lines[2],
            "{\"type\":\"counter\",\"name\":\"c.n\",\"value\":7}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tid_is_stable_within_a_thread() {
        assert_eq!(current_tid(), current_tid());
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(other, current_tid());
    }
}
