//! Cooperative marker for *sandboxed* panics.
//!
//! The panic-flush hook installed by [`crate::sink::install`] treats any
//! panic as fatal: it prints the default report, then drains and
//! finishes every installed sink so export files stay valid while the
//! process dies. That is exactly wrong for a panic the caller is about
//! to **catch** — the AutoML trial sandbox (`catch_unwind` around each
//! candidate fit) recovers and keeps the run going, so the sinks must
//! stay installed and the report is pure noise.
//!
//! A sandboxing caller arms this thread-local marker for the duration of
//! its `catch_unwind`; while armed, the telemetry panic hook stands down
//! entirely (no report, no sink drain) on that thread. Panics on other
//! threads are unaffected.

use std::cell::Cell;

thread_local! {
    /// Nesting depth of armed sandboxes on this thread.
    static ARMED: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard: the telemetry panic hook ignores panics on this thread
/// while the guard lives.
pub struct SandboxGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Arm the sandbox marker for the current thread. Hold the returned
/// guard across the `catch_unwind` that will absorb the panic.
pub fn arm() -> SandboxGuard {
    ARMED.with(|c| c.set(c.get() + 1));
    SandboxGuard {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for SandboxGuard {
    fn drop(&mut self) {
        ARMED.with(|c| c.set(c.get().saturating_sub(1)));
    }
}

/// Whether the current thread is inside an armed sandbox.
pub fn armed() -> bool {
    ARMED.with(|c| c.get() > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arming_is_scoped_and_nests() {
        assert!(!armed());
        {
            let _a = arm();
            assert!(armed());
            {
                let _b = arm();
                assert!(armed());
            }
            assert!(armed());
        }
        assert!(!armed());
    }

    #[test]
    fn arming_is_per_thread() {
        let _a = arm();
        assert!(armed());
        let other = std::thread::spawn(armed).join().unwrap();
        assert!(!other, "other threads must not observe this thread's guard");
    }
}
