//! Search-space observability: coverage, rung funnels, and
//! hyperparameter importance over the structured trial telemetry.
//!
//! The ledger (PR 3) records *what* the search tried; this module
//! answers the questions a non-ML expert asks of an AutoML system
//! (ATMSeer's thesis): which part of the declared space was actually
//! visited, how configurations survive the successive-halving funnel,
//! and which hyperparameters the final scores actually depended on.
//!
//! ## Data flow
//!
//! [`observe`] is called from `ledger::emit`/`emit_with` for every
//! ledger event while the collector is armed ([`set_active`]) — one
//! relaxed atomic load when it is not, so the off path stays free. The
//! collector keeps the declared [`SpaceFamily`] descriptors (from the
//! once-per-run `search_space` event) plus one [`TrialRec`] per
//! `trial_started`, settled by the matching `trial_finished` /
//! `trial_failed` line. [`analyze`] is pure and order-independent: it
//! sorts the records by content first, so the report is byte-identical
//! whether the search ran on 1 or N workers — the same determinism
//! contract as `crit.json`.
//!
//! ## Analytics
//!
//! - **Coverage**: per dimension, the declared range is split into
//!   equal-width bins (equal-width in log10-space for `log10` dims; one
//!   bin per category for `cat` dims) and each rung-0 start marks its
//!   bin visited. Coverage is the visited-bin fraction.
//! - **Rung funnel**: per-rung start/finish/fail counts; promotions are
//!   positional (a rung's promoted = the next rung's starts) so the
//!   funnel aggregates cleanly over the many searches of one run.
//! - **Importance (fANOVA-lite)**: per configuration, the *rung-top
//!   observation* is the mean finished score at the highest rung the
//!   configuration reached. Per dimension, observations are binned as
//!   for coverage, and importance is the between-bin variance fraction
//!   `Vb / V` — the share of score variance the dimension explains on
//!   its own. Deterministic, no external deps.
//!
//! Rendered three ways: [`SearchReport::render_json`] (pinned field
//! order, written by `--search-out`, served at `/search`),
//! [`SearchReport::render_table`] (the `amlsearch` summary), and the
//! dashboard's search-explorer panel (which consumes the JSON).

use crate::ledger::{LedgerEvent, ParamValue, SpaceDim, SpaceFamily};
use crate::registry::Snapshot;
use crate::sink::{Sink, SpanEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Schema version stamped into `search.json`.
pub const SEARCH_SCHEMA_VERSION: u32 = 1;

/// Retained trial records before the collector starts counting drops —
/// ~64k records is two orders of magnitude above a full table-1 run.
const TRIAL_CAP: usize = 65_536;

/// Scatter points kept per dimension in the rendered report (the
/// analytics always use every observation; only the plot payload is
/// thinned, by a deterministic stride).
const POINT_CAP: usize = 256;

/// Maximum bins for a numeric dimension's coverage histogram.
const MAX_BINS: usize = 8;

/// One trial fit as observed from the ledger: a `trial_started` line,
/// settled by the matching `trial_finished` (score) or `trial_failed`
/// (reason) line at the same rung.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRec {
    /// Stable trial id (the sequential sampling index).
    pub trial: u64,
    /// Successive-halving rung of this fit.
    pub rung: u64,
    /// Model family name.
    pub family: String,
    /// Typed hyperparameters in declared dimension order.
    pub params: Vec<(String, ParamValue)>,
    /// Validation score, when the fit finished.
    pub score: Option<f64>,
    /// Failure reason, when the fit failed.
    pub failed: Option<String>,
}

#[derive(Default)]
struct Store {
    space: Vec<SpaceFamily>,
    trials: Vec<TrialRec>,
    dropped: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

/// Arm (or disarm) the collector. Arming does not clear previous state —
/// call [`reset`] for a fresh run.
pub fn set_active(on: bool) {
    ACTIVE.store(on, Ordering::Release);
}

/// Whether the collector is currently recording.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Clear all recorded state (space, trials, drop count).
pub fn reset() {
    *store().lock().unwrap_or_else(PoisonError::into_inner) = Store::default();
}

/// Ingest one ledger event. Called from `ledger::emit`/`emit_with`;
/// a no-op (one relaxed load) unless the collector is armed.
pub fn observe(event: &LedgerEvent) {
    if !active() {
        return;
    }
    let mut s = store().lock().unwrap_or_else(PoisonError::into_inner);
    match event {
        LedgerEvent::SearchSpace { families } if s.space.is_empty() => {
            s.space = families.clone();
        }
        LedgerEvent::TrialStarted {
            trial,
            rung,
            family,
            params,
            ..
        } => {
            if s.trials.len() >= TRIAL_CAP {
                s.dropped += 1;
            } else {
                s.trials.push(TrialRec {
                    trial: *trial,
                    rung: *rung,
                    family: family.clone(),
                    params: params.clone(),
                    score: None,
                    failed: None,
                });
            }
        }
        LedgerEvent::TrialFinished {
            trial,
            rung,
            family,
            score,
        } => settle(&mut s, *trial, *rung, family, Some(*score), None),
        LedgerEvent::TrialFailed {
            trial,
            rung,
            family,
            reason,
        } => settle(&mut s, *trial, *rung, family, None, Some(reason.clone())),
        _ => {}
    }
}

/// Settle the most recent unsettled record for `(trial, rung, family)`.
/// Trial ids repeat across the many searches of one run, so matching
/// from the back pairs each outcome with its own start.
fn settle(
    s: &mut Store,
    trial: u64,
    rung: u64,
    family: &str,
    score: Option<f64>,
    failed: Option<String>,
) {
    if let Some(rec) = s.trials.iter_mut().rev().find(|r| {
        r.trial == trial
            && r.rung == rung
            && r.family == family
            && r.score.is_none()
            && r.failed.is_none()
    }) {
        rec.score = score;
        rec.failed = failed;
    }
}

/// Take a consistent copy of the collector state.
fn snapshot_store() -> (Vec<SpaceFamily>, Vec<TrialRec>, u64) {
    let s = store().lock().unwrap_or_else(PoisonError::into_inner);
    (s.space.clone(), s.trials.clone(), s.dropped)
}

/// One rung of the successive-halving funnel, aggregated over every
/// search of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct RungReport {
    /// Rung index (0 = smallest data fraction).
    pub rung: u64,
    /// Fits started at this rung.
    pub started: u64,
    /// Fits that finished with a score.
    pub finished: u64,
    /// Fits that failed.
    pub failed: u64,
    /// Configurations promoted to the next rung (its start count).
    pub promoted: u64,
    /// Configurations eliminated at this rung (`started - promoted`).
    pub eliminated: u64,
}

/// Coverage + importance for one declared hyperparameter dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct DimReport {
    /// Dimension name.
    pub name: String,
    /// `int`, `float`, or `cat`.
    pub kind: String,
    /// `linear` or `log10`.
    pub scale: String,
    /// Declared lower bound (0 for `cat`).
    pub lo: f64,
    /// Declared upper bound (0 for `cat`).
    pub hi: f64,
    /// Declared category tags (empty for numeric dims).
    pub choices: Vec<String>,
    /// Number of coverage bins.
    pub bins: usize,
    /// Rung-0 start count per bin.
    pub hist: Vec<u64>,
    /// Bins with at least one visit.
    pub visited: usize,
    /// `visited / bins`.
    pub coverage: f64,
    /// fANOVA-lite importance: between-bin variance fraction of the
    /// rung-top scores, in `[0, 1]`; 0 when under 2 observations or the
    /// scores are constant.
    pub importance: f64,
    /// `(normalized position, rung-top score)` scatter, thinned to
    /// [`POINT_CAP`] points by a deterministic stride.
    pub points: Vec<(f64, f64)>,
}

/// Search observability for one model family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyReport {
    /// Family name.
    pub family: String,
    /// Distinct sampled configurations.
    pub configs: u64,
    /// Total fits (one per `trial_started` line).
    pub fits: u64,
    /// Failed fits.
    pub failed: u64,
    /// Best rung-top score, when any configuration finished.
    pub best_score: Option<f64>,
    /// Mean rung-top score over finished configurations.
    pub mean_score: Option<f64>,
    /// Per-dimension coverage and importance, in declared order.
    pub dims: Vec<DimReport>,
}

/// The full search-observability report.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// Total fits started.
    pub started: u64,
    /// Total fits finished with a score.
    pub finished: u64,
    /// Total fits failed.
    pub failed: u64,
    /// Rung funnel, ascending rung order.
    pub rungs: Vec<RungReport>,
    /// Per-family breakdown: declared families in declaration order,
    /// then any undeclared family seen in the trials, by name.
    pub families: Vec<FamilyReport>,
    /// Trial records dropped at the collection cap.
    pub dropped: u64,
}

/// Numeric view of a parameter value under its declared dimension:
/// `cat` tags map to their choice index.
fn param_num(dim: &SpaceDim, value: &ParamValue) -> Option<f64> {
    match value {
        ParamValue::Int(v) => Some(*v as f64),
        ParamValue::Float(v) => v.is_finite().then_some(*v),
        ParamValue::Cat(tag) => dim.choices.iter().position(|c| c == tag).map(|i| i as f64),
    }
}

fn dim_bins(dim: &SpaceDim) -> usize {
    match dim.kind.as_str() {
        "cat" => dim.choices.len().max(1),
        "int" => (((dim.hi - dim.lo).round() as i64 + 1).max(1) as usize).min(MAX_BINS),
        _ => MAX_BINS,
    }
}

/// Normalized position of `v` in the dimension's declared range,
/// clamped to `[0, 1]`. Category indices land at their bin centers.
fn norm_pos(dim: &SpaceDim, v: f64, bins: usize) -> f64 {
    let t = if dim.kind == "cat" {
        (v + 0.5) / bins as f64
    } else if dim.scale == "log10" && dim.lo > 0.0 && dim.hi > dim.lo && v > 0.0 {
        (v.log10() - dim.lo.log10()) / (dim.hi.log10() - dim.lo.log10())
    } else if dim.hi > dim.lo {
        (v - dim.lo) / (dim.hi - dim.lo)
    } else {
        0.5
    };
    t.clamp(0.0, 1.0)
}

fn bin_index(dim: &SpaceDim, v: f64, bins: usize) -> usize {
    if dim.kind == "cat" {
        (v as usize).min(bins - 1)
    } else {
        ((norm_pos(dim, v, bins) * bins as f64) as usize).min(bins - 1)
    }
}

/// Stable content signature of a parameter map, for grouping and
/// order-independent sorting.
fn params_sig(params: &[(String, ParamValue)]) -> String {
    let mut sig = String::new();
    for (name, value) in params {
        let _ = write!(
            sig,
            "{name}={};",
            match value {
                ParamValue::Int(v) => format!("{v}"),
                ParamValue::Float(v) => format!("{v:?}"),
                ParamValue::Cat(tag) => tag.clone(),
            }
        );
    }
    sig
}

/// Analyze trial records against the declared space. Pure; the records
/// are sorted by content first, so any arrival order (1 worker, N
/// workers, shuffled) yields the identical report.
pub fn analyze(space: &[SpaceFamily], trials: &[TrialRec], dropped: u64) -> SearchReport {
    let mut recs: Vec<&TrialRec> = trials.iter().collect();
    recs.sort_by_cached_key(|r| {
        (
            r.trial,
            r.rung,
            r.family.clone(),
            params_sig(&r.params),
            r.score.map(f64::to_bits),
            r.failed.clone(),
        )
    });

    // Rung funnel: (started, finished, failed) per rung, promotions
    // positional from the next rung's start count.
    let mut per_rung: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    for r in &recs {
        let e = per_rung.entry(r.rung).or_default();
        e.0 += 1;
        if r.score.is_some() {
            e.1 += 1;
        }
        if r.failed.is_some() {
            e.2 += 1;
        }
    }
    let rung_rows: Vec<(u64, (u64, u64, u64))> = per_rung.into_iter().collect();
    let rungs: Vec<RungReport> = rung_rows
        .iter()
        .enumerate()
        .map(|(i, (rung, (started, finished, failed)))| {
            let promoted = rung_rows.get(i + 1).map_or(0, |(_, next)| next.0);
            RungReport {
                rung: *rung,
                started: *started,
                finished: *finished,
                failed: *failed,
                promoted: promoted.min(*started),
                eliminated: started.saturating_sub(promoted),
            }
        })
        .collect();

    // Family order: declaration order, then undeclared families by name.
    let mut family_names: Vec<String> = space.iter().map(|f| f.family.clone()).collect();
    let mut extra: Vec<String> = recs
        .iter()
        .map(|r| r.family.clone())
        .filter(|f| !family_names.contains(f))
        .collect();
    extra.sort();
    extra.dedup();
    family_names.extend(extra);

    let families: Vec<FamilyReport> = family_names
        .iter()
        .map(|name| {
            let fam_recs: Vec<&&TrialRec> = recs.iter().filter(|r| &r.family == name).collect();
            let dims = space
                .iter()
                .find(|f| &f.family == name)
                .map_or(&[][..], |f| &f.dims[..]);

            // Group fits into configurations; the rung-top observation is
            // the mean finished score at the group's highest scored rung.
            let mut groups: BTreeMap<(u64, String), Vec<&&TrialRec>> = BTreeMap::new();
            for r in &fam_recs {
                groups
                    .entry((r.trial, params_sig(&r.params)))
                    .or_default()
                    .push(r);
            }
            let mut observations: Vec<(&[(String, ParamValue)], f64)> = Vec::new();
            for group in groups.values() {
                let top = group
                    .iter()
                    .filter(|r| r.score.is_some())
                    .map(|r| r.rung)
                    .max();
                if let Some(top) = top {
                    let scores: Vec<f64> = group
                        .iter()
                        .filter(|r| r.rung == top)
                        .filter_map(|r| r.score)
                        .collect();
                    if !scores.is_empty() {
                        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
                        observations.push((&group[0].params, mean));
                    }
                }
            }
            let best_score = observations
                .iter()
                .map(|(_, s)| *s)
                .fold(None, |acc: Option<f64>, s| {
                    Some(acc.map_or(s, |a| a.max(s)))
                });
            let mean_score = (!observations.is_empty()).then(|| {
                observations.iter().map(|(_, s)| s).sum::<f64>() / observations.len() as f64
            });

            let dims = dims
                .iter()
                .map(|dim| dim_report(dim, &fam_recs, &observations))
                .collect();

            FamilyReport {
                family: name.clone(),
                configs: groups.len() as u64,
                fits: fam_recs.len() as u64,
                failed: fam_recs.iter().filter(|r| r.failed.is_some()).count() as u64,
                best_score,
                mean_score,
                dims,
            }
        })
        .collect();

    SearchReport {
        started: recs.len() as u64,
        finished: recs.iter().filter(|r| r.score.is_some()).count() as u64,
        failed: recs.iter().filter(|r| r.failed.is_some()).count() as u64,
        rungs,
        families,
        dropped,
    }
}

fn dim_report(
    dim: &SpaceDim,
    fam_recs: &[&&TrialRec],
    observations: &[(&[(String, ParamValue)], f64)],
) -> DimReport {
    let bins = dim_bins(dim);
    let lookup = |params: &[(String, ParamValue)]| {
        params
            .iter()
            .find(|(n, _)| n == &dim.name)
            .and_then(|(_, v)| param_num(dim, v))
    };

    // Coverage over rung-0 starts: every sampled configuration enters
    // the funnel at rung 0, so this is the sampler's footprint.
    let mut hist = vec![0u64; bins];
    for r in fam_recs.iter().filter(|r| r.rung == 0) {
        if let Some(v) = lookup(&r.params) {
            hist[bin_index(dim, v, bins)] += 1;
        }
    }
    let visited = hist.iter().filter(|&&c| c > 0).count();

    // fANOVA-lite: between-bin variance fraction of the rung-top scores.
    let obs: Vec<(f64, f64)> = observations
        .iter()
        .filter_map(|(params, score)| lookup(params).map(|v| (v, *score)))
        .collect();
    let importance = if obs.len() < 2 {
        0.0
    } else {
        let n = obs.len() as f64;
        let mean = obs.iter().map(|(_, s)| s).sum::<f64>() / n;
        let var = obs.iter().map(|(_, s)| (s - mean).powi(2)).sum::<f64>() / n;
        if var <= 1e-12 {
            0.0
        } else {
            let mut bin_sum = vec![0.0f64; bins];
            let mut bin_n = vec![0u64; bins];
            for (v, s) in &obs {
                let b = bin_index(dim, *v, bins);
                bin_sum[b] += s;
                bin_n[b] += 1;
            }
            let between = (0..bins)
                .filter(|&b| bin_n[b] > 0)
                .map(|b| {
                    let bm = bin_sum[b] / bin_n[b] as f64;
                    bin_n[b] as f64 / n * (bm - mean).powi(2)
                })
                .sum::<f64>();
            (between / var).clamp(0.0, 1.0)
        }
    };

    let mut points: Vec<(f64, f64)> = obs
        .iter()
        .map(|(v, s)| (norm_pos(dim, *v, bins), *s))
        .collect();
    if points.len() > POINT_CAP {
        let stride = points.len().div_ceil(POINT_CAP);
        points = points.into_iter().step_by(stride).collect();
    }

    DimReport {
        name: dim.name.clone(),
        kind: dim.kind.clone(),
        scale: dim.scale.clone(),
        lo: dim.lo,
        hi: dim.hi,
        choices: dim.choices.clone(),
        bins,
        hist,
        visited,
        coverage: visited as f64 / bins as f64,
        importance,
        points,
    }
}

fn f6(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn opt_f6(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), f6)
}

fn shortest(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl SearchReport {
    /// Render as one JSON line (plus trailing newline). Field order and
    /// formatting are pinned by a golden test; `/search` serves exactly
    /// this for an active collector, `--search-out` writes it.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"active\":true,\"schema_version\":{SEARCH_SCHEMA_VERSION},\"trials\":{{\"started\":{},\"finished\":{},\"failed\":{}}}",
            self.started, self.finished, self.failed
        );
        out.push_str(",\"rungs\":[");
        for (i, r) in self.rungs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rung\":{},\"started\":{},\"finished\":{},\"failed\":{},\"promoted\":{},\"eliminated\":{}}}",
                r.rung, r.started, r.finished, r.failed, r.promoted, r.eliminated
            );
        }
        out.push_str("],\"families\":[");
        for (i, f) in self.families.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"family\":{},\"configs\":{},\"fits\":{},\"failed\":{},\"best_score\":{},\"mean_score\":{},\"dims\":[",
                crate::json_string_literal(&f.family),
                f.configs,
                f.fits,
                f.failed,
                opt_f6(f.best_score),
                opt_f6(f.mean_score),
            );
            for (j, d) in f.dims.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let mut choices = String::from("[");
                for (k, c) in d.choices.iter().enumerate() {
                    if k > 0 {
                        choices.push(',');
                    }
                    choices.push_str(&crate::json_string_literal(c));
                }
                choices.push(']');
                let mut hist = String::from("[");
                for (k, c) in d.hist.iter().enumerate() {
                    if k > 0 {
                        hist.push(',');
                    }
                    let _ = write!(hist, "{c}");
                }
                hist.push(']');
                let mut points = String::from("[");
                for (k, (t, s)) in d.points.iter().enumerate() {
                    if k > 0 {
                        points.push(',');
                    }
                    let _ = write!(points, "[{t:.4},{s:.4}]");
                }
                points.push(']');
                let _ = write!(
                    out,
                    "{{\"name\":{},\"kind\":{},\"scale\":{},\"lo\":{},\"hi\":{},\"choices\":{choices},\"bins\":{},\"hist\":{hist},\"visited\":{},\"coverage\":{},\"importance\":{},\"points\":{points}}}",
                    crate::json_string_literal(&d.name),
                    crate::json_string_literal(&d.kind),
                    crate::json_string_literal(&d.scale),
                    shortest(d.lo),
                    shortest(d.hi),
                    d.bins,
                    d.visited,
                    f6(d.coverage),
                    f6(d.importance),
                );
            }
            out.push_str("]}");
        }
        let _ = write!(out, "],\"dropped\":{}}}", self.dropped);
        out.push('\n');
        out
    }

    /// The human-readable summary `amlsearch` prints and `--search-out`
    /// appends to the run footer on stderr.
    pub fn render_table(&self) -> String {
        let mut out = String::from("hyperparameter search:\n");
        let _ = writeln!(
            out,
            "  {} fits started | {} finished | {} failed | {} families",
            self.started,
            self.finished,
            self.failed,
            self.families.len()
        );
        if self.started == 0 {
            out.push_str("  (no trials recorded)\n");
            return out;
        }
        for r in &self.rungs {
            let _ = writeln!(
                out,
                "  rung {}: {:>5} started {:>5} finished {:>4} failed -> {:>4} promoted / {:>4} eliminated",
                r.rung, r.started, r.finished, r.failed, r.promoted, r.eliminated
            );
        }
        let _ = writeln!(
            out,
            "  {:<22} {:>7} {:>6} {:>5} {:>8} {:>8}",
            "family", "configs", "fits", "fail", "best", "mean"
        );
        for f in &self.families {
            let fmt_opt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{v:.4}"));
            let _ = writeln!(
                out,
                "  {:<22} {:>7} {:>6} {:>5} {:>8} {:>8}",
                f.family,
                f.configs,
                f.fits,
                f.failed,
                fmt_opt(f.best_score),
                fmt_opt(f.mean_score),
            );
            for d in &f.dims {
                let _ = writeln!(
                    out,
                    "    {:<20} {:<5} {:<6} coverage {:>2}/{:<2} importance {:.3}",
                    d.name, d.kind, d.scale, d.visited, d.bins, d.importance
                );
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "  ({} trial records dropped at cap)", self.dropped);
        }
        out
    }
}

/// Analyze the live collector and render the `/search` payload: the full
/// report when the collector is (or was) recording, else
/// `{"active":false}`.
pub fn live_json() -> String {
    let (space, trials, dropped) = snapshot_store();
    if space.is_empty() && trials.is_empty() && !active() {
        return "{\"active\":false}\n".to_string();
    }
    analyze(&space, &trials, dropped).render_json()
}

/// Write the report for the current collector state to `path` and return
/// the rendered report for further display.
pub fn write_json(path: &std::path::Path) -> std::io::Result<SearchReport> {
    let (space, trials, dropped) = snapshot_store();
    let report = analyze(&space, &trials, dropped);
    std::fs::write(path, report.render_json())?;
    Ok(report)
}

/// A no-op sink whose only job is to raise the ledger emission gate
/// (same trick as the summary collector): `--search-out` without any
/// other ledger consumer still needs `trial_started` lines flowing into
/// [`observe`].
pub struct GateSink;

impl Sink for GateSink {
    fn on_span_close(&self, _event: &SpanEvent) {}

    fn wants_ledger(&self) -> bool {
        true
    }

    fn finish(&self, _snapshot: &Snapshot) -> std::io::Result<()> {
        Ok(())
    }

    fn target(&self) -> String {
        "search collector".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knn_space() -> Vec<SpaceFamily> {
        vec![SpaceFamily {
            family: "knn".into(),
            dims: vec![
                SpaceDim {
                    name: "k".into(),
                    kind: "int".into(),
                    scale: "linear".into(),
                    lo: 1.0,
                    hi: 8.0,
                    choices: vec![],
                },
                SpaceDim {
                    name: "weights".into(),
                    kind: "cat".into(),
                    scale: "linear".into(),
                    lo: 0.0,
                    hi: 0.0,
                    choices: vec!["uniform".into(), "distance".into()],
                },
            ],
        }]
    }

    fn rec(
        trial: u64,
        rung: u64,
        k: i64,
        weights: &str,
        score: Option<f64>,
        failed: Option<&str>,
    ) -> TrialRec {
        TrialRec {
            trial,
            rung,
            family: "knn".into(),
            params: vec![
                ("k".into(), ParamValue::Int(k)),
                ("weights".into(), ParamValue::Cat(weights.into())),
            ],
            score,
            failed: failed.map(str::to_string),
        }
    }

    /// 4 configs at rung 0, 2 promoted to rung 1; score depends on k
    /// (low k good), not on weights.
    fn fixture() -> Vec<TrialRec> {
        vec![
            rec(0, 0, 1, "uniform", Some(0.9), None),
            rec(1, 0, 2, "distance", Some(0.85), None),
            rec(2, 0, 7, "uniform", Some(0.5), None),
            rec(3, 0, 8, "distance", None, Some("error")),
            rec(0, 1, 1, "uniform", Some(0.92), None),
            rec(1, 1, 2, "distance", Some(0.87), None),
        ]
    }

    #[test]
    fn funnel_is_positional_and_counts_outcomes() {
        let report = analyze(&knn_space(), &fixture(), 0);
        assert_eq!(report.started, 6);
        assert_eq!(report.finished, 5);
        assert_eq!(report.failed, 1);
        assert_eq!(report.rungs.len(), 2);
        let r0 = &report.rungs[0];
        assert_eq!(
            (
                r0.started,
                r0.finished,
                r0.failed,
                r0.promoted,
                r0.eliminated
            ),
            (4, 3, 1, 2, 2)
        );
        let r1 = &report.rungs[1];
        assert_eq!((r1.started, r1.promoted, r1.eliminated), (2, 0, 2));
    }

    #[test]
    fn rung_top_scores_drive_family_stats() {
        let report = analyze(&knn_space(), &fixture(), 0);
        let fam = &report.families[0];
        assert_eq!(fam.family, "knn");
        assert_eq!(fam.configs, 4);
        assert_eq!(fam.fits, 6);
        assert_eq!(fam.failed, 1);
        // Rung-top scores: 0.92 (trial 0), 0.87 (trial 1), 0.5 (trial 2).
        assert_eq!(fam.best_score, Some(0.92));
        let mean = fam.mean_score.unwrap();
        assert!((mean - (0.92 + 0.87 + 0.5) / 3.0).abs() < 1e-12, "{mean}");
    }

    #[test]
    fn coverage_counts_rung0_bins_and_importance_ranks_k_over_weights() {
        let report = analyze(&knn_space(), &fixture(), 0);
        let k = &report.families[0].dims[0];
        // 8-bin int dim, rung-0 values 1,2,7,8 -> bins 0,1,6,7.
        assert_eq!(k.bins, 8);
        assert_eq!(k.hist, vec![1, 1, 0, 0, 0, 0, 1, 1]);
        assert_eq!(k.visited, 4);
        assert!((k.coverage - 0.5).abs() < 1e-12);
        let w = &report.families[0].dims[1];
        assert_eq!(w.bins, 2);
        assert_eq!(w.hist, vec![2, 2]);
        assert!((w.coverage - 1.0).abs() < 1e-12);
        // k separates the scores cleanly; weights mixes good and bad.
        assert!(
            k.importance > w.importance,
            "k {} vs weights {}",
            k.importance,
            w.importance
        );
        assert!(k.importance > 0.5, "{}", k.importance);
    }

    #[test]
    fn report_is_arrival_order_independent() {
        let mut reversed = fixture();
        reversed.reverse();
        let a = analyze(&knn_space(), &fixture(), 0).render_json();
        let b = analyze(&knn_space(), &reversed, 0).render_json();
        assert_eq!(a, b);
    }

    #[test]
    fn undeclared_families_appear_without_dims() {
        let mut trials = fixture();
        trials.push(TrialRec {
            trial: 9,
            rung: 0,
            family: "mystery".into(),
            params: vec![],
            score: Some(0.7),
            failed: None,
        });
        let report = analyze(&knn_space(), &trials, 0);
        assert_eq!(report.families.len(), 2);
        assert_eq!(report.families[1].family, "mystery");
        assert!(report.families[1].dims.is_empty());
        assert_eq!(report.families[1].configs, 1);
    }

    #[test]
    fn json_rendering_is_byte_pinned() {
        let report = analyze(&knn_space(), &fixture(), 0);
        assert_eq!(
            report.render_json(),
            concat!(
                "{\"active\":true,\"schema_version\":1,",
                "\"trials\":{\"started\":6,\"finished\":5,\"failed\":1},",
                "\"rungs\":[",
                "{\"rung\":0,\"started\":4,\"finished\":3,\"failed\":1,\"promoted\":2,\"eliminated\":2},",
                "{\"rung\":1,\"started\":2,\"finished\":2,\"failed\":0,\"promoted\":0,\"eliminated\":2}",
                "],\"families\":[",
                "{\"family\":\"knn\",\"configs\":4,\"fits\":6,\"failed\":1,",
                "\"best_score\":0.920000,\"mean_score\":0.763333,\"dims\":[",
                "{\"name\":\"k\",\"kind\":\"int\",\"scale\":\"linear\",\"lo\":1,\"hi\":8,\"choices\":[],",
                "\"bins\":8,\"hist\":[1,1,0,0,0,0,1,1],\"visited\":4,\"coverage\":0.500000,\"importance\":1.000000,",
                "\"points\":[[0.0000,0.9200],[0.1429,0.8700],[0.8571,0.5000]]},",
                "{\"name\":\"weights\",\"kind\":\"cat\",\"scale\":\"linear\",\"lo\":0,\"hi\":0,",
                "\"choices\":[\"uniform\",\"distance\"],\"bins\":2,\"hist\":[2,2],\"visited\":2,",
                "\"coverage\":1.000000,\"importance\":0.162128,",
                "\"points\":[[0.2500,0.9200],[0.7500,0.8700],[0.2500,0.5000]]}",
                "]}],\"dropped\":0}\n",
            )
        );
    }

    #[test]
    fn table_mentions_the_key_figures() {
        let report = analyze(&knn_space(), &fixture(), 0);
        let table = report.render_table();
        assert!(table.contains("rung 0:"), "{table}");
        assert!(table.contains("knn"), "{table}");
        assert!(table.contains("coverage"), "{table}");
        assert!(table.contains("importance"), "{table}");
        let empty = analyze(&[], &[], 0).render_table();
        assert!(empty.contains("no trials recorded"), "{empty}");
    }

    #[test]
    fn observe_collects_and_settles_trials() {
        let _guard = crate::test_lock::hold();
        reset();
        set_active(true);
        observe(&LedgerEvent::SearchSpace {
            families: knn_space(),
        });
        observe(&LedgerEvent::TrialStarted {
            trial: 0,
            rung: 0,
            family: "knn".into(),
            config: "KnnConfig".into(),
            params: vec![("k".into(), ParamValue::Int(3))],
        });
        observe(&LedgerEvent::TrialFinished {
            trial: 0,
            rung: 0,
            family: "knn".into(),
            score: 0.8,
        });
        observe(&LedgerEvent::TrialStarted {
            trial: 1,
            rung: 0,
            family: "knn".into(),
            config: "KnnConfig".into(),
            params: vec![("k".into(), ParamValue::Int(5))],
        });
        observe(&LedgerEvent::TrialFailed {
            trial: 1,
            rung: 0,
            family: "knn".into(),
            reason: "panic".into(),
        });
        let (space, trials, dropped) = snapshot_store();
        assert_eq!(space.len(), 1);
        assert_eq!(trials.len(), 2);
        assert_eq!(trials[0].score, Some(0.8));
        assert_eq!(trials[1].failed.as_deref(), Some("panic"));
        assert_eq!(dropped, 0);
        let live = live_json();
        assert!(live.starts_with("{\"active\":true,"), "{live}");
        set_active(false);
        reset();
        // Disarmed and empty: the sentinel payload.
        assert_eq!(live_json(), "{\"active\":false}\n");
    }

    #[test]
    fn observe_is_a_no_op_when_disarmed() {
        let _guard = crate::test_lock::hold();
        set_active(false);
        reset();
        observe(&LedgerEvent::TrialStarted {
            trial: 0,
            rung: 0,
            family: "knn".into(),
            config: String::new(),
            params: vec![],
        });
        let (_, trials, _) = snapshot_store();
        assert!(trials.is_empty());
    }
}
