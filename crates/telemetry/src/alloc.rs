//! Allocation tracking behind the `alloc-track` feature.
//!
//! When the feature is enabled this module installs a counting
//! `#[global_allocator]` that wraps the system allocator with four relaxed
//! atomic counters: total bytes allocated, total allocation count, live
//! bytes (allocated − freed), and peak live bytes — a cheap RSS proxy that
//! needs no OS support. [`stats`] reads them; [`publish_counters`] folds
//! them into the registry as `alloc.bytes` / `alloc.count` /
//! `alloc.live_bytes` / `alloc.peak_bytes` so manifests and `BENCH_*.json`
//! record memory alongside time.
//!
//! With the feature off everything here compiles to a no-op ([`stats`]
//! returns `None`) so callers never need their own `cfg` gates.
//!
//! Accuracy notes: counters include the telemetry layer's own
//! allocations, and the live/peak pair is racy across threads (allocate
//! and free counters are read at different instants) — it is a proxy for
//! trend-watching, not an exact heap profile.

/// Point-in-time allocation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Total bytes ever allocated (monotonic).
    pub bytes: u64,
    /// Total number of allocations (monotonic).
    pub count: u64,
    /// Bytes currently live (allocated − freed).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_bytes: u64,
}

/// Current allocation statistics, or `None` when the `alloc-track`
/// feature is off.
pub fn stats() -> Option<AllocStats> {
    #[cfg(feature = "alloc-track")]
    {
        Some(tracker::stats())
    }
    #[cfg(not(feature = "alloc-track"))]
    {
        None
    }
}

/// Total bytes allocated so far (0 when tracking is off). Cheap enough to
/// sample at phase boundaries for per-phase deltas.
pub fn bytes_now() -> u64 {
    stats().map(|s| s.bytes).unwrap_or(0)
}

/// Fold the current allocation statistics into the global registry as
/// `alloc.*` counters. No-op when tracking is off or telemetry is
/// disabled; call once, at the end of the run, before snapshotting.
pub fn publish_counters() {
    if !crate::enabled() {
        return;
    }
    if let Some(s) = stats() {
        crate::global().counter_add("alloc.bytes", s.bytes);
        crate::global().counter_add("alloc.count", s.count);
        crate::global().counter_add("alloc.live_bytes", s.live_bytes);
        crate::global().counter_add("alloc.peak_bytes", s.peak_bytes);
    }
}

#[cfg(feature = "alloc-track")]
mod tracker {
    use super::AllocStats;
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static BYTES: AtomicU64 = AtomicU64::new(0);
    static COUNT: AtomicU64 = AtomicU64::new(0);
    static FREED: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    pub(super) fn stats() -> AllocStats {
        let bytes = BYTES.load(Ordering::Relaxed);
        let freed = FREED.load(Ordering::Relaxed);
        AllocStats {
            bytes,
            count: COUNT.load(Ordering::Relaxed),
            live_bytes: bytes.saturating_sub(freed),
            peak_bytes: PEAK.load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn on_alloc(size: u64) {
        let bytes = BYTES.fetch_add(size, Ordering::Relaxed) + size;
        COUNT.fetch_add(1, Ordering::Relaxed);
        let live = bytes.saturating_sub(FREED.load(Ordering::Relaxed));
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    /// System-allocator wrapper that only bumps atomics — it never
    /// allocates itself, so it is safe as the global allocator.
    pub struct CountingAllocator;

    // SAFETY: defers entirely to `System` for memory management; the
    // bookkeeping is lock-free atomic arithmetic with no allocation.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            FREED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                // Count the grown (or shrunk) region as one new
                // allocation of the delta, freeing the old size.
                if new_size > layout.size() {
                    on_alloc((new_size - layout.size()) as u64);
                } else {
                    FREED.fetch_add((layout.size() - new_size) as u64, Ordering::Relaxed);
                }
            }
            p
        }
    }
}

#[cfg(feature = "alloc-track")]
#[global_allocator]
static GLOBAL_COUNTING_ALLOCATOR: tracker::CountingAllocator = tracker::CountingAllocator;

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "alloc-track")]
    #[test]
    fn allocations_move_the_counters() {
        let before = stats().unwrap();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        let after = stats().unwrap();
        drop(v);
        assert!(after.bytes >= before.bytes + (1 << 16));
        assert!(after.count > before.count);
        assert!(after.peak_bytes >= after.live_bytes.saturating_sub(1));
        let freed = stats().unwrap();
        assert!(freed.live_bytes <= after.live_bytes);
    }

    #[cfg(not(feature = "alloc-track"))]
    #[test]
    fn tracking_off_means_none_and_zero() {
        assert!(stats().is_none());
        assert_eq!(bytes_now(), 0);
    }

    #[test]
    fn publish_is_safe_at_any_level() {
        // Must never panic, whatever the level or feature set.
        publish_counters();
    }
}
