//! Progress reporting and the pipeline's two output channels.
//!
//! The repo's output discipline (DESIGN.md §6) is:
//!
//! * **stdout** carries only user-facing results (banners and final
//!   tables), always, via [`report`] — so `--telemetry off` output is
//!   identical to an uninstrumented run and remains pipeable;
//! * **stderr** carries status/progress/summary, only when telemetry is
//!   enabled, via [`note`] and [`Progress`].

use std::io::{IsTerminal, Write};
use std::time::{Duration, Instant};

/// Print a user-facing result line to stdout. This is the one sanctioned
/// stdout sink; it is *not* gated by the telemetry level.
pub fn report(line: &str) {
    println!("{line}");
}

/// Print a status line to stderr when telemetry is enabled; no-op
/// otherwise.
pub fn note(line: &str) {
    if crate::enabled() {
        eprintln!("[run] {line}");
    }
}

/// Print a warning to stderr. *Not* gated by the telemetry level —
/// problems must surface even in `--telemetry off` runs.
pub fn warn(line: &str) {
    eprintln!("warning: {line}");
}

/// Rate-limited progress reporter for loops.
///
/// On a TTY it rewrites one line with `\r`; otherwise it prints a plain
/// line per update so logs stay readable. Updates are throttled to one
/// every ~200 ms (the final [`Progress::done`] always prints). With
/// telemetry off every method is a no-op.
pub struct Progress {
    label: String,
    total: u64,
    last_emit: Option<Instant>,
    started: Instant,
    tty: bool,
    enabled: bool,
    dirty: bool,
}

const THROTTLE: Duration = Duration::from_millis(200);

impl Progress {
    /// Start a progress reporter for `total` units of work under `label`.
    pub fn new(label: &str, total: u64) -> Self {
        Progress {
            label: label.to_string(),
            total,
            last_emit: None,
            started: Instant::now(),
            tty: std::io::stderr().is_terminal(),
            enabled: crate::enabled(),
            dirty: false,
        }
    }

    /// Record that `done` units are complete; emits at most ~5 lines/sec.
    pub fn update(&mut self, done: u64) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        if let Some(last) = self.last_emit {
            if now.duration_since(last) < THROTTLE && done < self.total {
                return;
            }
        }
        self.last_emit = Some(now);
        self.emit(done, false);
    }

    /// Finish: emit the final count and the elapsed time.
    pub fn done(&mut self) {
        if !self.enabled {
            return;
        }
        self.emit(self.total, true);
    }

    fn emit(&mut self, done: u64, finished: bool) {
        let mut err = std::io::stderr().lock();
        let body = if self.total > 0 {
            format!("[run] {}: {}/{}", self.label, done, self.total)
        } else {
            format!("[run] {}: {}", self.label, done)
        };
        let line = if finished {
            format!("{body} ({:.1}s)", self.started.elapsed().as_secs_f64())
        } else {
            body
        };
        if self.tty {
            let _ = write!(err, "\r\x1b[2K{line}");
            if finished {
                let _ = writeln!(err);
            }
            self.dirty = !finished;
        } else {
            let _ = writeln!(err, "{line}");
        }
        let _ = err.flush();
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        // Never leave a half-drawn `\r` line on the terminal.
        if self.dirty {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_level, test_lock, TelemetryLevel};

    #[test]
    fn disabled_progress_is_inert() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Off);
        let mut p = Progress::new("noop", 10);
        assert!(!p.enabled);
        p.update(5);
        p.done();
        assert!(p.last_emit.is_none());
    }

    #[test]
    fn updates_are_throttled() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        let mut p = Progress::new("throttle", 1000);
        p.update(1);
        let first = p.last_emit;
        assert!(first.is_some());
        p.update(2); // within 200 ms — swallowed
        assert_eq!(p.last_emit, first);
        p.update(1000); // done == total always emits
        assert_ne!(p.last_emit, first);
        p.done();
        set_level(TelemetryLevel::Off);
    }
}
