//! Critical-path analysis over the causal trace tree.
//!
//! Consumes the [`crate::tracetree`] nodes plus a registry
//! [`Snapshot`] and answers three questions the flat views cannot:
//!
//! 1. **What is the critical path?** The longest dependency chain
//!    through the tree — starting from the dominant top-level phase and
//!    greedily descending into the costliest child. Each chain segment
//!    is charged its *contribution* (its total minus the descended
//!    child's total), so the segment contributions sum to the dominant
//!    phase's total and never exceed the run's wall time.
//! 2. **How much of each phase is parallelizable?** Per phase, `work`
//!    is the summed self time of the subtree and `ideal` is the
//!    best-case chain length when every `parallel`-marked fan-out (the
//!    [`crate::tracetree::TraceContext`] handoff roots) runs with
//!    unlimited workers: `ideal = self + Σ serial children + max over
//!    parallel children`. Amdahl's law then gives
//!    `serial_fraction = ideal / work` and the speedup ceiling
//!    `max_speedup = work / ideal` — the number to compare before and
//!    after a parallelism PR.
//! 3. **Is the run CPU-bound?** Wall time versus the `/proc` sampler's
//!    `proc.cpu_user_ms + proc.cpu_sys_ms` gauges, when present.
//!
//! The per-scenario datagen instrumentation surfaces here too: the
//! `datagen.scenarios_total` counter and `datagen.scenario_ns` histogram
//! from the snapshot are embedded so one `crit.json` carries the whole
//! cost-attribution story. Rendered two ways: [`CritReport::render_json`]
//! (hand-rolled, field order pinned by a golden test; written by
//! `--crit-out` and served at `/crit`) and [`CritReport::render_table`]
//! (the human summary `amlcrit` and the run footer print).

use crate::registry::Snapshot;
use crate::tracetree::{Node, SpanId};
use std::collections::HashMap;

/// Schema version stamped into `crit.json`.
pub const CRIT_SCHEMA_VERSION: u32 = 1;

/// One segment of the critical path, outermost first.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Span name.
    pub name: String,
    /// Structural span id (see [`crate::tracetree`]).
    pub id: SpanId,
    /// Depth along the chain (0 = the dominant phase).
    pub depth: usize,
    /// The span's total wall time, ns.
    pub total_ns: u64,
    /// Chain contribution: total minus the descended child's total, ns.
    pub contribution_ns: u64,
    /// Whether the segment is a handoff (fan-out) root.
    pub parallel: bool,
}

/// Amdahl accounting for one top-level phase (or the whole run).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase span name (the run total uses `"run"`).
    pub name: String,
    /// The phase span's wall time, ns.
    pub total_ns: u64,
    /// Summed self time over the subtree, ns (CPU-side work).
    pub work_ns: u64,
    /// Best-case chain with unlimited workers on every fan-out, ns.
    pub ideal_ns: u64,
    /// `ideal / work` — the serial fraction `f` in Amdahl's law.
    pub serial_fraction: f64,
    /// `work / ideal` — the parallel speedup ceiling (`1/f`).
    pub max_speedup: f64,
    /// Spans in the subtree (including the phase span).
    pub subtree_spans: u64,
}

/// Per-scenario datagen cost attribution pulled from the snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioStats {
    /// `datagen.scenarios_total`.
    pub total: u64,
    /// `datagen.scenario_ns` observation count.
    pub count: u64,
    /// Summed scenario cost, ns.
    pub sum_ns: u64,
    /// Mean scenario cost, ns.
    pub mean_ns: u64,
    /// Approximate median scenario cost, ns.
    pub p50_ns: u64,
    /// Approximate 95th-percentile scenario cost, ns.
    pub p95_ns: u64,
    /// Largest scenario cost, ns.
    pub max_ns: u64,
}

/// The full critical-path report.
#[derive(Debug, Clone, PartialEq)]
pub struct CritReport {
    /// Wall time of the run: summed top-level phase totals, ns.
    pub wall_ns: u64,
    /// `proc.cpu_user_ms + proc.cpu_sys_ms` in ns, when sampled.
    pub cpu_ns: Option<u64>,
    /// Dominant top-level phase (longest total), empty when no nodes.
    pub dominant_phase: String,
    /// Summed chain contributions (= the dominant phase's total), ns.
    pub critical_path_ns: u64,
    /// The chain, outermost segment first.
    pub path: Vec<Segment>,
    /// Per-phase Amdahl accounting, in phase start order.
    pub phases: Vec<PhaseStat>,
    /// Whole-run Amdahl accounting (phases are serial to each other).
    pub amdahl: PhaseStat,
    /// Per-scenario datagen costs, when the run generated data.
    pub scenarios: Option<ScenarioStats>,
    /// Recorded node count.
    pub nodes: usize,
    /// Nodes dropped at the collection cap.
    pub nodes_dropped: u64,
}

/// Analyze `nodes` (any order) against `snapshot`. Pure; deterministic
/// for deterministic inputs (ties broken by name, then id).
pub fn analyze(nodes: &[Node], snapshot: &Snapshot) -> CritReport {
    analyze_with_drops(nodes, snapshot, 0)
}

/// [`analyze`], recording how many nodes the collector dropped.
pub fn analyze_with_drops(nodes: &[Node], snapshot: &Snapshot, dropped: u64) -> CritReport {
    let by_id: HashMap<SpanId, usize> = nodes.iter().enumerate().map(|(i, n)| (n.id, i)).collect();
    let mut children: HashMap<SpanId, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.parent != 0 && by_id.contains_key(&n.parent) && n.parent != n.id {
            children.entry(n.parent).or_default().push(i);
        } else {
            roots.push(i);
        }
    }
    let order = |a: &usize, b: &usize| {
        let (x, y) = (&nodes[*a], &nodes[*b]);
        x.start_ns
            .cmp(&y.start_ns)
            .then_with(|| x.name.cmp(&y.name))
            .then(x.id.cmp(&y.id))
    };
    for kids in children.values_mut() {
        kids.sort_by(order);
    }
    roots.sort_by(order);

    // Post-order work/ideal/subtree-size per node.
    let mut work = vec![0u64; nodes.len()];
    let mut ideal = vec![0u64; nodes.len()];
    let mut size = vec![0u64; nodes.len()];
    fn compute(
        i: usize,
        nodes: &[Node],
        children: &HashMap<SpanId, Vec<usize>>,
        work: &mut [u64],
        ideal: &mut [u64],
        size: &mut [u64],
    ) {
        let kids: &[usize] = children.get(&nodes[i].id).map_or(&[], |v| v.as_slice());
        let (mut child_total, mut child_work, mut serial_ideal, mut par_max) =
            (0u64, 0u64, 0u64, 0u64);
        let mut subtree = 1u64;
        for &k in kids {
            compute(k, nodes, children, work, ideal, size);
            child_total = child_total.saturating_add(nodes[k].total_ns);
            child_work = child_work.saturating_add(work[k]);
            if nodes[k].parallel {
                par_max = par_max.max(ideal[k]);
            } else {
                serial_ideal = serial_ideal.saturating_add(ideal[k]);
            }
            subtree += size[k];
        }
        // Self time saturates at 0 when parallel children overlap the
        // parent's wall clock.
        let self_ns = nodes[i].total_ns.saturating_sub(child_total);
        work[i] = self_ns.saturating_add(child_work);
        ideal[i] = self_ns.saturating_add(serial_ideal).saturating_add(par_max);
        size[i] = subtree;
    }
    for &r in &roots {
        compute(r, nodes, &children, &mut work, &mut ideal, &mut size);
    }

    let phase_stat = |name: &str, total: u64, w: u64, i: u64, spans: u64| PhaseStat {
        name: name.to_string(),
        total_ns: total,
        work_ns: w,
        ideal_ns: i,
        serial_fraction: if w == 0 { 1.0 } else { i as f64 / w as f64 },
        max_speedup: if i == 0 { 1.0 } else { w as f64 / i as f64 },
        subtree_spans: spans,
    };
    let phases: Vec<PhaseStat> = roots
        .iter()
        .map(|&r| {
            phase_stat(
                &nodes[r].name,
                nodes[r].total_ns,
                work[r],
                ideal[r],
                size[r],
            )
        })
        .collect();
    let wall_ns = roots
        .iter()
        .map(|&r| nodes[r].total_ns)
        .fold(0u64, u64::saturating_add);
    let (run_work, run_ideal, run_spans) = roots.iter().fold((0u64, 0u64, 0u64), |acc, &r| {
        (
            acc.0.saturating_add(work[r]),
            acc.1.saturating_add(ideal[r]),
            acc.2 + size[r],
        )
    });
    let amdahl = phase_stat("run", wall_ns, run_work, run_ideal, run_spans);

    // Greedy chain descent from the dominant phase.
    let dominant = roots.iter().copied().max_by(|a, b| {
        nodes[*a]
            .total_ns
            .cmp(&nodes[*b].total_ns)
            .then_with(|| nodes[*b].name.cmp(&nodes[*a].name))
            .then(nodes[*b].id.cmp(&nodes[*a].id))
    });
    let mut path = Vec::new();
    let mut critical_path_ns = 0u64;
    if let Some(mut cur) = dominant {
        for depth in 0..64 {
            let next = children.get(&nodes[cur].id).and_then(|kids| {
                kids.iter().copied().max_by(|a, b| {
                    nodes[*a]
                        .total_ns
                        .cmp(&nodes[*b].total_ns)
                        .then_with(|| nodes[*b].name.cmp(&nodes[*a].name))
                        .then(nodes[*b].id.cmp(&nodes[*a].id))
                })
            });
            let descended_ns = next.map_or(0, |n| nodes[n].total_ns);
            let contribution_ns = nodes[cur].total_ns.saturating_sub(descended_ns);
            path.push(Segment {
                name: nodes[cur].name.clone(),
                id: nodes[cur].id,
                depth,
                total_ns: nodes[cur].total_ns,
                contribution_ns,
                parallel: nodes[cur].parallel,
            });
            critical_path_ns = critical_path_ns.saturating_add(contribution_ns);
            match next {
                Some(n) => cur = n,
                None => break,
            }
        }
    }

    let gauge = |name: &str| {
        snapshot
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    };
    let cpu_ns = match (gauge("proc.cpu_user_ms"), gauge("proc.cpu_sys_ms")) {
        (None, None) => None,
        (u, s) => Some((u.unwrap_or(0) + s.unwrap_or(0)).saturating_mul(1_000_000)),
    };

    let scenarios = snapshot
        .counters
        .iter()
        .find(|(n, _)| n == "datagen.scenarios_total")
        .map(|(_, total)| {
            let hist = snapshot
                .histograms
                .iter()
                .find(|h| h.name == "datagen.scenario_ns");
            ScenarioStats {
                total: *total,
                count: hist.map_or(0, |h| h.count),
                sum_ns: hist.map_or(0, |h| h.sum),
                mean_ns: hist.map_or(0, |h| h.mean()),
                p50_ns: hist.map_or(0, |h| h.p50),
                p95_ns: hist.map_or(0, |h| h.p95),
                max_ns: hist.map_or(0, |h| h.max),
            }
        });

    CritReport {
        wall_ns,
        cpu_ns,
        dominant_phase: dominant.map_or(String::new(), |d| nodes[d].name.clone()),
        critical_path_ns,
        path,
        phases,
        amdahl,
        scenarios,
        nodes: nodes.len(),
        nodes_dropped: dropped,
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

impl CritReport {
    /// Render as one JSON line (plus trailing newline). Field order and
    /// formatting are pinned by a golden test; `/crit` serves exactly
    /// this for an active collector.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"active\":true,\"schema_version\":");
        out.push_str(&CRIT_SCHEMA_VERSION.to_string());
        out.push_str(&format!(",\"wall_ns\":{}", self.wall_ns));
        match self.cpu_ns {
            Some(cpu) => {
                out.push_str(&format!(",\"cpu_ns\":{cpu}"));
                let ratio = if self.wall_ns == 0 {
                    "null".to_string()
                } else {
                    json_f64(cpu as f64 / self.wall_ns as f64)
                };
                out.push_str(&format!(",\"cpu_wall_ratio\":{ratio}"));
            }
            None => out.push_str(",\"cpu_ns\":null,\"cpu_wall_ratio\":null"),
        }
        out.push_str(&format!(
            ",\"dominant_phase\":{}",
            crate::json_string_literal(&self.dominant_phase)
        ));
        out.push_str(&format!(",\"critical_path_ns\":{}", self.critical_path_ns));
        out.push_str(",\"critical_path\":[");
        for (i, s) in self.path.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Ids are 64-bit hashes; a JSON number would be read back
            // through f64 and lose bits past 2^53, so they travel as
            // decimal strings.
            out.push_str(&format!(
                "{{\"name\":{},\"id\":\"{}\",\"depth\":{},\"total_ns\":{},\"contribution_ns\":{},\"parallel\":{}}}",
                crate::json_string_literal(&s.name),
                s.id,
                s.depth,
                s.total_ns,
                s.contribution_ns,
                s.parallel,
            ));
        }
        out.push_str("],\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&Self::phase_json(p));
        }
        out.push_str("],\"amdahl\":");
        out.push_str(&Self::phase_json(&self.amdahl));
        match &self.scenarios {
            Some(s) => out.push_str(&format!(
                ",\"scenarios\":{{\"total\":{},\"histogram\":{{\"count\":{},\"sum_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"max_ns\":{}}}}}",
                s.total, s.count, s.sum_ns, s.mean_ns, s.p50_ns, s.p95_ns, s.max_ns,
            )),
            None => out.push_str(",\"scenarios\":null"),
        }
        out.push_str(&format!(
            ",\"nodes\":{},\"nodes_dropped\":{}}}\n",
            self.nodes, self.nodes_dropped
        ));
        out
    }

    fn phase_json(p: &PhaseStat) -> String {
        format!(
            "{{\"name\":{},\"total_ns\":{},\"work_ns\":{},\"ideal_ns\":{},\"serial_fraction\":{},\"max_speedup\":{},\"subtree_spans\":{}}}",
            crate::json_string_literal(&p.name),
            p.total_ns,
            p.work_ns,
            p.ideal_ns,
            json_f64(p.serial_fraction),
            json_f64(p.max_speedup),
            p.subtree_spans,
        )
    }

    /// The human-readable summary `amlcrit` prints and `--crit-out`
    /// appends to the run footer on stderr.
    pub fn render_table(&self) -> String {
        let mut out = String::from("critical path (causal trace tree):\n");
        let pct = |part: u64, whole: u64| {
            if whole == 0 {
                0.0
            } else {
                part as f64 * 100.0 / whole as f64
            }
        };
        out.push_str(&format!(
            "  wall {} | chain {} ({:.1}% of wall)",
            fmt_ns(self.wall_ns),
            fmt_ns(self.critical_path_ns),
            pct(self.critical_path_ns, self.wall_ns),
        ));
        if let Some(cpu) = self.cpu_ns {
            let ratio = if self.wall_ns == 0 {
                0.0
            } else {
                cpu as f64 / self.wall_ns as f64
            };
            out.push_str(&format!(" | cpu {} ({ratio:.2}x wall)", fmt_ns(cpu)));
        }
        out.push_str(&format!(" | {} spans\n", self.nodes));
        if self.dominant_phase.is_empty() {
            out.push_str("  (no spans recorded)\n");
            return out;
        }
        out.push_str(&format!("  dominant phase: {}\n", self.dominant_phase));
        out.push_str(&format!(
            "  {:<46} {:>10} {:>10}\n",
            "chain segment", "total", "contrib"
        ));
        for s in &self.path {
            let label = format!(
                "{}{}{}",
                " ".repeat(s.depth),
                s.name,
                if s.parallel { " [par]" } else { "" }
            );
            out.push_str(&format!(
                "  {:<46} {:>10} {:>10}\n",
                label,
                fmt_ns(s.total_ns),
                fmt_ns(s.contribution_ns),
            ));
        }
        out.push_str(&format!(
            "  {:<30} {:>10} {:>8} {:>12}\n",
            "phase (Amdahl)", "total", "serial%", "max speedup"
        ));
        for p in self.phases.iter().chain(std::iter::once(&self.amdahl)) {
            out.push_str(&format!(
                "  {:<30} {:>10} {:>7.1}% {:>11.1}x\n",
                p.name,
                fmt_ns(p.total_ns),
                p.serial_fraction * 100.0,
                p.max_speedup,
            ));
        }
        if let Some(s) = &self.scenarios {
            out.push_str(&format!(
                "  scenarios: {} labeled | cost mean {} p50 {} p95 {} max {}\n",
                s.total,
                fmt_ns(s.mean_ns),
                fmt_ns(s.p50_ns),
                fmt_ns(s.p95_ns),
                fmt_ns(s.max_ns),
            ));
        }
        out
    }
}

/// Analyze the live collector + registry and render the `/crit` payload:
/// the full report when the collector is (or was) recording, else
/// `{"active":false}`.
pub fn live_json() -> String {
    let nodes = crate::tracetree::entries();
    if nodes.is_empty() && !crate::tracetree::active() {
        return "{\"active\":false}\n".to_string();
    }
    analyze_with_drops(
        &nodes,
        &crate::global().snapshot(),
        crate::tracetree::dropped(),
    )
    .render_json()
}

/// Write the report for the current collector state to `path` and return
/// the rendered report for further display.
pub fn write_json(path: &std::path::Path) -> std::io::Result<CritReport> {
    let nodes = crate::tracetree::entries();
    let report = analyze_with_drops(
        &nodes,
        &crate::global().snapshot(),
        crate::tracetree::dropped(),
    );
    std::fs::write(path, report.render_json())?;
    Ok(report)
}

/// `1.23s` / `56.7ms` / `89µs` — compact duration (shared shape with the
/// profiler's table).
fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{}µs", ns / 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Snapshot;

    fn node(
        id: SpanId,
        parent: SpanId,
        name: &str,
        start: u64,
        total: u64,
        parallel: bool,
    ) -> Node {
        Node {
            id,
            parent,
            name: name.to_string(),
            start_ns: start,
            total_ns: total,
            parallel,
        }
    }

    fn empty_snapshot() -> Snapshot {
        crate::registry::Registry::new().snapshot()
    }

    /// A fabricated deterministic run: datagen (with a parallel scenario
    /// fan-out) then a lighter strategies phase.
    fn fixture() -> Vec<Node> {
        vec![
            node(10, 0, "bench.datagen", 0, 2_000_000, false),
            node(11, 10, "netsim.labeling", 100_000, 1_600_000, false),
            node(21, 11, "netsim.scenario", 110_000, 700_000, true),
            node(22, 11, "netsim.scenario", 120_000, 800_000, true),
            node(30, 0, "bench.strategies", 2_100_000, 1_000_000, false),
        ]
    }

    #[test]
    fn chain_contributions_sum_to_dominant_and_stay_under_wall() {
        let report = analyze(&fixture(), &empty_snapshot());
        assert_eq!(report.wall_ns, 3_000_000);
        assert_eq!(report.dominant_phase, "bench.datagen");
        // Chain: datagen -> labeling -> scenario#22 (largest).
        let names: Vec<&str> = report.path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["bench.datagen", "netsim.labeling", "netsim.scenario"]
        );
        assert_eq!(report.critical_path_ns, 2_000_000);
        assert!(report.critical_path_ns <= report.wall_ns);
        let sum: u64 = report.path.iter().map(|s| s.contribution_ns).sum();
        assert_eq!(sum, report.critical_path_ns);
        assert_eq!(report.path[0].contribution_ns, 400_000); // 2.0ms - 1.6ms
        assert_eq!(report.path[1].contribution_ns, 800_000); // 1.6ms - 0.8ms
        assert_eq!(report.path[2].contribution_ns, 800_000); // leaf keeps total
    }

    #[test]
    fn amdahl_rewards_parallel_fanouts() {
        let report = analyze(&fixture(), &empty_snapshot());
        let datagen = &report.phases[0];
        assert_eq!(datagen.name, "bench.datagen");
        // Work: datagen self 0.4 + labeling self 0.1 + scenarios 1.5 = 2.0ms.
        assert_eq!(datagen.work_ns, 2_000_000);
        // Ideal: datagen self 0.4 + labeling self 0.1 + max scenario 0.8.
        assert_eq!(datagen.ideal_ns, 1_300_000);
        assert!(datagen.serial_fraction < 1.0);
        assert!(datagen.max_speedup > 1.0);
        // The strategies phase has no children: fully serial.
        let strategies = &report.phases[1];
        assert_eq!(strategies.serial_fraction, 1.0);
        assert_eq!(strategies.max_speedup, 1.0);
        // Run totals cover both phases.
        assert_eq!(report.amdahl.work_ns, 3_000_000);
        assert_eq!(report.amdahl.ideal_ns, 2_300_000);
    }

    #[test]
    fn dangling_parents_become_roots_not_panics() {
        let nodes = vec![
            node(1, 0, "a", 0, 100, false),
            node(2, 999, "orphan", 10, 50, false),
        ];
        let report = analyze(&nodes, &empty_snapshot());
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.wall_ns, 150);
    }

    #[test]
    fn empty_tree_renders_cleanly() {
        let report = analyze(&[], &empty_snapshot());
        assert_eq!(report.wall_ns, 0);
        assert_eq!(report.dominant_phase, "");
        assert!(report.path.is_empty());
        let json = report.render_json();
        assert!(json.starts_with("{\"active\":true,"));
        assert!(json.ends_with("}\n"));
        assert!(report.render_table().contains("no spans recorded"));
    }

    #[test]
    fn cpu_and_scenarios_come_from_the_snapshot() {
        let registry = crate::registry::Registry::new();
        registry.gauge_set("proc.cpu_user_ms", 1_500);
        registry.gauge_set("proc.cpu_sys_ms", 500);
        registry.counter_add("datagen.scenarios_total", 3);
        for ns in [10_000u64, 20_000, 30_000] {
            registry.histogram_record("datagen.scenario_ns", ns);
        }
        let report = analyze(&fixture(), &registry.snapshot());
        assert_eq!(report.cpu_ns, Some(2_000_000_000));
        let s = report.scenarios.as_ref().unwrap();
        assert_eq!(s.total, 3);
        assert_eq!(s.count, 3);
        assert_eq!(s.sum_ns, 60_000);
        assert_eq!(s.mean_ns, 20_000);
        let json = report.render_json();
        assert!(json.contains("\"cpu_ns\":2000000000"));
        assert!(json.contains("\"scenarios\":{\"total\":3,"));
    }

    #[test]
    fn json_rendering_is_byte_pinned() {
        // The full shape on the fabricated tree — any change to field
        // order, formatting, or derivation shows up here.
        let report = analyze(&fixture(), &empty_snapshot());
        assert_eq!(
            report.render_json(),
            concat!(
                "{\"active\":true,\"schema_version\":1,\"wall_ns\":3000000,",
                "\"cpu_ns\":null,\"cpu_wall_ratio\":null,",
                "\"dominant_phase\":\"bench.datagen\",\"critical_path_ns\":2000000,",
                "\"critical_path\":[",
                "{\"name\":\"bench.datagen\",\"id\":\"10\",\"depth\":0,\"total_ns\":2000000,\"contribution_ns\":400000,\"parallel\":false},",
                "{\"name\":\"netsim.labeling\",\"id\":\"11\",\"depth\":1,\"total_ns\":1600000,\"contribution_ns\":800000,\"parallel\":false},",
                "{\"name\":\"netsim.scenario\",\"id\":\"22\",\"depth\":2,\"total_ns\":800000,\"contribution_ns\":800000,\"parallel\":true}",
                "],\"phases\":[",
                "{\"name\":\"bench.datagen\",\"total_ns\":2000000,\"work_ns\":2000000,\"ideal_ns\":1300000,\"serial_fraction\":0.650000,\"max_speedup\":1.538462,\"subtree_spans\":4},",
                "{\"name\":\"bench.strategies\",\"total_ns\":1000000,\"work_ns\":1000000,\"ideal_ns\":1000000,\"serial_fraction\":1.000000,\"max_speedup\":1.000000,\"subtree_spans\":1}",
                "],\"amdahl\":",
                "{\"name\":\"run\",\"total_ns\":3000000,\"work_ns\":3000000,\"ideal_ns\":2300000,\"serial_fraction\":0.766667,\"max_speedup\":1.304348,\"subtree_spans\":5}",
                ",\"scenarios\":null,\"nodes\":5,\"nodes_dropped\":0}\n",
            )
        );
    }

    #[test]
    fn table_mentions_the_key_figures() {
        let report = analyze(&fixture(), &empty_snapshot());
        let table = report.render_table();
        assert!(table.contains("dominant phase: bench.datagen"), "{table}");
        assert!(table.contains("netsim.scenario [par]"), "{table}");
        assert!(table.contains("phase (Amdahl)"), "{table}");
    }
}
