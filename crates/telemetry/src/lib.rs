//! # aml-telemetry — observability for the whole pipeline
//!
//! The paper's premise is *interpretability for operators*; this crate
//! applies the same standard to our own pipeline. It provides, with zero
//! external dependencies:
//!
//! * **scoped spans** ([`span`], [`span!`]) with monotonic timing and a
//!   thread-safe registry that aggregates wall-time and call counts per
//!   span name across worker threads;
//! * **counters** ([`counter_add`]) and **histograms**
//!   ([`histogram_record`]) for hot-path quantities (candidates trained,
//!   ALE predictions evaluated, netsim events processed, …);
//! * a **run manifest** ([`manifest::Manifest`]): a machine-readable
//!   `manifest.json` capturing seed, scale, threads, git revision, and
//!   every span/counter/histogram of the run;
//! * a **progress reporter** ([`progress::Progress`], [`progress::note`])
//!   replacing scattered `println!` status output, plus the one sanctioned
//!   stdout sink for user-facing result tables ([`progress::report`]);
//! * pluggable **export sinks** ([`sink`]): a JSONL event stream
//!   ([`sink::JsonlSink`]) and a Chrome trace-event file
//!   ([`trace::ChromeTraceSink`]) loadable in Perfetto, both fed one
//!   event per span close plus a final counter flush;
//! * an **experiment ledger** ([`ledger`]): typed, versioned ML-level
//!   events — trials with halving rungs, ensemble composition, feedback
//!   rounds, suggested regions, curve provenance — streamed to a
//!   deterministic `ledger.jsonl` (consumed by the `amlreport` bin);
//! * a **live observability plane** ([`serve`], behind `--serve ADDR`):
//!   a std-only HTTP server exposing `/metrics` (Prometheus text
//!   exposition), `/healthz` (liveness + run phase), `/runs` (run
//!   header, live progress, recent ledger events), `/events` (a live
//!   SSE stream of ledger events and phase transitions), `/history`
//!   (the cross-run history as a JSON array), and `/dashboard` (a
//!   self-contained live HTML dashboard);
//! * a **cross-run history store** ([`history`], behind `--record`):
//!   one append-only JSONL record per completed run (wall time, peak
//!   RSS, final accuracy, trial/failure counts) feeding
//!   `perfgate --against-history` and the dashboard's trend section;
//! * a **model/data quality plane** ([`quality`], behind
//!   `--quality-out`): per-feature dataset profiles with fixed-edge
//!   histograms, PSI drift scores against the previous round or a
//!   `--quality-ref` baseline, and per-round confusion/calibration
//!   diagnostics, written as `quality.json` and served live at
//!   `/quality`;
//! * a **resource sampler** ([`resource`]): `/proc/self` readings
//!   published as `proc.*` gauges ([`gauge_set`]), no-op off Linux;
//! * a **self-time profiler** ([`profile`], behind `--profile-out`):
//!   exclusive per-span-stack wall time written as collapsed-stack
//!   folded output, directly loadable by flamegraph tooling;
//! * **causal trace trees** ([`tracetree`], behind `--crit-out`): every
//!   span gets a deterministic structural id and parent link — across
//!   `std::thread::scope` workers via the explicit [`TraceContext`]
//!   handoff — feeding the **critical-path analyzer** ([`crit`]):
//!   longest dependency chain, per-phase serial-fraction / Amdahl
//!   speedup ceiling, and wall-vs-CPU attribution, written as
//!   `crit.json` and served live at `/crit`;
//! * optional **allocation tracking** ([`alloc`], behind the
//!   `alloc-track` feature): a counting global allocator whose totals
//!   land in `alloc.*` counters and per-span byte deltas.
//!
//! ## Levels
//!
//! Everything is gated by a process-wide [`TelemetryLevel`]:
//!
//! * `Off` — every instrumentation call is a no-op (one relaxed atomic
//!   load, no allocation, no lock); output and artifacts are byte-identical
//!   to an uninstrumented build;
//! * `Summary` — spans/counters/histograms are collected, progress is
//!   reported to stderr, and a manifest plus a timing table are emitted at
//!   the end of the run;
//! * `Verbose` — additionally logs every span close to stderr.
//!
//! ## Naming scheme
//!
//! Span, counter, and histogram names follow `crate.component.action`
//! (e.g. `automl.search.run`, `interpret.ale.curve`, `netsim.sim.events`).
//! Per-key variants append a bracketed label: `automl.fit_us[forest]`,
//! `core.labeler.queries[Cross-ALE]`. See DESIGN.md §6 ("Observability").

#![deny(missing_docs)]

pub mod alloc;
pub mod crit;
pub mod history;
pub mod ledger;
pub mod manifest;
pub mod profile;
pub mod progress;
pub mod quality;
pub mod registry;
pub mod resource;
pub mod sandbox;
pub mod searchview;
pub mod serve;
pub mod sink;
pub mod span;
pub mod trace;
pub mod tracetree;

pub use alloc::AllocStats;
pub use crit::{CritReport, CRIT_SCHEMA_VERSION};
pub use history::{HistoryRecord, HISTORY_SCHEMA_VERSION};
pub use ledger::{
    EnsembleMember, LedgerEvent, LedgerJsonlSink, ParamValue, SpaceDim, SpaceFamily,
    LEDGER_SCHEMA_VERSION,
};
pub use manifest::{json_string_literal, Manifest};
pub use progress::{note, report, warn, Progress};
pub use quality::{FeatureProfile, QualityReference, QualityReport, QUALITY_SCHEMA_VERSION};
pub use registry::{global, HistSnapshot, Registry, Snapshot, SpanSnapshot};
pub use searchview::{SearchReport, SEARCH_SCHEMA_VERSION};
pub use sink::{JsonlSink, RunHeader, Sink, SpanEvent};
pub use span::{current_depth, span, span_labeled, Span};
pub use trace::ChromeTraceSink;
pub use tracetree::{SpanId, TraceContext};

use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

/// How much instrumentation the process collects and emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum TelemetryLevel {
    /// All instrumentation calls are no-ops; no telemetry output at all.
    #[default]
    Off = 0,
    /// Collect metrics, report progress, emit a manifest + summary table.
    Summary = 1,
    /// `Summary` plus a stderr log line for every span close.
    Verbose = 2,
}

impl TelemetryLevel {
    /// The flag spellings accepted by [`TelemetryLevel::from_str`].
    pub const CHOICES: &'static str = "off|summary|verbose";

    /// Canonical lowercase name (the CLI flag spelling).
    pub fn name(&self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Summary => "summary",
            TelemetryLevel::Verbose => "verbose",
        }
    }
}

impl std::fmt::Display for TelemetryLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for TelemetryLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(TelemetryLevel::Off),
            "summary" => Ok(TelemetryLevel::Summary),
            "verbose" => Ok(TelemetryLevel::Verbose),
            other => Err(format!(
                "invalid telemetry level '{other}' (expected {})",
                TelemetryLevel::CHOICES
            )),
        }
    }
}

/// Process-wide level. Off by default so library users are unaffected
/// until a binary opts in.
static LEVEL: AtomicU8 = AtomicU8::new(TelemetryLevel::Off as u8);

/// Set the process-wide telemetry level (typically once, from CLI parsing).
pub fn set_level(level: TelemetryLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide telemetry level.
pub fn level() -> TelemetryLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => TelemetryLevel::Off,
        1 => TelemetryLevel::Summary,
        _ => TelemetryLevel::Verbose,
    }
}

/// Whether any telemetry is collected. This is the hot-path gate: a single
/// relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) != TelemetryLevel::Off as u8
}

/// `Some(Instant::now())` when telemetry is enabled — for manually timed
/// sections that feed histograms (see [`histogram_record_labeled`]).
#[inline]
pub fn maybe_now() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Add `n` to the named global counter. No-op (and allocation-free) when
/// telemetry is off.
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if enabled() {
        global().counter_add(name, n);
    }
}

/// Add `n` to the counter `base[label]` (e.g. per-strategy labeler
/// queries). The key is only materialized when telemetry is on.
#[inline]
pub fn counter_add_labeled(base: &str, label: &str, n: u64) {
    if enabled() {
        global().counter_add(&format!("{base}[{label}]"), n);
    }
}

/// Set the named global gauge to `value` (last write wins; e.g.
/// `proc.rss_bytes` from the resource sampler). No-op when telemetry is
/// off.
#[inline]
pub fn gauge_set(name: &str, value: u64) {
    if enabled() {
        global().gauge_set(name, value);
    }
}

/// Record one observation in the named global histogram.
#[inline]
pub fn histogram_record(name: &str, value: u64) {
    if enabled() {
        global().histogram_record(name, value);
    }
}

/// Record one observation in the histogram `base[label]` (e.g. per-family
/// fit time). The key is only materialized when telemetry is on.
#[inline]
pub fn histogram_record_labeled(base: &str, label: &str, value: u64) {
    if enabled() {
        global().histogram_record(&format!("{base}[{label}]"), value);
    }
}

/// Open a scoped timing span. Prefer this macro over the [`span`] /
/// [`span_labeled`] functions; it reads like a statement:
///
/// ```
/// let _span = aml_telemetry::span!("interpret.ale.curve");
/// let _per = aml_telemetry::span!("core.strategy.refit", "Cross-ALE");
/// ```
///
/// The span records its wall time into the global registry when the guard
/// drops. With telemetry off the guard is inert and nothing is recorded.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $label:expr) => {
        $crate::span_labeled($name, $label)
    };
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Tests that touch the process-wide level or global registry
    /// serialize through this lock so `cargo test`'s parallelism cannot
    /// interleave them.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_round_trips_through_from_str() {
        for l in [
            TelemetryLevel::Off,
            TelemetryLevel::Summary,
            TelemetryLevel::Verbose,
        ] {
            assert_eq!(l.name().parse::<TelemetryLevel>().unwrap(), l);
        }
        assert!("banana".parse::<TelemetryLevel>().is_err());
    }

    #[test]
    fn set_level_controls_enabled() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Off);
        assert!(!enabled());
        assert!(maybe_now().is_none());
        set_level(TelemetryLevel::Summary);
        assert!(enabled());
        assert!(maybe_now().is_some());
        set_level(TelemetryLevel::Off);
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Off);
        global().reset();
        counter_add("test.disabled.counter", 5);
        histogram_record("test.disabled.hist", 1);
        histogram_record_labeled("test.disabled.hist", "x", 1);
        counter_add_labeled("test.disabled.counter", "x", 1);
        {
            let _span = span!("test.disabled.span");
        }
        let snap = global().snapshot();
        assert!(snap.counters.is_empty(), "{:?}", snap.counters);
        assert!(snap.spans.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
