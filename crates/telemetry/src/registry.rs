//! Thread-safe aggregation of spans, counters, and histograms.
//!
//! The registry is the single sink for all instrumentation in the process.
//! Worker threads (`std::thread::scope` threads in the AutoML search
//! and the netsim labeler) all record into the same maps; entries
//! are `Arc`-shared atomics so the map lock is only taken to *find or
//! create* an entry, never to update one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Aggregated timing statistics for one span name.
///
/// All fields are atomics so concurrent spans with the same name (e.g.
/// `automl.search.train_one` across worker threads) can update without
/// locking. Times are in nanoseconds.
#[derive(Debug, Default)]
pub struct SpanStat {
    /// Number of times a span with this name closed.
    pub calls: AtomicU64,
    /// Total wall time across all calls, in nanoseconds.
    pub total_ns: AtomicU64,
    /// Longest single call, in nanoseconds.
    pub max_ns: AtomicU64,
    /// Shortest single call, in nanoseconds (`u64::MAX` until first call).
    pub min_ns: AtomicU64,
}

impl SpanStat {
    fn new() -> Self {
        SpanStat {
            calls: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
        }
    }

    /// Fold one closed span of `ns` nanoseconds into the aggregate.
    pub fn record(&self, ns: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
    }
}

/// Number of log2 buckets in a [`Histogram`]: one per possible bit length
/// of a `u64` (0 for zero, 1..=64 otherwise).
pub const HIST_BUCKETS: usize = 65;

/// Fixed-shape histogram: count/sum/min/max plus log2 buckets.
///
/// Values are unit-agnostic `u64`s; by convention the pipeline records
/// microseconds for durations (`automl.fit_us[...]`) and raw counts
/// otherwise. 65 power-of-two buckets (one per bit length) cover the full
/// `u64` range, which is coarse but lock-free and good enough for the
/// quantile estimates shown in the run summary and `/metrics`.
#[derive(Debug)]
pub struct Histogram {
    /// Number of recorded observations.
    pub count: AtomicU64,
    /// Sum of all observations.
    pub sum: AtomicU64,
    /// Smallest observation (`u64::MAX` until first record).
    pub min: AtomicU64,
    /// Largest observation.
    pub max: AtomicU64,
    /// `buckets[i]` counts observations with `bit_length(value) == i`,
    /// i.e. values in `[2^(i-1), 2^i)`; bucket 0 counts zeros and bucket
    /// 64 covers `[2^63, u64::MAX]`.
    pub buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        let bucket = (64 - value.leading_zeros()) as usize; // bit length; 0 for value == 0
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one span's aggregate, for manifests and tables.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Span name (`crate.component.action`, optionally `[label]`-suffixed).
    pub name: String,
    /// Number of closed calls.
    pub calls: u64,
    /// Total wall time across calls, in nanoseconds.
    pub total_ns: u64,
    /// Longest single call, in nanoseconds.
    pub max_ns: u64,
    /// Shortest single call, in nanoseconds (0 when no calls).
    pub min_ns: u64,
}

impl SpanSnapshot {
    /// Total wall time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Mean wall time per call in nanoseconds (0 when no calls).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// Point-in-time copy of one histogram, with quantile estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Histogram name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Approximate median (upper edge of the bucket holding it).
    pub p50: u64,
    /// Approximate 95th percentile (upper edge of its bucket).
    pub p95: u64,
    /// Raw log2 bucket counts (`buckets[i]` = observations with bit length
    /// `i`); empty when the snapshot was built without bucket data.
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate the q-quantile (`0.0 < q <= 1.0`) from the log2 buckets:
    /// the upper edge of the bucket holding the nearest-rank observation.
    pub fn quantile(&self, q: f64) -> u64 {
        bucket_quantile(&self.buckets, self.count, q)
    }
}

/// Point-in-time copy of the whole registry. Entries are sorted by name so
/// snapshots (and the manifests built from them) are deterministic.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All span aggregates, sorted by name.
    pub spans: Vec<SpanSnapshot>,
    /// All counters as `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// All gauges as `(name, value)`, sorted by name. Gauges are
    /// last-write-wins (e.g. `proc.rss_bytes` from the resource sampler).
    pub gauges: Vec<(String, u64)>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistSnapshot>,
}

/// The sink all spans/counters/histograms record into.
///
/// Use [`global()`] in instrumentation; constructing a private `Registry`
/// is for tests.
#[derive(Debug, Default)]
pub struct Registry {
    spans: RwLock<HashMap<String, Arc<SpanStat>>>,
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The shared `SpanStat` for `name`, creating it on first use.
    pub fn span_stat(&self, name: &str) -> Arc<SpanStat> {
        if let Some(stat) = self.spans.read().unwrap().get(name) {
            return Arc::clone(stat);
        }
        let mut map = self.spans.write().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(SpanStat::new())),
        )
    }

    /// Add `n` to the counter `name`, creating it on first use.
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            c.fetch_add(n, Ordering::Relaxed);
            return;
        }
        let mut map = self.counters.write().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Set the gauge `name` to `value` (last write wins), creating it on
    /// first use.
    pub fn gauge_set(&self, name: &str, value: u64) {
        if let Some(g) = self.gauges.read().unwrap().get(name) {
            g.store(value, Ordering::Relaxed);
            return;
        }
        let mut map = self.gauges.write().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .store(value, Ordering::Relaxed);
    }

    /// Record `value` into the histogram `name`, creating it on first use.
    pub fn histogram_record(&self, name: &str, value: u64) {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            h.record(value);
            return;
        }
        let mut map = self.histograms.write().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .record(value);
    }

    /// Copy out every metric, sorted by name for deterministic output.
    pub fn snapshot(&self) -> Snapshot {
        let mut spans: Vec<SpanSnapshot> = self
            .spans
            .read()
            .unwrap()
            .iter()
            .map(|(name, s)| {
                let calls = s.calls.load(Ordering::Relaxed);
                let min = s.min_ns.load(Ordering::Relaxed);
                SpanSnapshot {
                    name: name.clone(),
                    calls,
                    total_ns: s.total_ns.load(Ordering::Relaxed),
                    max_ns: s.max_ns.load(Ordering::Relaxed),
                    min_ns: if min == u64::MAX { 0 } else { min },
                }
            })
            .collect();
        spans.sort_by(|a, b| a.name.cmp(&b.name));

        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));

        let mut gauges: Vec<(String, u64)> = self
            .gauges
            .read()
            .unwrap()
            .iter()
            .map(|(name, g)| (name.clone(), g.load(Ordering::Relaxed)))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));

        let mut histograms: Vec<HistSnapshot> = self
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|(name, h)| snapshot_histogram(name, h))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));

        Snapshot {
            spans,
            counters,
            gauges,
            histograms,
        }
    }

    /// Drop every recorded metric (used between test cases and by bench
    /// binaries that run several independent phases).
    pub fn reset(&self) {
        self.spans.write().unwrap().clear();
        self.counters.write().unwrap().clear();
        self.gauges.write().unwrap().clear();
        self.histograms.write().unwrap().clear();
    }
}

fn snapshot_histogram(name: &str, h: &Histogram) -> HistSnapshot {
    let count = h.count.load(Ordering::Relaxed);
    let min = h.min.load(Ordering::Relaxed);
    let buckets: Vec<u64> = h
        .buckets
        .iter()
        .map(|b| b.load(Ordering::Relaxed))
        .collect();
    HistSnapshot {
        name: name.to_string(),
        count,
        sum: h.sum.load(Ordering::Relaxed),
        min: if min == u64::MAX { 0 } else { min },
        max: h.max.load(Ordering::Relaxed),
        p50: bucket_quantile(&buckets, count, 0.50),
        p95: bucket_quantile(&buckets, count, 0.95),
        buckets,
    }
}

/// Inclusive upper edge of log2 bucket `i` (bit length `i`): 0 for bucket
/// 0, `2^i - 1` below the top, `u64::MAX` for bucket 64 — the shift
/// `1u64 << 64` would overflow, and the bucket genuinely extends to the
/// end of the `u64` range.
pub fn bucket_upper_edge(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// Upper edge of the bucket containing the q-quantile observation
/// (nearest-rank: rank `max(1, ceil(count * q))`).
fn bucket_quantile(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64 * q).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            return bucket_upper_edge(i);
        }
    }
    u64::MAX
}

/// The process-wide registry that [`crate::span!`], [`crate::counter_add`],
/// and [`crate::histogram_record`] feed.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_aggregate_across_threads() {
        let reg = Registry::new();
        thread::scope(|s| {
            for t in 0..8 {
                let reg = &reg;
                s.spawn(move || {
                    for _ in 0..1000 {
                        reg.counter_add("shared", 1);
                        reg.counter_add(&format!("per_thread[{t}]"), 2);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        assert_eq!(get("shared"), 8000);
        for t in 0..8 {
            assert_eq!(get(&format!("per_thread[{t}]")), 2000);
        }
    }

    #[test]
    fn span_stats_aggregate_across_threads() {
        let reg = Registry::new();
        thread::scope(|s| {
            for _ in 0..4 {
                let reg = &reg;
                s.spawn(move || {
                    let stat = reg.span_stat("work");
                    for i in 1..=100u64 {
                        stat.record(i * 1000);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        let span = &snap.spans[0];
        assert_eq!(span.name, "work");
        assert_eq!(span.calls, 400);
        assert_eq!(span.total_ns, 4 * 1000 * (100 * 101 / 2));
        assert_eq!(span.min_ns, 1000);
        assert_eq!(span.max_ns, 100_000);
        assert_eq!(span.mean_ns(), span.total_ns / 400);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded() {
        let reg = Registry::new();
        for v in [0u64, 1, 2, 3, 10, 100, 1000, 5000, 100_000] {
            reg.histogram_record("h", v);
        }
        let snap = reg.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 9);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100_000);
        assert!(h.p50 <= h.p95);
        // p50 of 9 values is the 5th (value 10) → bucket upper edge ≥ 10.
        assert!(h.p50 >= 10, "p50 = {}", h.p50);
        assert!(h.p95 >= 100_000, "p95 = {}", h.p95);
    }

    #[test]
    fn snapshot_is_sorted_and_reset_clears() {
        let reg = Registry::new();
        reg.counter_add("b", 1);
        reg.counter_add("a", 1);
        reg.span_stat("z").record(5);
        reg.span_stat("y").record(5);
        reg.gauge_set("g2", 7);
        reg.gauge_set("g1", 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0, "a");
        assert_eq!(snap.counters[1].0, "b");
        assert_eq!(snap.spans[0].name, "y");
        assert_eq!(snap.spans[1].name, "z");
        assert_eq!(snap.gauges, vec![("g1".into(), 3), ("g2".into(), 7)]);
        reg.reset();
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty() && snap.spans.is_empty() && snap.gauges.is_empty());
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let reg = Registry::new();
        reg.gauge_set("proc.rss_bytes", 100);
        reg.gauge_set("proc.rss_bytes", 42);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges, vec![("proc.rss_bytes".into(), 42)]);
    }

    #[test]
    fn top_bucket_quantile_covers_values_above_2_pow_63() {
        // Regression: values with bit length 64 land in bucket 64; the
        // estimated quantile must not fall below the value's bucket lower
        // bound (2^63). With 64 buckets and a clamp this came back as
        // 2^63 - 1.
        let reg = Registry::new();
        for _ in 0..4 {
            reg.histogram_record("huge", u64::MAX);
        }
        reg.histogram_record("huge", 1u64 << 63);
        let snap = reg.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.p50, u64::MAX);
        assert_eq!(h.p95, u64::MAX);
        assert_eq!(h.quantile(0.99), u64::MAX);
        assert!(h.p50 >= 1u64 << 63);
    }

    #[test]
    fn bucket_upper_edges_are_monotone() {
        let mut prev = 0u64;
        for i in 1..HIST_BUCKETS {
            let edge = bucket_upper_edge(i);
            assert!(edge > prev, "bucket {i}: {edge} <= {prev}");
            prev = edge;
        }
        assert_eq!(bucket_upper_edge(64), u64::MAX);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use aml_propcheck::prelude::*;

    /// Log2 bucket bounds of `value`: `[2^(bl-1), upper_edge(bl)]` where
    /// `bl` is the bit length. This is the ground truth the histogram's
    /// bucketing is supposed to honor.
    fn true_bucket_bounds(value: u64) -> (u64, u64) {
        let bl = (64 - value.leading_zeros()) as usize;
        let lo = if bl == 0 { 0 } else { 1u64 << (bl - 1) };
        (lo, bucket_upper_edge(bl))
    }

    /// Exact nearest-rank quantile of `values` (must be non-empty), using
    /// the same rank rule as `bucket_quantile`.
    fn exact_quantile(values: &mut [u64], q: f64) -> u64 {
        values.sort_unstable();
        let rank = ((values.len() as f64 * q).ceil() as usize).max(1);
        values[rank - 1]
    }

    proptest! {
        /// For any set of observations spanning the full u64 magnitude
        /// range, the estimated p50/p95/p99 stay within the true
        /// quantile value's log2 bucket bounds.
        #[test]
        fn prop_quantile_estimates_stay_in_true_bucket(
            raw in aml_propcheck::collection::vec((0u64..65, 0u64..u64::MAX), 1..48)
        ) {
            // Shift mantissas down so values cover every bucket,
            // including bit length 64 (shift 0) and zero (shift 64).
            let values: Vec<u64> = raw
                .iter()
                .map(|&(shift, mantissa)| {
                    if shift >= 64 { 0 } else { mantissa >> shift }
                })
                .collect();
            let reg = Registry::new();
            for &v in &values {
                reg.histogram_record("h", v);
            }
            let snap = reg.snapshot();
            let h = &snap.histograms[0];
            for q in [0.50, 0.95, 0.99] {
                let mut sorted = values.clone();
                let truth = exact_quantile(&mut sorted, q);
                let (lo, hi) = true_bucket_bounds(truth);
                let est = h.quantile(q);
                prop_assert!(
                    est >= lo && est <= hi,
                    "q={} est={} outside [{}, {}] (truth={})",
                    q, est, lo, hi, truth
                );
            }
        }

        /// The estimate is always >= the true quantile (it reports the
        /// bucket's upper edge) and never exceeds the observed max's
        /// bucket upper edge.
        #[test]
        fn prop_quantile_estimate_is_bucket_upper_edge(
            raw in aml_propcheck::collection::vec((0u64..65, 0u64..u64::MAX), 1..48)
        ) {
            let values: Vec<u64> = raw
                .iter()
                .map(|&(shift, mantissa)| {
                    if shift >= 64 { 0 } else { mantissa >> shift }
                })
                .collect();
            let reg = Registry::new();
            for &v in &values {
                reg.histogram_record("h", v);
            }
            let snap = reg.snapshot();
            let h = &snap.histograms[0];
            let max = *values.iter().max().unwrap();
            let (_, max_hi) = true_bucket_bounds(max);
            for q in [0.50, 0.95, 0.99] {
                let mut sorted = values.clone();
                let truth = exact_quantile(&mut sorted, q);
                let est = h.quantile(q);
                prop_assert!(est >= truth, "q={} est={} < truth={}", q, est, truth);
                prop_assert!(est <= max_hi, "q={} est={} > max edge {}", q, est, max_hi);
            }
        }
    }
}
