//! Model- & data-quality plane: dataset profiles, drift scores, and
//! calibration/confusion diagnostics.
//!
//! The performance planes (BENCH record, ledger, searchview) watch *how
//! fast* the pipeline runs and *where the search goes*; nobody watches
//! what the model actually learned or whether the data it sees is
//! shifting. This module closes that gap with the same
//! armed-collector/off-is-free design as [`crate::searchview`]:
//!
//! * **write side** — `aml-core::experiment` computes, once per feedback
//!   round, a [`FeatureProfile`] per feature for the train and eval
//!   splits plus the ensemble's confusion matrix, Brier score, and
//!   10-bin reliability counts, and emits them as two additive ledger
//!   events (`dataset_profile`, `model_diagnostics`). The events carry
//!   only *raw counts and sums*; every derived metric (accuracy,
//!   precision/recall/F1, ECE, PSI) is recomputed on the read side so a
//!   `quality.json` and an `amlquality` recompute from the ledger are
//!   byte-identical.
//! * **collector** — when armed ([`set_active`]), [`observe`] keeps a
//!   copy of each quality event; [`live_json`] serves the current
//!   report at `/quality` mid-run, and [`write_json`] renders the final
//!   pinned-field-order `quality.json` behind `--quality-out`.
//! * **drift** — [`psi`] scores each feature's histogram against a
//!   reference: the previous round's profile by default, or a baseline
//!   loaded from a prior run's `quality.json` (`--quality-ref`,
//!   installed via [`set_reference`]). Bins are epsilon-smoothed so an
//!   empty bin can never produce an infinite score.
//!
//! Disarmed, everything is free: [`observe`] is one relaxed atomic
//! load, the store is never allocated, and `/quality` answers with the
//! `{"active":false}` sentinel.

use crate::ledger::LedgerEvent;
use crate::manifest::json_string_literal;
use crate::sink::{Sink, SpanEvent};
use crate::Snapshot;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Version stamped into `quality.json` and the `/quality` route. Bump
/// only on breaking shape changes; the read side rejects newer versions.
pub const QUALITY_SCHEMA_VERSION: u32 = 1;

/// Histogram resolution cap for feature profiles.
pub const MAX_PROFILE_BINS: usize = 16;

/// Number of confidence bins in the reliability diagram.
pub const RELIABILITY_BINS: usize = 10;

/// A dimension whose domain spans at least this ratio (with a positive
/// lower bound) is binned in log10 space.
const LOG_SCALE_RATIO: f64 = 1e3;

/// Laplace-style smoothing mass added to every bin before computing
/// [`psi`], so empty bins cannot produce `ln(0)` infinities.
const PSI_EPSILON: f64 = 1e-6;

/// Stored quality events are capped so a pathological run cannot grow
/// the store unboundedly; further events count as `dropped`.
const EVENT_CAP: usize = 4096;

/// Shortest round-trip float; non-finite renders as `null` (the
/// ledger's convention).
fn shortest(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn u64_array(vs: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

fn f64_array(vs: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&shortest(*v));
    }
    out.push(']');
    out
}

/// Per-feature summary of one split: moment statistics plus a fixed
/// equal-width histogram over the feature's *declared* domain (log10
/// space for log-scaled dims), so two profiles of the same feature —
/// across rounds or across runs — always share bin edges and are
/// directly comparable with [`psi`]. For small integer domains the bins
/// degenerate to per-category counts.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureProfile {
    /// Feature name (joins profiles across rounds and runs).
    pub name: String,
    /// Finite observations profiled (non-finite values are skipped).
    pub count: u64,
    /// Mean of the observed values (NaN → `null` when `count == 0`).
    pub mean: f64,
    /// Population standard deviation (NaN → `null` when `count == 0`).
    pub std: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Whether the histogram is binned in log10 space.
    pub log10: bool,
    /// Lower histogram edge (log10 units when [`Self::log10`]).
    pub lo: f64,
    /// Upper histogram edge (log10 units when [`Self::log10`]).
    pub hi: f64,
    /// Equal-width bin counts over `[lo, hi]`; out-of-domain values
    /// clamp into the edge bins.
    pub bins: Vec<u64>,
}

impl FeatureProfile {
    /// Pinned-field-order JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"count\":{},\"mean\":{},\"std\":{},\"min\":{},\"max\":{},\"log10\":{},\"lo\":{},\"hi\":{},\"bins\":{}}}",
            json_string_literal(&self.name),
            self.count,
            shortest(self.mean),
            shortest(self.std),
            shortest(self.min),
            shortest(self.max),
            self.log10,
            shortest(self.lo),
            shortest(self.hi),
            u64_array(&self.bins),
        )
    }
}

/// Profile one feature column. `lo`/`hi` are the feature's declared
/// domain bounds (raw units; the log10 transform, when detected, is
/// applied internally). `max_bins` is clamped to
/// `1..=`[`MAX_PROFILE_BINS`] — pass the category count for small
/// integer domains to get per-category counts, or `usize::MAX` for the
/// default resolution. Non-finite values are skipped.
pub fn profile_feature(
    name: &str,
    lo: f64,
    hi: f64,
    max_bins: usize,
    values: &[f64],
) -> FeatureProfile {
    let n_bins = max_bins.clamp(1, MAX_PROFILE_BINS);
    let log10 = lo > 0.0 && hi.is_finite() && lo.is_finite() && hi / lo >= LOG_SCALE_RATIO;
    let (blo, bhi) = if log10 {
        (lo.log10(), hi.log10())
    } else {
        (lo, hi)
    };
    let mut bins = vec![0u64; n_bins];
    let mut count = 0u64;
    let mut sum = 0.0;
    let mut sumsq = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        if !v.is_finite() {
            continue;
        }
        count += 1;
        sum += v;
        sumsq += v * v;
        min = min.min(v);
        max = max.max(v);
        let t = if log10 {
            v.max(f64::MIN_POSITIVE).log10()
        } else {
            v
        };
        let idx = if bhi > blo && bhi.is_finite() && blo.is_finite() {
            (((t - blo) / (bhi - blo)) * n_bins as f64).floor()
        } else {
            0.0
        };
        let idx = (idx as i64).clamp(0, n_bins as i64 - 1) as usize;
        bins[idx] += 1;
    }
    let (mean, std) = if count > 0 {
        let m = sum / count as f64;
        (m, (sumsq / count as f64 - m * m).max(0.0).sqrt())
    } else {
        (f64::NAN, f64::NAN)
    };
    FeatureProfile {
        name: name.to_string(),
        count,
        mean,
        std,
        min: if count > 0 { min } else { f64::NAN },
        max: if count > 0 { max } else { f64::NAN },
        log10,
        lo: blo,
        hi: bhi,
        bins,
    }
}

/// Population Stability Index between an `expected` (reference) and
/// `observed` histogram over shared bin edges. Bins are smoothed with
/// [`PSI_EPSILON`] mass, so the score is always finite; it is `0`
/// exactly for identical histograms and non-negative otherwise (tiny
/// negative float error is clamped). Histograms of unequal length are
/// compared over the longer length with missing bins read as empty.
pub fn psi(expected: &[u64], observed: &[u64]) -> f64 {
    let n = expected.len().max(observed.len());
    if n == 0 {
        return 0.0;
    }
    let e_total: f64 = expected.iter().map(|&c| c as f64).sum();
    let o_total: f64 = observed.iter().map(|&c| c as f64).sum();
    let smooth_total = PSI_EPSILON * n as f64;
    let mut score = 0.0;
    for i in 0..n {
        let e =
            (expected.get(i).copied().unwrap_or(0) as f64 + PSI_EPSILON) / (e_total + smooth_total);
        let o =
            (observed.get(i).copied().unwrap_or(0) as f64 + PSI_EPSILON) / (o_total + smooth_total);
        if e != o {
            score += (o - e) * (o / e).ln();
        }
    }
    score.max(0.0)
}

/// Expected Calibration Error from raw reliability-bin tallies:
/// `count[b]` predictions fell in confidence bin `b`, their predicted
/// probabilities summing to `conf_sum[b]`, of which `hit[b]` were
/// correct. Empty bins contribute nothing; an empty diagram scores 0.
pub fn ece_from_bins(count: &[u64], conf_sum: &[f64], hit: &[u64]) -> f64 {
    let total: u64 = count.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut ece = 0.0;
    for (b, &c) in count.iter().enumerate() {
        let n = c as f64;
        if n == 0.0 {
            continue;
        }
        let conf = conf_sum.get(b).copied().unwrap_or(0.0) / n;
        let acc = hit.get(b).copied().unwrap_or(0) as f64 / n;
        ece += n / total as f64 * (acc - conf).abs();
    }
    ece
}

/// A baseline profile set loaded from a previous run's `quality.json`
/// (`--quality-ref`); drift is scored against it instead of the
/// previous round.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReference {
    /// Label rendered in the report's `drift.reference` field
    /// (`"baseline"` for `--quality-ref`).
    pub label: String,
    /// The reference train-split feature profiles, matched by name.
    pub features: Vec<FeatureProfile>,
}

/// One feedback round's quality summary, derived from its
/// `model_diagnostics` (and `dataset_profile`) events.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundQuality {
    /// Process-wide round sequence number.
    pub round: u64,
    /// Strategy applied this round.
    pub strategy: String,
    /// Eval rows the diagnostics were computed over.
    pub rows: u64,
    /// Plain accuracy (confusion-matrix trace / total).
    pub accuracy: f64,
    /// Mean recall over classes present in eval.
    pub balanced_accuracy: f64,
    /// Mean F1 over classes present in eval.
    pub macro_f1: f64,
    /// Multiclass Brier score (mean squared probability error).
    pub brier: f64,
    /// Expected Calibration Error over the reliability bins.
    pub ece: f64,
    /// Mean ALE ±σ band width (2σ) over all grid cells; 0 without ALE.
    pub ale_band_width: f64,
    /// Mean per-feature PSI of this round's train profile against the
    /// drift reference; `None` when no reference exists (first round
    /// without a baseline).
    pub psi_mean: Option<f64>,
    /// Max per-feature PSI against the drift reference.
    pub psi_max: Option<f64>,
}

/// Per-class quality of the final round.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassQuality {
    /// Class name.
    pub class: String,
    /// True rows of this class in eval.
    pub support: u64,
    /// tp / predicted; 0 when the class was never predicted.
    pub precision: f64,
    /// tp / support; 0 when the class is absent from eval.
    pub recall: f64,
    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub f1: f64,
}

/// Reliability-diagram data of the final round: per confidence bin, how
/// many predictions landed there, their mean confidence, and their
/// empirical accuracy (`null` for empty bins).
#[derive(Debug, Clone, PartialEq)]
pub struct Reliability {
    /// Predictions per confidence bin.
    pub count: Vec<u64>,
    /// Mean predicted probability per bin (NaN → `null` when empty).
    pub confidence: Vec<f64>,
    /// Empirical accuracy per bin (NaN → `null` when empty).
    pub accuracy: Vec<f64>,
}

/// Full diagnostics of the last completed round.
#[derive(Debug, Clone, PartialEq)]
pub struct FinalDiagnostics {
    /// Round the diagnostics belong to.
    pub round: u64,
    /// Class names, confusion-matrix order.
    pub classes: Vec<String>,
    /// Confusion matrix, `confusion[true][pred]`.
    pub confusion: Vec<Vec<u64>>,
    /// Per-class precision/recall/F1.
    pub per_class: Vec<ClassQuality>,
    /// Reliability-diagram data.
    pub reliability: Reliability,
}

/// One feature's drift score in the report's `drift` section.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureDrift {
    /// Feature name.
    pub name: String,
    /// PSI against the reference; `None` when the reference lacks the
    /// feature or no reference exists.
    pub psi: Option<f64>,
}

/// The drift section: which reference the scores are against, and the
/// latest train profile's per-feature PSI.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// `"baseline"` (a `--quality-ref` profile), `"previous_round"`, or
    /// `"none"` (fewer than two rounds and no baseline).
    pub reference: String,
    /// Per-feature drift of the latest train profile.
    pub features: Vec<FeatureDrift>,
}

/// One split's profile as carried in the report (the latest round's).
#[derive(Debug, Clone, PartialEq)]
pub struct SplitProfile {
    /// Round the profile was computed in.
    pub round: u64,
    /// Split name (`train` or `eval`).
    pub split: String,
    /// Rows in the split.
    pub rows: u64,
    /// Rows per class (class balance), class-index order.
    pub class_counts: Vec<u64>,
    /// Per-feature summaries.
    pub features: Vec<FeatureProfile>,
}

impl SplitProfile {
    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"round\":{},\"split\":{},\"rows\":{},\"class_counts\":{},\"features\":[",
            self.round,
            json_string_literal(&self.split),
            self.rows,
            u64_array(&self.class_counts),
        );
        for (i, f) in self.features.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&f.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// The full quality report: per-round series, final-round diagnostics,
/// drift scores, and the latest profiles (which double as the baseline
/// a later run can reference with `--quality-ref`).
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Report shape version ([`QUALITY_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// One entry per feedback round with diagnostics, round order.
    pub rounds: Vec<RoundQuality>,
    /// Diagnostics of the last round; `None` when no round completed.
    pub final_diag: Option<FinalDiagnostics>,
    /// Drift of the latest train profile against the reference.
    pub drift: DriftReport,
    /// The latest round's split profiles (train first, then eval).
    pub profiles: Vec<SplitProfile>,
    /// Quality events discarded after the store cap was hit.
    pub dropped: u64,
}

impl QualityReport {
    /// Render the pinned-field-order JSON document (trailing newline
    /// included), byte-identical between `--quality-out`, `/quality`,
    /// and an `amlquality` recompute from the same ledger.
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"active\":true,\"schema_version\":{},\"rounds\":[",
            self.schema_version
        );
        for (i, r) in self.rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"round\":{},\"strategy\":{},\"rows\":{},\"accuracy\":{},\"balanced_accuracy\":{},\"macro_f1\":{},\"brier\":{},\"ece\":{},\"ale_band_width\":{},\"psi_mean\":{},\"psi_max\":{}}}",
                r.round,
                json_string_literal(&r.strategy),
                r.rows,
                shortest(r.accuracy),
                shortest(r.balanced_accuracy),
                shortest(r.macro_f1),
                shortest(r.brier),
                shortest(r.ece),
                shortest(r.ale_band_width),
                r.psi_mean.map_or("null".to_string(), shortest),
                r.psi_max.map_or("null".to_string(), shortest),
            );
        }
        out.push_str("],\"final\":");
        match &self.final_diag {
            None => out.push_str("null"),
            Some(d) => {
                let _ = write!(out, "{{\"round\":{},\"classes\":[", d.round);
                for (i, c) in d.classes.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string_literal(c));
                }
                out.push_str("],\"confusion\":[");
                for (i, row) in d.confusion.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&u64_array(row));
                }
                out.push_str("],\"per_class\":[");
                for (i, c) in d.per_class.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"class\":{},\"support\":{},\"precision\":{},\"recall\":{},\"f1\":{}}}",
                        json_string_literal(&c.class),
                        c.support,
                        shortest(c.precision),
                        shortest(c.recall),
                        shortest(c.f1),
                    );
                }
                let _ = write!(
                    out,
                    "],\"reliability\":{{\"count\":{},\"confidence\":{},\"accuracy\":{}}}}}",
                    u64_array(&d.reliability.count),
                    f64_array(&d.reliability.confidence),
                    f64_array(&d.reliability.accuracy),
                );
            }
        }
        let _ = write!(
            out,
            ",\"drift\":{{\"reference\":{},\"features\":[",
            json_string_literal(&self.drift.reference)
        );
        for (i, f) in self.drift.features.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"psi\":{}}}",
                json_string_literal(&f.name),
                f.psi.map_or("null".to_string(), shortest),
            );
        }
        out.push_str("]},\"profiles\":[");
        for (i, p) in self.profiles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&p.to_json());
        }
        let _ = writeln!(out, "],\"dropped\":{}}}", self.dropped);
        out
    }

    /// Human-readable summary table (round series, final confusion
    /// matrix, drift scores).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "model quality — {} round(s)", self.rounds.len());
        if !self.rounds.is_empty() {
            let _ = writeln!(
                out,
                "{:>5}  {:<14} {:>6}  {:>7}  {:>7}  {:>7}  {:>7}  {:>7}  {:>8}",
                "round", "strategy", "rows", "acc", "bal_acc", "f1", "brier", "ece", "psi_mean"
            );
            for r in &self.rounds {
                let _ = writeln!(
                    out,
                    "{:>5}  {:<14} {:>6}  {:>7.4}  {:>7.4}  {:>7.4}  {:>7.4}  {:>7.4}  {:>8}",
                    r.round,
                    r.strategy,
                    r.rows,
                    r.accuracy,
                    r.balanced_accuracy,
                    r.macro_f1,
                    r.brier,
                    r.ece,
                    r.psi_mean.map_or("-".to_string(), |p| format!("{p:.4}")),
                );
            }
        }
        if let Some(d) = &self.final_diag {
            let _ = writeln!(out, "confusion (round {}; rows = true class):", d.round);
            let name_w = d.classes.iter().map(String::len).max().unwrap_or(4).max(4);
            let mut header = format!("  {:>name_w$}", "");
            for c in &d.classes {
                let _ = write!(header, "  {c:>name_w$}");
            }
            let _ = writeln!(out, "{header}");
            for (i, row) in d.confusion.iter().enumerate() {
                let mut line = format!(
                    "  {:>name_w$}",
                    d.classes.get(i).map_or("?", String::as_str)
                );
                for v in row {
                    let _ = write!(line, "  {v:>name_w$}");
                }
                let _ = writeln!(out, "{line}");
            }
            for c in &d.per_class {
                let _ = writeln!(
                    out,
                    "  class {:<10} support {:>6}  precision {:.4}  recall {:.4}  f1 {:.4}",
                    c.class, c.support, c.precision, c.recall, c.f1,
                );
            }
        }
        if !self.drift.features.is_empty() {
            let _ = writeln!(out, "drift vs {}:", self.drift.reference);
            for f in &self.drift.features {
                let _ = writeln!(
                    out,
                    "  {:<20} psi {}",
                    f.name,
                    f.psi.map_or("-".to_string(), |p| format!("{p:.4}")),
                );
            }
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "({} quality event(s) dropped at the store cap)",
                self.dropped
            );
        }
        out
    }

    /// Prometheus text-exposition gauges for external scrapers:
    /// `quality_final_acc`, `quality_ece`, and per-feature
    /// `quality_psi{key="..."}`. Empty when the report has no rounds.
    pub fn render_prometheus(&self) -> String {
        let Some(last) = self.rounds.last() else {
            return String::new();
        };
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE quality_final_acc gauge");
        let _ = writeln!(out, "quality_final_acc {}", shortest(last.accuracy));
        let _ = writeln!(out, "# TYPE quality_ece gauge");
        let _ = writeln!(out, "quality_ece {}", shortest(last.ece));
        let drifted: Vec<&FeatureDrift> = self
            .drift
            .features
            .iter()
            .filter(|f| f.psi.is_some())
            .collect();
        if !drifted.is_empty() {
            let _ = writeln!(out, "# TYPE quality_psi gauge");
            for f in drifted {
                let _ = writeln!(
                    out,
                    "quality_psi{{key=\"{}\"}} {}",
                    f.name.replace('"', "'"),
                    shortest(f.psi.unwrap_or(0.0)),
                );
            }
        }
        out
    }
}

/// Derive accuracy, balanced accuracy, macro F1, and per-class PRF1
/// from a confusion matrix. All divisions are guarded: an empty eval
/// split or an absent class yields 0, never NaN.
pub fn confusion_quality(
    classes: &[String],
    confusion: &[Vec<u64>],
) -> (f64, f64, f64, Vec<ClassQuality>) {
    let k = confusion.len();
    let total: u64 = confusion.iter().flat_map(|r| r.iter()).sum();
    let correct: u64 = (0..k)
        .map(|i| confusion[i].get(i).copied().unwrap_or(0))
        .sum();
    let accuracy = if total > 0 {
        correct as f64 / total as f64
    } else {
        0.0
    };
    let mut per_class = Vec::with_capacity(k);
    let mut recall_sum = 0.0;
    let mut f1_sum = 0.0;
    let mut present = 0u64;
    for i in 0..k {
        let support: u64 = confusion[i].iter().sum();
        let predicted: u64 = confusion
            .iter()
            .map(|r| r.get(i).copied().unwrap_or(0))
            .sum();
        let tp = confusion[i].get(i).copied().unwrap_or(0) as f64;
        let precision = if predicted > 0 {
            tp / predicted as f64
        } else {
            0.0
        };
        let recall = if support > 0 {
            tp / support as f64
        } else {
            0.0
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        if support > 0 {
            present += 1;
            recall_sum += recall;
            f1_sum += f1;
        }
        per_class.push(ClassQuality {
            class: classes
                .get(i)
                .cloned()
                .unwrap_or_else(|| format!("class{i}")),
            support,
            precision,
            recall,
            f1,
        });
    }
    let balanced = if present > 0 {
        recall_sum / present as f64
    } else {
        0.0
    };
    let macro_f1 = if present > 0 {
        f1_sum / present as f64
    } else {
        0.0
    };
    (accuracy, balanced, macro_f1, per_class)
}

fn split_rank(split: &str) -> u8 {
    match split {
        "train" => 0,
        "eval" => 1,
        _ => 2,
    }
}

/// Pure reduction: build the [`QualityReport`] from quality ledger
/// events (`DatasetProfile` / `ModelDiagnostics`; other variants are
/// ignored) and an optional drift baseline. Events are canonically
/// sorted first, so the result is independent of arrival order — the
/// same 1-vs-N-worker identity contract the ledger itself keeps.
pub fn report_from_events<'a, I>(
    events: I,
    reference: Option<&QualityReference>,
    dropped: u64,
) -> QualityReport
where
    I: IntoIterator<Item = &'a LedgerEvent>,
{
    // One model_diagnostics event's payload, in field order.
    type DiagTuple = (
        u64,
        String,
        u64,
        Vec<String>,
        Vec<Vec<u64>>,
        f64,
        Vec<u64>,
        Vec<f64>,
        Vec<u64>,
        f64,
    );
    let mut profiles: Vec<SplitProfile> = Vec::new();
    let mut diags: Vec<DiagTuple> = Vec::new();
    for event in events {
        match event {
            LedgerEvent::DatasetProfile {
                round,
                split,
                rows,
                class_counts,
                features,
            } => profiles.push(SplitProfile {
                round: *round,
                split: split.clone(),
                rows: *rows,
                class_counts: class_counts.clone(),
                features: features.clone(),
            }),
            LedgerEvent::ModelDiagnostics {
                round,
                strategy,
                rows,
                classes,
                confusion,
                brier,
                bin_count,
                bin_conf_sum,
                bin_hit,
                ale_band_width,
            } => diags.push((
                *round,
                strategy.clone(),
                *rows,
                classes.clone(),
                confusion.clone(),
                *brier,
                bin_count.clone(),
                bin_conf_sum.clone(),
                bin_hit.clone(),
                *ale_band_width,
            )),
            _ => {}
        }
    }
    profiles.sort_by(|a, b| {
        (a.round, split_rank(&a.split), a.split.as_str()).cmp(&(
            b.round,
            split_rank(&b.split),
            b.split.as_str(),
        ))
    });
    // Last write wins for a duplicated (round, split) pair.
    profiles.dedup_by(|b, a| {
        if a.round == b.round && a.split == b.split {
            std::mem::swap(a, b);
            true
        } else {
            false
        }
    });
    diags.sort_by_key(|d| d.0);
    diags.dedup_by(|b, a| {
        if a.0 == b.0 {
            std::mem::swap(a, b);
            true
        } else {
            false
        }
    });

    let train_profiles: Vec<&SplitProfile> =
        profiles.iter().filter(|p| p.split == "train").collect();
    let psi_against = |round: u64| -> Option<Vec<FeatureDrift>> {
        let pos = train_profiles.iter().position(|p| p.round == round)?;
        let current = train_profiles[pos];
        let reference_features: &[FeatureProfile] = match reference {
            Some(r) => &r.features,
            None if pos > 0 => &train_profiles[pos - 1].features,
            None => return None,
        };
        Some(
            current
                .features
                .iter()
                .map(|f| FeatureDrift {
                    name: f.name.clone(),
                    psi: reference_features
                        .iter()
                        .find(|r| r.name == f.name)
                        .map(|r| psi(&r.bins, &f.bins)),
                })
                .collect(),
        )
    };

    let rounds: Vec<RoundQuality> = diags
        .iter()
        .map(
            |(
                round,
                strategy,
                rows,
                classes,
                confusion,
                brier,
                bin_count,
                bin_conf_sum,
                bin_hit,
                band,
            )| {
                let (accuracy, balanced, macro_f1, _) = confusion_quality(classes, confusion);
                let drift = psi_against(*round);
                let scores: Vec<f64> = drift.iter().flatten().filter_map(|f| f.psi).collect();
                let (psi_mean, psi_max) = if scores.is_empty() {
                    (None, None)
                } else {
                    (
                        Some(scores.iter().sum::<f64>() / scores.len() as f64),
                        Some(scores.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
                    )
                };
                RoundQuality {
                    round: *round,
                    strategy: strategy.clone(),
                    rows: *rows,
                    accuracy,
                    balanced_accuracy: balanced,
                    macro_f1,
                    brier: *brier,
                    ece: ece_from_bins(bin_count, bin_conf_sum, bin_hit),
                    ale_band_width: *band,
                    psi_mean,
                    psi_max,
                }
            },
        )
        .collect();

    let final_diag = diags.last().map(
        |(round, _, _, classes, confusion, _, bin_count, bin_conf_sum, bin_hit, _)| {
            let (_, _, _, per_class) = confusion_quality(classes, confusion);
            let confidence: Vec<f64> = bin_count
                .iter()
                .zip(bin_conf_sum)
                .map(|(&n, &s)| if n > 0 { s / n as f64 } else { f64::NAN })
                .collect();
            let accuracy: Vec<f64> = bin_count
                .iter()
                .zip(bin_hit)
                .map(|(&n, &h)| if n > 0 { h as f64 / n as f64 } else { f64::NAN })
                .collect();
            FinalDiagnostics {
                round: *round,
                classes: classes.clone(),
                confusion: confusion.clone(),
                per_class,
                reliability: Reliability {
                    count: bin_count.clone(),
                    confidence,
                    accuracy,
                },
            }
        },
    );

    let last_round = profiles.iter().map(|p| p.round).max();
    let latest_profiles: Vec<SplitProfile> = match last_round {
        Some(r) => profiles.iter().filter(|p| p.round == r).cloned().collect(),
        None => Vec::new(),
    };
    let drift = match last_round.and_then(psi_against) {
        Some(features) => DriftReport {
            reference: reference
                .map(|r| r.label.clone())
                .unwrap_or_else(|| "previous_round".to_string()),
            features,
        },
        None => DriftReport {
            reference: "none".to_string(),
            features: Vec::new(),
        },
    };

    QualityReport {
        schema_version: QUALITY_SCHEMA_VERSION,
        rounds,
        final_diag,
        drift,
        profiles: latest_profiles,
        dropped,
    }
}

// ---------------------------------------------------------------------
// Armed collector (off-is-free, searchview pattern)
// ---------------------------------------------------------------------

static ACTIVE: AtomicBool = AtomicBool::new(false);

#[derive(Default)]
struct Store {
    events: Vec<LedgerEvent>,
    reference: Option<QualityReference>,
    dropped: u64,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

/// Arm or disarm the quality collector. Armed, [`observe`] records
/// quality events; disarmed, observation is one relaxed atomic load.
pub fn set_active(on: bool) {
    ACTIVE.store(on, Ordering::Release);
}

/// Whether the collector is currently armed.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Clear all recorded quality state (events, reference, drop counter).
pub fn reset() {
    let mut s = store()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    s.events.clear();
    s.reference = None;
    s.dropped = 0;
}

/// Install the drift baseline loaded from a previous run's
/// `quality.json` (`--quality-ref`). Replaces any prior reference.
pub fn set_reference(reference: QualityReference) {
    let mut s = store()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    s.reference = Some(reference);
}

/// Record a ledger event if it is a quality event and the collector is
/// armed. Called from the ledger emission path for every event.
pub fn observe(event: &LedgerEvent) {
    if !active() {
        return;
    }
    if !matches!(
        event,
        LedgerEvent::DatasetProfile { .. } | LedgerEvent::ModelDiagnostics { .. }
    ) {
        return;
    }
    let mut s = store()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if s.events.len() >= EVENT_CAP {
        s.dropped += 1;
        return;
    }
    s.events.push(event.clone());
}

/// Reduce the recorded events into a [`QualityReport`].
pub fn analyze() -> QualityReport {
    let s = store()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    report_from_events(s.events.iter(), s.reference.as_ref(), s.dropped)
}

/// The `/quality` route body: the live report as JSON, or the
/// `{"active":false}` sentinel when the collector is disarmed and has
/// recorded nothing.
pub fn live_json() -> String {
    let s = store()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if s.events.is_empty() && !active() {
        return "{\"active\":false}\n".to_string();
    }
    report_from_events(s.events.iter(), s.reference.as_ref(), s.dropped).render_json()
}

/// Prometheus gauges for the `/metrics` route; empty when the collector
/// has recorded nothing.
pub fn prometheus_gauges() -> String {
    let s = store()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if s.events.is_empty() {
        return String::new();
    }
    report_from_events(s.events.iter(), s.reference.as_ref(), s.dropped).render_prometheus()
}

/// Render the report and write it to `path` (creating parent
/// directories), returning the report for further rendering.
pub fn write_json(path: &Path) -> std::io::Result<QualityReport> {
    let report = analyze();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, report.render_json())?;
    Ok(report)
}

/// A no-op sink whose only job is to raise the ledger emission gate
/// (`wants_ledger`), so `--quality-out` works without `--ledger-out`.
pub struct GateSink;

impl Sink for GateSink {
    fn on_span_close(&self, _event: &SpanEvent) {}

    fn on_ledger_event(&self, _event: &LedgerEvent) {}

    fn wants_ledger(&self) -> bool {
        true
    }

    fn finish(&self, _snapshot: &Snapshot) -> std::io::Result<()> {
        Ok(())
    }

    fn target(&self) -> String {
        "quality collector (in memory)".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_event(round: u64, split: &str, values: &[f64]) -> LedgerEvent {
        LedgerEvent::DatasetProfile {
            round,
            split: split.to_string(),
            rows: values.len() as u64,
            class_counts: vec![
                values.len() as u64 / 2,
                values.len() as u64 - values.len() as u64 / 2,
            ],
            features: vec![profile_feature("loss", 0.0, 1.0, 4, values)],
        }
    }

    fn diag_event(round: u64, acc_rows: u64) -> LedgerEvent {
        LedgerEvent::ModelDiagnostics {
            round,
            strategy: "Within-ALE".to_string(),
            rows: acc_rows,
            classes: vec!["ok".to_string(), "bad".to_string()],
            confusion: vec![vec![acc_rows / 2, 1], vec![1, acc_rows / 2 - 2]],
            brier: 0.25,
            bin_count: vec![0, 0, 0, 0, 0, 0, 0, 2, 3, 5],
            bin_conf_sum: vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.5, 2.55, 4.75],
            bin_hit: vec![0, 0, 0, 0, 0, 0, 0, 1, 3, 5],
            ale_band_width: 0.125,
        }
    }

    #[test]
    fn psi_is_zero_for_identical_and_positive_for_shifted() {
        assert_eq!(psi(&[10, 20, 30], &[10, 20, 30]), 0.0);
        assert_eq!(psi(&[0, 0, 0], &[0, 0, 0]), 0.0);
        assert_eq!(psi(&[], &[]), 0.0);
        let shifted = psi(&[30, 20, 10], &[10, 20, 30]);
        assert!(shifted > 0.0 && shifted.is_finite(), "{shifted}");
    }

    #[test]
    fn psi_is_finite_under_adversarial_histograms() {
        // Empty vs populated, single-bin, disjoint support, and
        // length-mismatched histograms must all stay finite and ≥ 0.
        for (e, o) in [
            (vec![], vec![5u64]),
            (vec![0u64], vec![1_000_000]),
            (vec![1_000_000, 0], vec![0, 1_000_000]),
            (vec![1], vec![0, 0, 0, 7]),
        ] {
            let score = psi(&e, &o);
            assert!(
                score.is_finite() && score >= 0.0,
                "{e:?} vs {o:?} -> {score}"
            );
        }
    }

    #[test]
    fn profile_feature_bins_and_moments() {
        let p = profile_feature("x", 0.0, 1.0, 4, &[0.1, 0.1, 0.6, 0.9, 2.5, f64::NAN]);
        assert_eq!(p.count, 5); // NaN skipped
        assert_eq!(p.bins, vec![2, 0, 1, 2]); // 2.5 clamps into the top bin
        assert!(!p.log10);
        assert_eq!(p.min, 0.1);
        assert_eq!(p.max, 2.5);
        assert!((p.mean - 0.84).abs() < 1e-12, "{}", p.mean);
    }

    #[test]
    fn wide_positive_domains_bin_in_log10_space() {
        let p = profile_feature("rate", 1.0, 1e6, 6, &[1.0, 10.0, 100.0, 1e3, 1e4, 1e5]);
        assert!(p.log10);
        assert_eq!(p.lo, 0.0);
        assert_eq!(p.hi, 6.0);
        assert_eq!(p.bins, vec![1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn empty_column_profiles_to_null_moments() {
        let p = profile_feature("x", 0.0, 1.0, 4, &[]);
        assert_eq!(p.count, 0);
        assert!(p.mean.is_nan() && p.std.is_nan() && p.min.is_nan() && p.max.is_nan());
        assert_eq!(p.bins, vec![0, 0, 0, 0]);
        assert!(p.to_json().contains("\"mean\":null"));
    }

    #[test]
    fn degenerate_domain_puts_everything_in_bin_zero() {
        let p = profile_feature("k", 3.0, 3.0, 4, &[3.0, 3.0, 3.0]);
        assert_eq!(p.bins, vec![3, 0, 0, 0]);
    }

    #[test]
    fn ece_matches_hand_computation_and_guards_empty() {
        assert_eq!(ece_from_bins(&[], &[], &[]), 0.0);
        assert_eq!(ece_from_bins(&[0, 0], &[0.0, 0.0], &[0, 0]), 0.0);
        // One bin: 4 predictions at mean conf 0.8, 3 correct → |0.75-0.8|.
        let ece = ece_from_bins(&[4], &[3.2], &[3]);
        assert!((ece - 0.05).abs() < 1e-12, "{ece}");
    }

    #[test]
    fn confusion_quality_guards_absent_classes_and_empty_eval() {
        let classes = vec!["a".to_string(), "b".to_string()];
        // Class b absent from eval and never predicted: all zeros, no NaN.
        let (acc, bal, f1, per) = confusion_quality(&classes, &[vec![5, 0], vec![0, 0]]);
        assert_eq!(acc, 1.0);
        assert_eq!(bal, 1.0);
        assert_eq!(f1, 1.0);
        assert_eq!(per[1].support, 0);
        assert_eq!(
            (per[1].precision, per[1].recall, per[1].f1),
            (0.0, 0.0, 0.0)
        );
        // Empty eval split: everything 0, never NaN.
        let (acc, bal, f1, per) = confusion_quality(&classes, &[vec![0, 0], vec![0, 0]]);
        assert_eq!((acc, bal, f1), (0.0, 0.0, 0.0));
        assert!(per
            .iter()
            .all(|c| c.precision == 0.0 && c.recall == 0.0 && c.f1 == 0.0));
    }

    #[test]
    fn report_orders_rounds_and_scores_drift_against_previous_round() {
        // Arrival order scrambled: the reduction must sort.
        let events = vec![
            diag_event(1, 20),
            profile_event(1, "train", &[0.9, 0.9, 0.9, 0.8]),
            profile_event(0, "eval", &[0.2, 0.6]),
            diag_event(0, 20),
            profile_event(0, "train", &[0.1, 0.2, 0.3, 0.4]),
            profile_event(1, "eval", &[0.2, 0.6]),
        ];
        let report = report_from_events(&events, None, 0);
        assert_eq!(report.rounds.len(), 2);
        assert_eq!(report.rounds[0].round, 0);
        assert_eq!(
            report.rounds[0].psi_mean, None,
            "no reference before round 1"
        );
        let psi1 = report.rounds[1]
            .psi_mean
            .expect("round 1 drifts vs round 0");
        assert!(psi1 > 0.0 && psi1.is_finite());
        assert_eq!(report.drift.reference, "previous_round");
        assert_eq!(report.profiles.len(), 2);
        assert_eq!(report.profiles[0].split, "train");
        assert_eq!(report.profiles[1].split, "eval");
        // Shuffled arrival renders byte-identically.
        let mut reversed = events.clone();
        reversed.reverse();
        assert_eq!(
            report.render_json(),
            report_from_events(&reversed, None, 0).render_json()
        );
    }

    #[test]
    fn baseline_reference_overrides_previous_round() {
        let events = vec![profile_event(0, "train", &[0.1, 0.2]), diag_event(0, 20)];
        let reference = QualityReference {
            label: "baseline".to_string(),
            features: vec![profile_feature("loss", 0.0, 1.0, 4, &[0.9, 0.9])],
        };
        let report = report_from_events(&events, Some(&reference), 0);
        assert_eq!(report.drift.reference, "baseline");
        let psi0 = report.rounds[0].psi_mean.expect("baseline anchors round 0");
        assert!(psi0 > 0.0);
        // A feature missing from the reference scores null, not a panic.
        let other = QualityReference {
            label: "baseline".to_string(),
            features: vec![profile_feature("other", 0.0, 1.0, 4, &[0.5])],
        };
        let report = report_from_events(&events, Some(&other), 0);
        assert_eq!(report.drift.features[0].psi, None);
        assert_eq!(report.rounds[0].psi_mean, None);
    }

    #[test]
    fn json_rendering_is_byte_pinned() {
        let report = QualityReport {
            schema_version: 1,
            rounds: vec![RoundQuality {
                round: 0,
                strategy: "Random".to_string(),
                rows: 4,
                accuracy: 0.75,
                balanced_accuracy: 0.75,
                macro_f1: 0.75,
                brier: 0.5,
                ece: 0.25,
                ale_band_width: 0.125,
                psi_mean: None,
                psi_max: None,
            }],
            final_diag: Some(FinalDiagnostics {
                round: 0,
                classes: vec!["ok".to_string(), "bad".to_string()],
                confusion: vec![vec![2, 1], vec![0, 1]],
                per_class: vec![ClassQuality {
                    class: "ok".to_string(),
                    support: 3,
                    precision: 1.0,
                    recall: 0.5,
                    f1: 0.625,
                }],
                reliability: Reliability {
                    count: vec![0, 4],
                    confidence: vec![f64::NAN, 0.75],
                    accuracy: vec![f64::NAN, 0.75],
                },
            }),
            drift: DriftReport {
                reference: "previous_round".to_string(),
                features: vec![FeatureDrift {
                    name: "loss".to_string(),
                    psi: Some(0.125),
                }],
            },
            profiles: vec![SplitProfile {
                round: 0,
                split: "train".to_string(),
                rows: 2,
                class_counts: vec![1, 1],
                features: vec![FeatureProfile {
                    name: "loss".to_string(),
                    count: 2,
                    mean: 0.5,
                    std: 0.25,
                    min: 0.25,
                    max: 0.75,
                    log10: false,
                    lo: 0.0,
                    hi: 1.0,
                    bins: vec![1, 1],
                }],
            }],
            dropped: 0,
        };
        assert_eq!(
            report.render_json(),
            concat!(
                "{\"active\":true,\"schema_version\":1,",
                "\"rounds\":[{\"round\":0,\"strategy\":\"Random\",\"rows\":4,",
                "\"accuracy\":0.75,\"balanced_accuracy\":0.75,\"macro_f1\":0.75,",
                "\"brier\":0.5,\"ece\":0.25,\"ale_band_width\":0.125,",
                "\"psi_mean\":null,\"psi_max\":null}],",
                "\"final\":{\"round\":0,\"classes\":[\"ok\",\"bad\"],",
                "\"confusion\":[[2,1],[0,1]],",
                "\"per_class\":[{\"class\":\"ok\",\"support\":3,\"precision\":1,",
                "\"recall\":0.5,\"f1\":0.625}],",
                "\"reliability\":{\"count\":[0,4],\"confidence\":[null,0.75],",
                "\"accuracy\":[null,0.75]}},",
                "\"drift\":{\"reference\":\"previous_round\",",
                "\"features\":[{\"name\":\"loss\",\"psi\":0.125}]},",
                "\"profiles\":[{\"round\":0,\"split\":\"train\",\"rows\":2,",
                "\"class_counts\":[1,1],\"features\":[{\"name\":\"loss\",\"count\":2,",
                "\"mean\":0.5,\"std\":0.25,\"min\":0.25,\"max\":0.75,\"log10\":false,",
                "\"lo\":0,\"hi\":1,\"bins\":[1,1]}]}],",
                "\"dropped\":0}\n",
            )
        );
        // The table renders without panicking and mentions the strategy.
        assert!(report.render_table().contains("Random"));
        // Prometheus gauges carry final accuracy, ECE, and drift.
        let prom = report.render_prometheus();
        assert!(prom.contains("quality_final_acc 0.75"), "{prom}");
        assert!(prom.contains("quality_ece 0.25"), "{prom}");
        assert!(prom.contains("quality_psi{key=\"loss\"} 0.125"), "{prom}");
    }

    #[test]
    fn collector_round_trips_and_serves_the_inactive_sentinel() {
        let _guard = crate::test_lock::hold();
        reset();
        set_active(false);
        assert_eq!(live_json(), "{\"active\":false}\n");
        assert_eq!(prometheus_gauges(), "");
        // Disarmed observation records nothing.
        observe(&diag_event(0, 20));
        assert_eq!(live_json(), "{\"active\":false}\n");
        set_active(true);
        observe(&profile_event(0, "train", &[0.1, 0.9]));
        observe(&diag_event(0, 20));
        // Non-quality events are ignored.
        observe(&LedgerEvent::TrialFinished {
            trial: 0,
            rung: 0,
            family: "forest".to_string(),
            score: 0.5,
        });
        let report = analyze();
        assert_eq!(report.rounds.len(), 1);
        assert_eq!(report.profiles.len(), 1);
        assert_eq!(live_json(), report.render_json());
        assert!(!prometheus_gauges().is_empty());
        // Disarmed with data still serves the last report (finish() path).
        set_active(false);
        assert_eq!(live_json(), report.render_json());
        let dir = std::env::temp_dir().join(format!("aml_quality_{}", std::process::id()));
        let path = dir.join("nested/quality.json");
        let written = write_json(&path).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            written.render_json()
        );
        std::fs::remove_dir_all(&dir).ok();
        reset();
        assert_eq!(live_json(), "{\"active\":false}\n");
    }

    fn diag_event_template() -> LedgerEvent {
        diag_event(0, 20)
    }

    #[test]
    fn store_cap_counts_dropped_events() {
        let _guard = crate::test_lock::hold();
        reset();
        set_active(true);
        for _ in 0..(EVENT_CAP + 3) {
            observe(&diag_event_template());
        }
        let report = analyze();
        assert_eq!(report.dropped, 3);
        assert!(report.render_json().contains("\"dropped\":3"));
        set_active(false);
        reset();
    }

    #[test]
    fn gate_sink_raises_the_ledger_gate_and_writes_nothing() {
        let sink = GateSink;
        assert!(sink.wants_ledger());
        assert_eq!(sink.target(), "quality collector (in memory)");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use aml_propcheck::prelude::*;

    proptest! {
        /// PSI is finite and non-negative for any pair of histograms,
        /// including empty bins, all-zero histograms, mismatched
        /// lengths, and counts spanning the full u64 magnitude range.
        #[test]
        fn prop_psi_is_finite_and_non_negative(
            expected in aml_propcheck::collection::vec((0u64..65, 0u64..u64::MAX), 0..24),
            observed in aml_propcheck::collection::vec((0u64..65, 0u64..u64::MAX), 0..24)
        ) {
            // Shift mantissas down so bins cover every magnitude,
            // including zero (shift 64) and full u64 (shift 0).
            let shift = |raw: &[(u64, u64)]| -> Vec<u64> {
                raw.iter()
                    .map(|&(s, m)| if s >= 64 { 0 } else { m >> s })
                    .collect()
            };
            let e = shift(&expected);
            let o = shift(&observed);
            let score = psi(&e, &o);
            prop_assert!(score.is_finite(), "psi({e:?}, {o:?}) = {score}");
            prop_assert!(score >= 0.0, "psi({e:?}, {o:?}) = {score}");
        }

        /// PSI of a histogram against itself is exactly 0: every bin's
        /// smoothed proportions are equal, so no term contributes.
        #[test]
        fn prop_psi_of_identical_histograms_is_zero(
            hist in aml_propcheck::collection::vec(0u64..1_000_000, 0..24)
        ) {
            prop_assert_eq!(psi(&hist, &hist), 0.0);
        }

        /// Concentrating all mass in a different bin than the reference
        /// always registers as drift (strictly positive PSI).
        #[test]
        fn prop_psi_detects_disjoint_mass(
            bins in 2usize..16,
            a in 0usize..16,
            b in 0usize..16,
            mass in 1u64..1_000_000
        ) {
            let (a, b) = (a % bins, b % bins);
            prop_assume!(a != b);
            let mut e = vec![0u64; bins];
            let mut o = vec![0u64; bins];
            e[a] = mass;
            o[b] = mass;
            prop_assert!(psi(&e, &o) > 0.0, "disjoint mass scored 0");
        }
    }
}
