//! Causal trace trees: parent-linked spans with **deterministic** ids.
//!
//! The registry answers "how long did `netsim.labeling` take in total?"
//! and the profiler answers "where was the exclusive time?", but neither
//! can say what the *critical path* of a run is — for that every span
//! needs a stable identity and a causal parent, including spans opened
//! inside `std::thread::scope` workers whose OS-thread ancestry says
//! nothing about their logical parent. This module collects exactly that:
//! one [`Node`] per span close, carrying
//!
//! * a [`SpanId`] derived **structurally** (parent id × name hash ×
//!   sibling ordinal — no timestamps, no thread ids, no global counters
//!   racing across threads), so the same program produces the same tree
//!   whether it ran on 1 worker or 8 and golden tests stay byte-pinned;
//! * a parent link, where cross-thread edges are established explicitly
//!   with [`TraceContext`]: capture the context next to the work
//!   enumeration, hand it into the worker closure, and
//!   [`TraceContext::attach`] it under a deterministic `slot` (the work
//!   item's index) before opening spans;
//! * interval offsets (`start_ns`/`total_ns` against a process-local
//!   origin) so well-formedness — children nested within parents — is
//!   checkable, plus a `parallel` flag marking handoff roots, which is
//!   what lets the critical-path analyzer ([`crate::crit`]) distinguish
//!   "serial chain" from "parallelizable fan-out".
//!
//! Collection rides the existing span guards exactly like the profiler:
//! with the collector inactive the span hot path pays one extra relaxed
//! atomic load and nothing else (the crate's off-is-free rule). Enabled
//! by `--crit-out` through `RunOpts::prepare`.
//!
//! ```
//! aml_telemetry::set_level(aml_telemetry::TelemetryLevel::Summary);
//! aml_telemetry::tracetree::reset();
//! aml_telemetry::tracetree::set_active(true);
//! {
//!     let _phase = aml_telemetry::span!("doc.phase");
//!     let ctx = aml_telemetry::tracetree::TraceContext::current();
//!     std::thread::scope(|scope| {
//!         for slot in 0..4u64 {
//!             scope.spawn(move || {
//!                 let _h = ctx.attach(slot);
//!                 let _s = aml_telemetry::span!("doc.work");
//!             });
//!         }
//!     });
//! }
//! aml_telemetry::tracetree::set_active(false);
//! let nodes = aml_telemetry::tracetree::entries();
//! assert_eq!(nodes.len(), 5); // the phase + one attached root per slot
//! aml_telemetry::tracetree::reset();
//! aml_telemetry::set_level(aml_telemetry::TelemetryLevel::Off);
//! ```

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// A span's stable structural identity (never 0; 0 means "no parent").
pub type SpanId = u64;

/// Whether the trace-tree collector is recording. One relaxed load on
/// the span hot path.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Bumped by [`reset`] so stale thread-local root lanes from a previous
/// collection epoch are re-initialized lazily instead of leaking ids in.
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// Next detached root lane (lane 0 is claimed by the thread that calls
/// [`reset`] — the main thread in every harness wiring).
static LANES: AtomicU64 = AtomicU64::new(1);

/// Hard cap on collected nodes; further closes count into
/// [`dropped`] instead of growing without bound.
pub const MAX_NODES: usize = 1 << 20;

/// Turn the collector on or off (typically once, from CLI parsing,
/// before any spans open).
pub fn set_active(on: bool) {
    ACTIVE.store(on, Ordering::Release);
}

/// Whether the collector is recording (one relaxed atomic load).
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// One recorded span: a node of the causal trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Structural id (see module docs); unique within a collection.
    pub id: SpanId,
    /// Parent id, or 0 for a root (top-level span on its root lane).
    pub parent: SpanId,
    /// Span name as given to [`crate::span!`].
    pub name: String,
    /// Open offset against the collection origin, in ns.
    pub start_ns: u64,
    /// Wall time between open and close, in ns.
    pub total_ns: u64,
    /// Whether this span is a handoff root — opened directly under a
    /// [`TraceContext::attach`], i.e. one unit of a parallelizable
    /// fan-out rather than a serial child.
    pub parallel: bool,
}

impl Node {
    /// Close offset against the collection origin, in ns.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.total_ns
    }
}

/// One entry on a thread's open stack: a real span frame, or a handoff
/// marker pushed by [`TraceContext::attach`] that re-parents the spans
/// opened above it.
enum Frame {
    Span {
        id: SpanId,
        name: String,
        start_ns: u64,
        child_seq: u64,
        parallel: bool,
    },
    Handoff {
        parent: SpanId,
        child_seq: u64,
    },
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    /// `(epoch, lane, root_seq)` for top-level spans on this thread.
    static LANE: Cell<Option<(u64, u64, u64)>> = const { Cell::new(None) };
}

fn store() -> &'static Mutex<(Vec<Node>, u64)> {
    static STORE: OnceLock<Mutex<(Vec<Node>, u64)>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new((Vec::new(), 0)))
}

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    origin().elapsed().as_nanos() as u64
}

/// FNV-1a over the span name — the only string-dependent id input.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: a cheap bijective bit mixer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `id = mix(mix(parent ⊕ hash(name)) ⊕ ordinal)` — purely structural,
/// so identical program shapes give identical ids regardless of thread
/// count or wall clock. 0 is reserved for "no parent".
fn derive_id(parent: SpanId, name: &str, ordinal: u64) -> SpanId {
    let id = mix(mix(parent ^ fnv1a(name).wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ ordinal);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Salt separating one attach slot's (or detached lane's) child ordinals
/// from every other's.
fn slot_salt(slot: u64) -> u64 {
    mix(slot.wrapping_add(0xa77a_c4ed_5a17_0001))
}

/// Ordinal for the next top-level span on this thread. Lane 0 (the
/// thread that called [`reset`]) counts 1, 2, …; detached worker lanes
/// get a salted range so their roots cannot collide with the main
/// thread's. Worker spans that *matter* should attach instead — a
/// detached lane number depends on thread scheduling, so those ids are
/// unique but not reproducible.
fn next_root_ordinal() -> u64 {
    let epoch = EPOCH.load(Ordering::Relaxed);
    LANE.with(|l| {
        let (lane, seq) = match l.get() {
            Some((e, lane, seq)) if e == epoch => (lane, seq + 1),
            _ => (LANES.fetch_add(1, Ordering::Relaxed), 1),
        };
        l.set(Some((epoch, lane, seq)));
        if lane == 0 {
            seq
        } else {
            slot_salt(lane).wrapping_add(seq)
        }
    })
}

/// Push a frame for a span named `name`. Called from span open, only
/// when [`active`].
pub(crate) fn on_span_open(name: &str) {
    let start_ns = now_ns();
    STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let (parent, ordinal, parallel) = match stack.last_mut() {
            Some(Frame::Span { id, child_seq, .. }) => {
                *child_seq += 1;
                (*id, *child_seq, false)
            }
            Some(Frame::Handoff { parent, child_seq }) => {
                *child_seq = child_seq.wrapping_add(1);
                (*parent, *child_seq, true)
            }
            None => (0, next_root_ordinal(), false),
        };
        let id = derive_id(parent, name, ordinal);
        stack.push(Frame::Span {
            id,
            name: name.to_string(),
            start_ns,
            child_seq: 0,
            parallel,
        });
    });
}

/// Pop the top span frame and record its [`Node`]. Called from span
/// drop, only for spans that pushed a frame.
pub(crate) fn on_span_close() {
    let node = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        // The top frame is this span's unless guards were dropped out of
        // order (a misuse the RAII API prevents); bail rather than pop a
        // handoff marker that an AttachGuard still owns.
        if !matches!(stack.last(), Some(Frame::Span { .. })) {
            return None;
        }
        let Some(Frame::Span {
            id,
            name,
            start_ns,
            parallel,
            ..
        }) = stack.pop()
        else {
            unreachable!("matched Frame::Span above");
        };
        let parent = match stack.last() {
            Some(Frame::Span { id, .. }) => *id,
            Some(Frame::Handoff { parent, .. }) => *parent,
            None => 0,
        };
        Some(Node {
            id,
            parent,
            name,
            start_ns,
            total_ns: now_ns().saturating_sub(start_ns),
            parallel,
        })
    });
    let Some(node) = node else { return };
    let mut store = store().lock().unwrap_or_else(PoisonError::into_inner);
    if store.0.len() >= MAX_NODES {
        store.1 += 1;
    } else {
        store.0.push(node);
    }
}

/// A capturable point in the trace tree: the innermost open span at the
/// capture site. `Copy + Send`, so it crosses into `std::thread::scope`
/// closures by value.
///
/// Capture next to the work enumeration, attach inside the worker:
///
/// ```ignore
/// let ctx = TraceContext::current();
/// std::thread::scope(|scope| {
///     for chunk in jobs.chunks(n) {
///         scope.spawn(move || {
///             for (i, job) in chunk {
///                 let _h = ctx.attach(*i as u64); // slot = item index
///                 let _s = aml_telemetry::span!("worker.item");
///                 run(job);
///             }
///         });
///     }
/// });
/// ```
///
/// Because the slot is the *item* index (not the chunk or thread index),
/// the resulting tree is identical however the items were distributed
/// over workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    parent: SpanId,
}

impl TraceContext {
    /// Capture the innermost open span on this thread (parent 0 when
    /// called outside any span, or while the collector is inactive).
    pub fn current() -> TraceContext {
        if !active() {
            return TraceContext { parent: 0 };
        }
        let parent = STACK.with(|s| match s.borrow().last() {
            Some(Frame::Span { id, .. }) => *id,
            Some(Frame::Handoff { parent, .. }) => *parent,
            None => 0,
        });
        TraceContext { parent }
    }

    /// The captured parent id (0 = none). Exposed for tests.
    pub fn parent(&self) -> SpanId {
        self.parent
    }

    /// Re-parent spans subsequently opened on the *calling* thread to
    /// this context, under deterministic `slot` (use the logical work
    /// item's index). Spans opened directly under the guard become
    /// `parallel` handoff roots; open exactly one per attach so the
    /// tree's fan-out mirrors the fan-out of the work. The guard restores
    /// the previous parentage on drop and must be dropped after any span
    /// opened under it (the natural RAII order).
    pub fn attach(self, slot: u64) -> AttachGuard {
        if !active() {
            return AttachGuard { pushed: false };
        }
        STACK.with(|s| {
            s.borrow_mut().push(Frame::Handoff {
                parent: self.parent,
                child_seq: slot_salt(slot),
            })
        });
        AttachGuard { pushed: true }
    }
}

/// RAII guard for [`TraceContext::attach`]; pops the handoff marker.
pub struct AttachGuard {
    pushed: bool,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        if !self.pushed {
            return;
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if matches!(stack.last(), Some(Frame::Handoff { .. })) {
                stack.pop();
            }
        });
    }
}

/// Every recorded node, sorted by `(start_ns, id)` — parents may sort
/// after children they outlived (nodes are recorded at close).
pub fn entries() -> Vec<Node> {
    let store = store().lock().unwrap_or_else(PoisonError::into_inner);
    let mut out = store.0.clone();
    out.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(a.id.cmp(&b.id)));
    out
}

/// Nodes dropped after [`MAX_NODES`] was reached.
pub fn dropped() -> u64 {
    store().lock().unwrap_or_else(PoisonError::into_inner).1
}

/// Drop all recorded nodes, clear this thread's open stack, and claim
/// root lane 0 for the calling thread (so the harness thread's top-level
/// phases get clean ordinals 1, 2, …).
pub fn reset() {
    let mut store = store().lock().unwrap_or_else(PoisonError::into_inner);
    store.0.clear();
    store.1 = 0;
    drop(store);
    let epoch = EPOCH.fetch_add(1, Ordering::Relaxed) + 1;
    LANES.store(1, Ordering::Relaxed);
    STACK.with(|s| s.borrow_mut().clear());
    LANE.with(|l| l.set(Some((epoch, 0, 0))));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_level, span, test_lock, TelemetryLevel};
    use std::collections::HashSet;

    fn collect<F: FnOnce()>(f: F) -> Vec<Node> {
        crate::global().reset();
        reset();
        set_active(true);
        f();
        set_active(false);
        entries()
    }

    /// Thread-count-independent structural projection of a tree.
    fn structure(nodes: &[Node]) -> Vec<(SpanId, SpanId, String, bool)> {
        let mut s: Vec<_> = nodes
            .iter()
            .map(|n| (n.id, n.parent, n.name.clone(), n.parallel))
            .collect();
        s.sort();
        s
    }

    #[test]
    fn same_thread_nesting_builds_a_tree() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        let nodes = collect(|| {
            let _root = span("test.tree.root");
            for _ in 0..2 {
                let _mid = span("test.tree.mid");
                let _leaf = span("test.tree.leaf");
            }
        });
        assert_eq!(nodes.len(), 5);
        let root = nodes.iter().find(|n| n.name == "test.tree.root").unwrap();
        assert_eq!(root.parent, 0);
        let mids: Vec<&Node> = nodes.iter().filter(|n| n.name == "test.tree.mid").collect();
        assert_eq!(mids.len(), 2);
        assert!(mids.iter().all(|m| m.parent == root.id));
        assert_ne!(mids[0].id, mids[1].id, "sibling ordinals split ids");
        let leaves: Vec<&Node> = nodes
            .iter()
            .filter(|n| n.name == "test.tree.leaf")
            .collect();
        // Each leaf hangs off its own mid.
        let mid_ids: HashSet<SpanId> = mids.iter().map(|m| m.id).collect();
        assert!(leaves.iter().all(|l| mid_ids.contains(&l.parent)));
        assert!(!nodes.iter().any(|n| n.parallel));
        // Intervals nest.
        for m in &mids {
            assert!(m.start_ns >= root.start_ns && m.end_ns() <= root.end_ns());
        }
        reset();
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }

    #[test]
    fn ids_are_reproducible_across_collections() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        let program = || {
            let _a = span("test.repro.a");
            let _b = span("test.repro.b");
        };
        let first = structure(&collect(program));
        let second = structure(&collect(program));
        assert_eq!(first, second);
        reset();
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }

    #[test]
    fn handoff_attaches_worker_spans_across_threads() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        let run = |workers: usize| {
            collect(|| {
                let _phase = span("test.handoff.phase");
                let ctx = TraceContext::current();
                let slots: Vec<u64> = (0..8).collect();
                std::thread::scope(|scope| {
                    for chunk in slots.chunks(slots.len().div_ceil(workers)) {
                        let chunk = chunk.to_vec();
                        scope.spawn(move || {
                            for slot in chunk {
                                let _h = ctx.attach(slot);
                                let _s = span("test.handoff.item");
                            }
                        });
                    }
                });
            })
        };
        let one = run(1);
        let phase = one.iter().find(|n| n.name == "test.handoff.phase").unwrap();
        let items: Vec<&Node> = one
            .iter()
            .filter(|n| n.name == "test.handoff.item")
            .collect();
        assert_eq!(items.len(), 8);
        assert!(items.iter().all(|i| i.parent == phase.id && i.parallel));
        assert_eq!(
            items.iter().map(|i| i.id).collect::<HashSet<_>>().len(),
            8,
            "slots separate ids"
        );
        // The tentpole determinism property: 1 worker and 4 workers
        // produce the identical tree after sort.
        assert_eq!(structure(&one), structure(&run(4)));
        reset();
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }

    #[test]
    fn attach_also_reparents_on_the_same_thread() {
        // The sequential fallback of a parallel site must produce the
        // same tree as the threaded path, so attach works inline too.
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        let nodes = collect(|| {
            let _phase = span("test.inline.phase");
            let ctx = TraceContext::current();
            {
                let _inner = span("test.inline.detour");
                let _h = ctx.attach(3);
                let _s = span("test.inline.item");
            }
        });
        let phase = nodes
            .iter()
            .find(|n| n.name == "test.inline.phase")
            .unwrap();
        let item = nodes.iter().find(|n| n.name == "test.inline.item").unwrap();
        assert_eq!(item.parent, phase.id, "attach shadows the open detour span");
        assert!(item.parallel);
        reset();
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }

    #[test]
    fn inactive_collector_records_nothing() {
        let _guard = test_lock::hold();
        set_level(TelemetryLevel::Summary);
        crate::global().reset();
        reset();
        assert!(!active());
        {
            let _s = span("test.tree.inactive");
            let ctx = TraceContext::current();
            assert_eq!(ctx.parent(), 0);
            let _h = ctx.attach(0);
        }
        assert!(entries().is_empty());
        assert_eq!(dropped(), 0);
        set_level(TelemetryLevel::Off);
        crate::global().reset();
    }

    // Propcheck: random nesting depth, fan-out width, and worker count;
    // the collected tree must always be well-formed — unique ids, every
    // child's interval nested in its parent's, exactly one root per
    // handoff slot.
    aml_propcheck::proptest! {
        #![proptest_config(aml_propcheck::ProptestConfig::with_cases(24))]
        #[test]
        fn trees_are_well_formed_under_randomized_fanout(
            depth in 1usize..4,
            slots in 1usize..7,
            workers in 1usize..5,
        ) {
            let _guard = test_lock::hold();
            set_level(TelemetryLevel::Summary);
            let nodes = collect(|| {
                fn nest(levels: usize, slots: usize, workers: usize) {
                    let _s = span("test.prop.level");
                    if levels > 1 {
                        nest(levels - 1, slots, workers);
                        return;
                    }
                    let ctx = TraceContext::current();
                    let idx: Vec<u64> = (0..slots as u64).collect();
                    std::thread::scope(|scope| {
                        for chunk in idx.chunks(idx.len().div_ceil(workers)) {
                            let chunk = chunk.to_vec();
                            scope.spawn(move || {
                                for slot in chunk {
                                    let _h = ctx.attach(slot);
                                    let _leaf = span("test.prop.leaf");
                                }
                            });
                        }
                    });
                }
                nest(depth, slots, workers);
            });
            // Unique ids.
            let ids: HashSet<SpanId> = nodes.iter().map(|n| n.id).collect();
            aml_propcheck::prop_assert!(ids.len() == nodes.len(), "duplicate ids: {nodes:?}");
            // Every parent link resolves, and child intervals nest.
            for n in &nodes {
                if n.parent == 0 {
                    continue;
                }
                let parent = nodes.iter().find(|p| p.id == n.parent);
                aml_propcheck::prop_assert!(parent.is_some(), "dangling parent for {n:?}");
                let p = parent.unwrap();
                aml_propcheck::prop_assert!(
                    n.start_ns >= p.start_ns && n.end_ns() <= p.end_ns(),
                    "child interval escapes parent: {n:?} vs {p:?}"
                );
            }
            // Exactly one handoff root per slot, attached to the
            // innermost level span.
            let leaves: Vec<&Node> =
                nodes.iter().filter(|n| n.name == "test.prop.leaf").collect();
            aml_propcheck::prop_assert!(leaves.len() == slots, "want {slots} leaves");
            aml_propcheck::prop_assert!(leaves.iter().all(|l| l.parallel));
            let leaf_parents: HashSet<SpanId> = leaves.iter().map(|l| l.parent).collect();
            aml_propcheck::prop_assert!(
                leaf_parents.len() == 1,
                "leaves scattered: {leaf_parents:?}"
            );
            reset();
            set_level(TelemetryLevel::Off);
            crate::global().reset();
        }
    }
}
