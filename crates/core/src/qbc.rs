//! Query-by-Committee over the AutoML ensemble (paper §4's "QBC for
//! AutoML" baseline).
//!
//! The paper repurposes the AutoML ensemble's members as the QBC committee
//! — "we modify QBC so that it uses the models in the AutoML ensemble as
//! the committee instead of creating a curated ensemble" — and scores each
//! unlabeled candidate-pool point by **vote entropy** (Dagan & Engelson):
//! `H = −Σ_c (v_c/|C|) log (v_c/|C|)` over the committee's hard votes. The
//! highest-entropy points are returned for labeling. "The main difference
//! between this approach and ours is in using ALE-variance instead of
//! entropy."

use crate::{CoreError, Result};
use aml_dataset::Dataset;
use aml_models::{Classifier, SoftVotingEnsemble};

/// Vote entropy of one row under the committee.
pub fn vote_entropy(committee: &[&dyn Classifier], row: &[f64]) -> Result<f64> {
    if committee.is_empty() {
        return Err(CoreError::InvalidParameter("empty committee".into()));
    }
    let n_classes = committee[0].n_classes();
    let mut votes = vec![0usize; n_classes];
    for m in committee {
        votes[m.predict_row(row)?] += 1;
    }
    let total = committee.len() as f64;
    Ok(votes
        .iter()
        .filter(|&&v| v > 0)
        .map(|&v| {
            let p = v as f64 / total;
            -p * p.ln()
        })
        .sum())
}

/// Select the `n` pool rows with the highest vote entropy. Ties break
/// toward lower pool index (deterministic). Returns pool indices sorted by
/// descending entropy.
pub fn qbc_select(ensemble: &SoftVotingEnsemble, pool: &Dataset, n: usize) -> Result<Vec<usize>> {
    if pool.is_empty() {
        return Err(CoreError::MissingCapability(
            "QBC needs a candidate pool".into(),
        ));
    }
    let committee: Vec<&dyn Classifier> = ensemble
        .members()
        .iter()
        .map(|m| m.as_ref() as &dyn Classifier)
        .collect();
    let mut scored: Vec<(f64, usize)> = (0..pool.n_rows())
        .map(|i| Ok((vote_entropy(&committee, pool.row(i))?, i)))
        .collect::<Result<_>>()?;
    // Descending entropy, ascending index on ties.
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("entropies are finite")
            .then(a.1.cmp(&b.1))
    });
    Ok(scored.into_iter().take(n).map(|(_, i)| i).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A classifier that thresholds feature 0 at a fixed boundary.
    struct Thresh(f64);
    impl Classifier for Thresh {
        fn n_classes(&self) -> usize {
            2
        }
        fn n_features(&self) -> usize {
            1
        }
        fn predict_proba_row(&self, row: &[f64]) -> aml_models::Result<Vec<f64>> {
            if row[0] > self.0 {
                Ok(vec![0.1, 0.9])
            } else {
                Ok(vec![0.9, 0.1])
            }
        }
        fn name(&self) -> &'static str {
            "thresh"
        }
    }

    fn committee_ensemble() -> SoftVotingEnsemble {
        // Committee disagrees exactly on (0.3, 0.7): member boundaries at
        // 0.3, 0.5, 0.7.
        let members: Vec<Arc<dyn Classifier>> = vec![
            Arc::new(Thresh(0.3)),
            Arc::new(Thresh(0.5)),
            Arc::new(Thresh(0.7)),
        ];
        SoftVotingEnsemble::uniform(members).unwrap()
    }

    fn pool(values: &[f64]) -> Dataset {
        let rows: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        let labels = vec![0usize; values.len()];
        Dataset::from_rows(&rows, &labels, 2).unwrap()
    }

    #[test]
    fn entropy_zero_when_unanimous() {
        let e = committee_ensemble();
        let committee: Vec<&dyn Classifier> = e
            .members()
            .iter()
            .map(|m| m.as_ref() as &dyn Classifier)
            .collect();
        assert_eq!(vote_entropy(&committee, &[0.0]).unwrap(), 0.0);
        assert_eq!(vote_entropy(&committee, &[1.0]).unwrap(), 0.0);
    }

    #[test]
    fn entropy_positive_in_disagreement_zone() {
        let e = committee_ensemble();
        let committee: Vec<&dyn Classifier> = e
            .members()
            .iter()
            .map(|m| m.as_ref() as &dyn Classifier)
            .collect();
        let h = vote_entropy(&committee, &[0.6]).unwrap(); // votes 2:1
        assert!(h > 0.5, "2:1 split entropy {h}");
    }

    #[test]
    fn qbc_picks_disagreement_zone_points() {
        let e = committee_ensemble();
        let p = pool(&[0.05, 0.35, 0.55, 0.65, 0.95, 0.45]);
        let picked = qbc_select(&e, &p, 3).unwrap();
        // Points inside (0.3, 0.7): indices 1 (0.35), 2 (0.55), 3 (0.65),
        // 5 (0.45) — the three picked must all come from that set.
        for &i in &picked {
            let v = p.row(i)[0];
            assert!(
                (0.3..0.7).contains(&v),
                "picked {v} outside disagreement zone"
            );
        }
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn ties_break_by_pool_order() {
        let e = committee_ensemble();
        // All four points have identical entropy (all 2:1 splits).
        let p = pool(&[0.55, 0.56, 0.57, 0.58]);
        let picked = qbc_select(&e, &p, 2).unwrap();
        assert_eq!(picked, vec![0, 1]);
    }

    #[test]
    fn cap_larger_than_pool_returns_everything() {
        let e = committee_ensemble();
        let p = pool(&[0.1, 0.5]);
        let picked = qbc_select(&e, &p, 99).unwrap();
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn empty_pool_rejected() {
        let e = committee_ensemble();
        let p = pool(&[0.5]);
        let empty = p.empty_like();
        assert!(matches!(
            qbc_select(&e, &empty, 5),
            Err(CoreError::MissingCapability(_))
        ));
    }
}
