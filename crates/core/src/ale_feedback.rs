//! The ALE-variance feedback algorithm — the paper's §3 in full.
//!
//! Given one or more fitted AutoML runs, compute per-model ALE curves for
//! every feature on shared grids, threshold the cross-model standard
//! deviation with 𝒯, and return (a) the high-variance sampling regions,
//! (b) the mean±std ALE bands as the interpretable explanation, and
//! (c) concrete suggested points — either freely sampled from the regions
//! or selected from a fixed candidate pool (the `-Pool` variants).

use crate::feedback::{Feedback, Suggestion};
use crate::{CoreError, Result};
use aml_automl::FittedAutoMl;
use aml_dataset::Dataset;
use aml_interpret::ale::AleConfig;
use aml_interpret::grid::Grid;
use aml_interpret::region::FeatureRegions;
use aml_interpret::variance::{ale_band_on_grid, pdp_band_on_grid, AleBand};
use aml_models::Classifier;
use aml_rng::rngs::StdRng;
use aml_rng::{Rng, SeedableRng};

/// Which model-agnostic interpretation method supplies the per-model
/// curves. The paper uses ALE ("we use ALE in this work", §3) but its
/// algorithm is explicitly method-agnostic — partial dependence is the
/// classic alternative, and the ablation benches compare the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpretationMethod {
    /// Accumulated Local Effects (the paper's choice).
    Ale,
    /// Partial dependence.
    Pdp,
}

/// Which model bag supplies the disagreement signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AleMode {
    /// The members of a single AutoML run's ensemble (paper: "Within-ALE").
    Within,
    /// Each independent AutoML run's *whole ensemble* is one committee
    /// member (paper: "Cross-ALE"; the paper uses 10 runs).
    Cross,
}

/// How the variance threshold 𝒯 is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdRule {
    /// The paper's default: "the median of the standard deviation across
    /// features" — we take the median over all (feature, grid-point) std
    /// values.
    MedianStd,
    /// A fixed user-supplied 𝒯 (the paper's §4 quotes 0.02 and 0.01).
    Fixed(f64),
    /// 𝒯 = the q-th quantile of all (feature, grid-point) std values.
    /// `QuantileStd(0.5)` equals [`ThresholdRule::MedianStd`]; higher
    /// quantiles focus the suggested subspace on the most confusing
    /// regions — useful when the committee is small and its std landscape
    /// flat (the paper's budget discussion: "when the sampling budget is
    /// low, a higher threshold may be better").
    QuantileStd(f64),
    /// A separate 𝒯 per feature: the q-th quantile of *that feature's* std
    /// values. Flags each feature's own most-confusing regions even when
    /// global disagreement levels differ across features — the paper's §5
    /// explicitly invites per-feature threshold tuning ("operators can …
    /// tune the threshold they use for each feature").
    PerFeatureQuantile(f64),
}

/// Configuration of the ALE feedback algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct AleFeedback {
    /// Within- or Cross-ALE.
    pub mode: AleMode,
    /// Grid intervals per feature.
    pub n_intervals: usize,
    /// Threshold rule for 𝒯.
    pub threshold: ThresholdRule,
    /// Class whose probability the curves explain.
    pub target_class: usize,
    /// Interpretation method (ALE by default, as in the paper).
    pub method: InterpretationMethod,
}

impl Default for AleFeedback {
    fn default() -> Self {
        AleFeedback {
            mode: AleMode::Within,
            n_intervals: 24,
            threshold: ThresholdRule::MedianStd,
            target_class: 1,
            method: InterpretationMethod::Ale,
        }
    }
}

/// The q-th quantile of all (feature, grid-point) std values.
fn quantile_std(bands: &[AleBand], q: f64) -> Result<f64> {
    let mut all: Vec<f64> = bands.iter().flat_map(|b| b.std.iter().copied()).collect();
    if all.is_empty() {
        return Err(CoreError::InvalidParameter("no std values computed".into()));
    }
    all.sort_by(|a, b| a.partial_cmp(b).expect("stds are finite"));
    let idx = ((all.len() - 1) as f64 * q).round() as usize;
    Ok(all[idx])
}

/// The analysis artifact: bands, the realized threshold, and the regions.
#[derive(Debug, Clone)]
pub struct AleAnalysis {
    /// Mean±std ALE band per feature.
    pub bands: Vec<AleBand>,
    /// The realized 𝒯.
    pub threshold: f64,
    /// High-variance regions per feature (same order as `bands`).
    pub regions: Vec<FeatureRegions>,
}

impl AleAnalysis {
    /// Total number of flagged intervals across features.
    pub fn n_intervals_flagged(&self) -> usize {
        self.regions.iter().map(|r| r.intervals.len()).sum()
    }

    /// Features with at least one flagged interval.
    pub fn flagged_features(&self) -> Vec<usize> {
        self.regions
            .iter()
            .filter(|r| !r.intervals.is_empty())
            .map(|r| r.feature)
            .collect()
    }
}

impl AleFeedback {
    /// Run the analysis over the fitted runs. `Within` uses `runs[0]`'s
    /// ensemble members; `Cross` uses each run's full ensemble as one
    /// committee member (and therefore needs ≥ 2 runs).
    pub fn analyze(&self, runs: &[FittedAutoMl], data: &Dataset) -> Result<AleAnalysis> {
        if runs.is_empty() {
            return Err(CoreError::InvalidParameter(
                "need at least one AutoML run".into(),
            ));
        }
        if self.n_intervals < 2 {
            return Err(CoreError::InvalidParameter(
                "n_intervals must be >= 2".into(),
            ));
        }
        // Assemble the committee.
        let models: Vec<&dyn Classifier> = match self.mode {
            AleMode::Within => runs[0]
                .ensemble()
                .members()
                .iter()
                .map(|m| m.as_ref() as &dyn Classifier)
                .collect(),
            AleMode::Cross => {
                if runs.len() < 2 {
                    return Err(CoreError::InvalidParameter(
                        "Cross-ALE needs at least 2 AutoML runs".into(),
                    ));
                }
                runs.iter()
                    .map(|r| r.ensemble() as &dyn Classifier)
                    .collect()
            }
        };
        if models.len() < 2 {
            return Err(CoreError::InvalidParameter(format!(
                "disagreement needs >= 2 committee members, got {}",
                models.len()
            )));
        }

        let cfg = AleConfig {
            target_class: self.target_class,
        };
        let mut bands = Vec::with_capacity(data.n_features());
        for feature in 0..data.n_features() {
            let column = data.column(feature)?;
            // Quantile grids follow the data; constant features get a
            // degenerate band with zero variance rather than an error.
            match Grid::quantile(&column, self.n_intervals) {
                Ok(grid) => bands.push(match self.method {
                    InterpretationMethod::Ale => {
                        ale_band_on_grid(&models, data, feature, &grid, &cfg)?
                    }
                    InterpretationMethod::Pdp => {
                        pdp_band_on_grid(&models, data, feature, &grid, &cfg)?
                    }
                }),
                Err(aml_interpret::InterpretError::DegenerateGrid) => {
                    bands.push(AleBand {
                        feature,
                        feature_name: data.features()[feature].name.clone(),
                        grid: vec![column[0], column[0] + 1e-9],
                        mean: vec![0.0, 0.0],
                        std: vec![0.0, 0.0],
                        n_models: models.len(),
                    });
                }
                Err(e) => return Err(e.into()),
            }
        }

        // Per-feature thresholds (identical for the scalar rules).
        let per_feature: Vec<f64> = match self.threshold {
            ThresholdRule::Fixed(t) => {
                if !(t.is_finite() && t >= 0.0) {
                    return Err(CoreError::InvalidParameter(format!(
                        "threshold {t} invalid"
                    )));
                }
                vec![t; bands.len()]
            }
            ThresholdRule::MedianStd => vec![quantile_std(&bands, 0.5)?; bands.len()],
            ThresholdRule::QuantileStd(q) => {
                if !(0.0..=1.0).contains(&q) {
                    return Err(CoreError::InvalidParameter(format!(
                        "quantile {q} outside [0, 1]"
                    )));
                }
                vec![quantile_std(&bands, q)?; bands.len()]
            }
            ThresholdRule::PerFeatureQuantile(q) => {
                if !(0.0..=1.0).contains(&q) {
                    return Err(CoreError::InvalidParameter(format!(
                        "quantile {q} outside [0, 1]"
                    )));
                }
                bands
                    .iter()
                    .map(|b| quantile_std(std::slice::from_ref(b), q))
                    .collect::<Result<Vec<f64>>>()?
            }
        };

        let regions = bands
            .iter()
            .zip(&per_feature)
            .map(|(b, &t)| {
                let domain = data.domain(b.feature)?;
                Ok(FeatureRegions::from_band(b, t, domain)?)
            })
            .collect::<Result<Vec<_>>>()?;

        // The scalar `threshold` reports the median of the per-feature
        // values (they coincide for scalar rules).
        let mut sorted = per_feature.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("thresholds are finite"));
        let threshold = sorted[sorted.len() / 2];

        Ok(AleAnalysis {
            bands,
            threshold,
            regions,
        })
    }

    /// Free-sampling suggestion: draw `n_points` rows from the **union**
    /// `∪ᵢ Aᵢx ≤ bᵢ` — "we uniformly sample from the regions of the
    /// ALE-plot that exceed the variance threshold" (§4).
    ///
    /// Each point picks *one* flagged `(feature, interval)` system —
    /// chosen with probability proportional to the interval's integrated
    /// *excess* std (how far above 𝒯 it is, times its width), so the most
    /// confusing regions get the most samples — places that feature
    /// uniformly inside the interval, and fills every other feature
    /// uniformly from its domain. Sampling the union (not the intersection
    /// of all flagged features' regions) matters: the paper's subspace is
    /// explicitly a union of half-space systems.
    pub fn suggest_points(
        &self,
        analysis: &AleAnalysis,
        data: &Dataset,
        n_points: usize,
        seed: u64,
    ) -> Result<Vec<Vec<f64>>> {
        // Build the weighted list of (feature, interval, weight) systems.
        let mut systems: Vec<(usize, aml_interpret::region::Interval, f64)> = Vec::new();
        for region in &analysis.regions {
            let band = &analysis.bands[region.feature];
            for iv in &region.intervals {
                // Integrated excess std over the interval's grid points.
                let excess: f64 = band
                    .grid
                    .iter()
                    .zip(&band.std)
                    .filter(|(g, _)| iv.contains(**g))
                    .map(|(_, s)| (s - analysis.threshold).max(0.0))
                    .sum();
                let weight = (excess + 1e-9) * iv.width().max(1e-9);
                systems.push((region.feature, *iv, weight));
            }
        }
        if systems.is_empty() {
            return Err(CoreError::NoRegions);
        }
        let total_weight: f64 = systems.iter().map(|(_, _, w)| w).sum();

        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n_points);
        for _ in 0..n_points {
            // Pick one system ∝ weight.
            let mut pick = rng.gen::<f64>() * total_weight;
            let mut chosen = systems.last().expect("non-empty");
            for sys in &systems {
                if pick <= sys.2 {
                    chosen = sys;
                    break;
                }
                pick -= sys.2;
            }
            let (flagged_feature, interval, _) = *chosen;

            let mut row = Vec::with_capacity(data.n_features());
            for feature in 0..data.n_features() {
                let domain = data.domain(feature)?;
                let value = if feature == flagged_feature {
                    if interval.width() > 0.0 {
                        rng.gen_range(interval.lo..=interval.hi)
                    } else {
                        interval.lo
                    }
                } else {
                    rng.gen_range(domain.lo()..=domain.hi())
                };
                row.push(domain.clamp(value));
            }
            rows.push(row);
        }
        Ok(rows)
    }

    /// Pool-restricted suggestion (the `-Pool` variants): indices of pool
    /// rows that fall inside the suggested subspace `∪ᵢ Aᵢx ≤ bᵢ`, i.e.
    /// inside *any* flagged interval of *any* feature. At most `cap`
    /// indices are returned (first-come in pool order — deterministic);
    /// fewer when the pool doesn't reach the subspace, which is exactly the
    /// disadvantage Table 1 shows for the pool variants.
    pub fn suggest_from_pool(
        &self,
        analysis: &AleAnalysis,
        pool: &Dataset,
        cap: usize,
    ) -> Result<Vec<usize>> {
        if analysis.n_intervals_flagged() == 0 {
            return Err(CoreError::NoRegions);
        }
        let mut picked = Vec::new();
        for i in 0..pool.n_rows() {
            let row = pool.row(i);
            let inside = analysis
                .regions
                .iter()
                .any(|r| !r.intervals.is_empty() && r.contains(row[r.feature]));
            if inside {
                picked.push(i);
                if picked.len() >= cap {
                    break;
                }
            }
        }
        Ok(picked)
    }

    /// Full feedback packaging (analysis + explanation notes).
    pub fn feedback(
        &self,
        runs: &[FittedAutoMl],
        data: &Dataset,
    ) -> Result<(AleAnalysis, Feedback)> {
        let analysis = self.analyze(runs, data)?;
        // Ledger: one region_suggested per feature, carrying the band the
        // intervals were derived from so reports can redraw the plot.
        if aml_telemetry::ledger::active() {
            for (band, region) in analysis.bands.iter().zip(&analysis.regions) {
                aml_telemetry::ledger::emit(&aml_telemetry::LedgerEvent::RegionSuggested {
                    feature: band.feature as u64,
                    name: band.feature_name.clone(),
                    threshold: region.threshold,
                    intervals: region.intervals.iter().map(|iv| (iv.lo, iv.hi)).collect(),
                    grid: band.grid.clone(),
                    mean: band.mean.clone(),
                    std: band.std.clone(),
                });
            }
        }
        let mode = match self.mode {
            AleMode::Within => "Within-ALE",
            AleMode::Cross => "Cross-ALE",
        };
        let notes = format!(
            "{mode}: {} committee members, threshold T = {:.4} ({}), {} feature(s) flagged",
            analysis.bands.first().map_or(0, |b| b.n_models),
            analysis.threshold,
            match self.threshold {
                ThresholdRule::MedianStd => "median of ALE std values",
                ThresholdRule::Fixed(_) => "fixed",
                ThresholdRule::QuantileStd(_) => "quantile of ALE std values",
                ThresholdRule::PerFeatureQuantile(_) => "per-feature quantile of ALE std",
            },
            analysis.flagged_features().len(),
        );
        let fb = Feedback {
            suggestion: Suggestion::Regions(analysis.regions.clone()),
            explanations: analysis.bands.clone(),
            notes,
        };
        Ok((analysis, fb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_automl::{AutoMl, AutoMlConfig};
    use aml_dataset::synth;

    fn quick_automl(seed: u64, ds: &Dataset) -> FittedAutoMl {
        AutoMl::new(AutoMlConfig {
            n_candidates: 8,
            ensemble_rounds: 6,
            seed,
            ..Default::default()
        })
        .fit(ds)
        .unwrap()
    }

    fn moons() -> Dataset {
        synth::two_moons(250, 0.25, 3).unwrap()
    }

    #[test]
    fn within_analysis_produces_band_per_feature() {
        let ds = moons();
        let run = quick_automl(1, &ds);
        let fb = AleFeedback::default();
        let analysis = fb.analyze(&[run], &ds).unwrap();
        assert_eq!(analysis.bands.len(), 2);
        assert_eq!(analysis.regions.len(), 2);
        assert!(analysis.threshold >= 0.0);
    }

    #[test]
    fn cross_needs_two_runs() {
        let ds = moons();
        let run = quick_automl(1, &ds);
        let fb = AleFeedback {
            mode: AleMode::Cross,
            ..Default::default()
        };
        assert!(matches!(
            fb.analyze(&[run], &ds),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn cross_analysis_works_with_multiple_runs() {
        let ds = moons();
        let runs = vec![
            quick_automl(1, &ds),
            quick_automl(2, &ds),
            quick_automl(3, &ds),
        ];
        let fb = AleFeedback {
            mode: AleMode::Cross,
            ..Default::default()
        };
        let analysis = fb.analyze(&runs, &ds).unwrap();
        assert_eq!(analysis.bands[0].n_models, 3);
    }

    #[test]
    fn median_threshold_flags_roughly_half_the_grid() {
        // With MedianStd, by construction about half of all grid points are
        // above 𝒯 (ties aside), so something is always flagged on noisy
        // problems.
        let ds = synth::noisy_xor(300, 0.15, 5).unwrap();
        let run = quick_automl(4, &ds);
        let fb = AleFeedback::default();
        let analysis = fb.analyze(&[run], &ds).unwrap();
        assert!(
            analysis.n_intervals_flagged() > 0,
            "median threshold must flag regions"
        );
    }

    #[test]
    fn suggested_points_lie_in_the_union_and_domain() {
        let ds = moons();
        let run = quick_automl(5, &ds);
        let fb = AleFeedback::default();
        let analysis = fb.analyze(&[run], &ds).unwrap();
        let points = fb.suggest_points(&analysis, &ds, 50, 9).unwrap();
        assert_eq!(points.len(), 50);
        for p in &points {
            assert_eq!(p.len(), 2);
            for (j, &v) in p.iter().enumerate() {
                let d = ds.domain(j).unwrap();
                assert!(v >= d.lo() - 1e-9 && v <= d.hi() + 1e-9);
            }
            // Union membership: at least one flagged feature region
            // contains the point (the paper's ∪ᵢ Aᵢx ≤ bᵢ).
            let inside_union = analysis
                .regions
                .iter()
                .any(|r| !r.intervals.is_empty() && r.contains(p[r.feature]));
            assert!(inside_union, "point {p:?} outside the suggested union");
        }
    }

    #[test]
    fn suggestions_deterministic_per_seed() {
        let ds = moons();
        let run = quick_automl(6, &ds);
        let fb = AleFeedback::default();
        let analysis = fb.analyze(&[run], &ds).unwrap();
        let a = fb.suggest_points(&analysis, &ds, 10, 1).unwrap();
        let b = fb.suggest_points(&analysis, &ds, 10, 1).unwrap();
        let c = fb.suggest_points(&analysis, &ds, 10, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pool_selection_respects_subspace_and_cap() {
        let ds = moons();
        let run = quick_automl(7, &ds);
        let fb = AleFeedback::default();
        let analysis = fb.analyze(&[run], &ds).unwrap();
        let pool = synth::two_moons(400, 0.25, 11).unwrap();
        let picked = fb.suggest_from_pool(&analysis, &pool, 30).unwrap();
        assert!(picked.len() <= 30);
        for &i in &picked {
            let row = pool.row(i);
            assert!(analysis
                .regions
                .iter()
                .any(|r| !r.intervals.is_empty() && r.contains(row[r.feature])));
        }
    }

    #[test]
    fn fixed_threshold_respected_and_validated() {
        let ds = moons();
        let run = quick_automl(8, &ds);
        let fb = AleFeedback {
            threshold: ThresholdRule::Fixed(0.5),
            ..Default::default()
        };
        let analysis = fb.analyze(&[run], &ds).unwrap();
        assert_eq!(analysis.threshold, 0.5);
        let bad = AleFeedback {
            threshold: ThresholdRule::Fixed(f64::NAN),
            ..Default::default()
        };
        assert!(bad.analyze(&[quick_automl(9, &ds)], &ds).is_err());
    }

    #[test]
    fn lower_threshold_flags_at_least_as_much() {
        // The paper's threshold-setting discussion: lower 𝒯 ⇒ larger
        // suggested subspace.
        let ds = synth::noisy_xor(300, 0.1, 12).unwrap();
        let run = quick_automl(10, &ds);
        let analysis_hi = AleFeedback {
            threshold: ThresholdRule::Fixed(0.05),
            ..Default::default()
        }
        .analyze(&[run], &ds)
        .unwrap();
        let run2 = quick_automl(10, &ds);
        let analysis_lo = AleFeedback {
            threshold: ThresholdRule::Fixed(0.01),
            ..Default::default()
        }
        .analyze(&[run2], &ds)
        .unwrap();
        let width = |a: &AleAnalysis| -> f64 { a.regions.iter().map(|r| r.total_width()).sum() };
        assert!(width(&analysis_lo) >= width(&analysis_hi));
    }

    #[test]
    fn quantile_threshold_tightens_regions() {
        let ds = synth::noisy_xor(300, 0.15, 21).unwrap();
        let run = quick_automl(22, &ds);
        let med = AleFeedback::default()
            .analyze(std::slice::from_ref(&run), &ds)
            .unwrap();
        let tight = AleFeedback {
            threshold: ThresholdRule::QuantileStd(0.9),
            ..Default::default()
        }
        .analyze(&[run], &ds)
        .unwrap();
        assert!(tight.threshold >= med.threshold);
        let width = |a: &AleAnalysis| -> f64 { a.regions.iter().map(|r| r.total_width()).sum() };
        assert!(width(&tight) <= width(&med));
        // Invalid quantile rejected.
        let ds2 = synth::two_moons(100, 0.2, 1).unwrap();
        let run2 = quick_automl(23, &ds2);
        assert!(AleFeedback {
            threshold: ThresholdRule::QuantileStd(1.5),
            ..Default::default()
        }
        .analyze(&[run2], &ds2)
        .is_err());
    }

    #[test]
    fn per_feature_quantile_flags_every_feature_independently() {
        let ds = synth::noisy_xor(300, 0.15, 31).unwrap();
        let run = quick_automl(32, &ds);
        let analysis = AleFeedback {
            threshold: ThresholdRule::PerFeatureQuantile(0.8),
            ..Default::default()
        }
        .analyze(&[run], &ds)
        .unwrap();
        // With a per-feature quantile below 1.0 every non-degenerate
        // feature flags at least one region (its own top-variance zone).
        for region in &analysis.regions {
            assert!(
                !region.intervals.is_empty(),
                "feature {} flagged nothing under its own quantile",
                region.feature_name
            );
        }
    }

    #[test]
    fn pdp_method_produces_bands_and_regions_too() {
        let ds = synth::noisy_xor(200, 0.15, 41).unwrap();
        let run = quick_automl(42, &ds);
        let analysis = AleFeedback {
            method: InterpretationMethod::Pdp,
            ..Default::default()
        }
        .analyze(&[run], &ds)
        .unwrap();
        assert_eq!(analysis.bands.len(), 2);
        // PDP means are probabilities (uncentred), unlike ALE's zero-mean
        // curves.
        let mean_level: f64 =
            analysis.bands[0].mean.iter().sum::<f64>() / analysis.bands[0].mean.len() as f64;
        assert!(
            mean_level > 0.05,
            "PDP level {mean_level} should be a probability scale"
        );
    }

    #[test]
    fn feedback_notes_are_informative() {
        let ds = moons();
        let run = quick_automl(13, &ds);
        let fb = AleFeedback::default();
        let (_, feedback) = fb.feedback(&[run], &ds).unwrap();
        assert!(feedback.notes.contains("Within-ALE"));
        assert!(feedback.notes.contains("threshold"));
    }
}
