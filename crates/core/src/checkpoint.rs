//! Checkpoint/resume for the experiment loop (DESIGN.md §7).
//!
//! After every completed feedback round the loop writes a versioned
//! [`Checkpoint`] **atomically** (write to a temp file in the same
//! directory, fsync, rename), so a SIGKILL at any instant leaves either
//! the previous checkpoint or the new one — never a half-written file.
//!
//! A `--resume <ckpt>` run must reproduce the uninterrupted run
//! byte-for-byte in the sorted ledger. Two things make that possible:
//!
//! * every round's randomness is derived from the master seed and the
//!   round's position (there is no long-lived RNG stream to snapshot —
//!   the "stream position" *is* the round index), and
//! * the checkpoint records the ledger file's flushed byte length at the
//!   moment it was committed. On resume the ledger is truncated back to
//!   exactly that length (dropping any partially-flushed later events)
//!   and reopened in append mode, and the process-wide round counter is
//!   fast-forwarded, so appended `round_completed` lines continue the
//!   original numbering.
//!
//! ## Format
//!
//! A line-oriented text file, `\t`-separated where fields may contain
//! spaces, with an `end` trailer for truncation detection:
//!
//! ```text
//! amlckpt v1
//! workload table1_scream
//! seed 11
//! ledger_bytes 4096
//! rounds 2
//! round 0\tWithout feedback\t0\t0.5,0.25
//! round 1\tWithin-ALE\t40\t0.75,0.8125
//! end 2
//! ```
//!
//! Scores use `f64`'s shortest round-trip `Display` form, which parses
//! back bit-exactly. [`Checkpoint::decode`] returns typed
//! [`ExperimentError`]s — version mismatch, truncation, corruption — and
//! never panics, no matter how the input was mangled (property-tested by
//! truncating a valid encoding at every byte).

use crate::experiment::Strategy;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version of the checkpoint format; bump on any incompatible change.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Typed failures of the experiment loop's persistence layer.
#[derive(Debug)]
pub enum ExperimentError {
    /// I/O failure reading or writing a checkpoint (or truncating the
    /// ledger on resume).
    CheckpointIo {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        message: String,
    },
    /// The checkpoint was written by an incompatible format version.
    CheckpointVersionMismatch {
        /// Version found in the file.
        found: String,
        /// Version this build understands.
        expected: u64,
    },
    /// The checkpoint is incomplete — the `end` trailer is missing or
    /// inconsistent, i.e. the writer died mid-write (only possible for
    /// non-atomic copies; the loop's own writes are rename-atomic).
    CheckpointTruncated {
        /// What was wrong with the trailer.
        message: String,
    },
    /// The checkpoint is structurally invalid.
    CheckpointCorrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The checkpoint belongs to a different run (workload or seed
    /// differ) and cannot resume this one.
    CheckpointMismatch {
        /// Human-readable description of the mismatch.
        message: String,
    },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::CheckpointIo { path, message } => {
                write!(f, "checkpoint I/O error at {}: {message}", path.display())
            }
            ExperimentError::CheckpointVersionMismatch { found, expected } => write!(
                f,
                "checkpoint version mismatch: file says '{found}', this build expects v{expected}"
            ),
            ExperimentError::CheckpointTruncated { message } => {
                write!(f, "checkpoint truncated: {message}")
            }
            ExperimentError::CheckpointCorrupt { line, message } => {
                write!(f, "checkpoint corrupt at line {line}: {message}")
            }
            ExperimentError::CheckpointMismatch { message } => {
                write!(f, "checkpoint does not match this run: {message}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Summary of one completed feedback round, sufficient to skip the round
/// on resume: its accuracies feed the report, and its randomness is
/// re-derived from the master seed + round position, never replayed.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Process-wide round sequence number (matches the ledger's).
    pub round: u64,
    /// Strategy display name (matches `Strategy::name`).
    pub strategy: String,
    /// Labeled points added to the training set this round.
    pub points_added: u64,
    /// Balanced accuracy per test set.
    pub scores: Vec<f64>,
}

/// The persisted state of an experiment loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Workload (bench bin) name; resume refuses a different workload.
    pub workload: String,
    /// Master seed; resume refuses a different seed.
    pub seed: u64,
    /// Flushed byte length of the ledger file when this checkpoint was
    /// committed (0 when no ledger sink is active).
    pub ledger_bytes: u64,
    /// Completed rounds, in execution order.
    pub rounds: Vec<RoundRecord>,
}

impl Checkpoint {
    /// Fresh checkpoint for a run that has completed no rounds yet.
    pub fn new(workload: &str, seed: u64) -> Checkpoint {
        Checkpoint {
            workload: workload.to_string(),
            seed,
            ledger_bytes: 0,
            rounds: Vec::new(),
        }
    }

    /// Serialize to the line format described in the module docs.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(128 + self.rounds.len() * 64);
        out.push_str(&format!("amlckpt v{CHECKPOINT_VERSION}\n"));
        out.push_str(&format!("workload {}\n", self.workload));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("ledger_bytes {}\n", self.ledger_bytes));
        out.push_str(&format!("rounds {}\n", self.rounds.len()));
        for r in &self.rounds {
            let scores: Vec<String> = r.scores.iter().map(|s| format!("{s}")).collect();
            out.push_str(&format!(
                "round {}\t{}\t{}\t{}\n",
                r.round,
                r.strategy,
                r.points_added,
                scores.join(",")
            ));
        }
        out.push_str(&format!("end {}\n", self.rounds.len()));
        out
    }

    /// Parse an encoded checkpoint; typed errors, never panics.
    pub fn decode(text: &str) -> Result<Checkpoint, ExperimentError> {
        let lines: Vec<&str> = text.lines().collect();
        let magic = lines.first().ok_or(ExperimentError::CheckpointTruncated {
            message: "empty file".into(),
        })?;
        let version =
            magic
                .strip_prefix("amlckpt v")
                .ok_or_else(|| ExperimentError::CheckpointCorrupt {
                    line: 1,
                    message: format!(
                        "bad magic '{magic}' (expected 'amlckpt v{CHECKPOINT_VERSION}')"
                    ),
                })?;
        if version.parse::<u64>() != Ok(CHECKPOINT_VERSION) {
            return Err(ExperimentError::CheckpointVersionMismatch {
                found: version.to_string(),
                expected: CHECKPOINT_VERSION,
            });
        }
        // Truncation check before structural parsing: a file that does
        // not close with a consistent `end N` trailer was cut short.
        if !text.ends_with('\n') {
            return Err(ExperimentError::CheckpointTruncated {
                message: "final line is not newline-terminated".into(),
            });
        }
        let trailer = lines.last().unwrap_or(&"");
        let declared_end: u64 = trailer
            .strip_prefix("end ")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| ExperimentError::CheckpointTruncated {
                message: format!("missing 'end N' trailer (last line: '{trailer}')"),
            })?;

        let field = |idx: usize, key: &str| -> Result<String, ExperimentError> {
            let line = lines
                .get(idx)
                .ok_or_else(|| ExperimentError::CheckpointTruncated {
                    message: format!("missing '{key}' line"),
                })?;
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| ExperimentError::CheckpointCorrupt {
                    line: idx + 1,
                    message: format!("expected '{key} …', got '{line}'"),
                })
        };
        let int_field = |idx: usize, key: &str| -> Result<u64, ExperimentError> {
            let raw = field(idx, key)?;
            raw.parse().map_err(|_| ExperimentError::CheckpointCorrupt {
                line: idx + 1,
                message: format!("'{key}' is not an integer: '{raw}'"),
            })
        };

        let workload = field(1, "workload")?;
        let seed = int_field(2, "seed")?;
        let ledger_bytes = int_field(3, "ledger_bytes")?;
        let n_rounds = int_field(4, "rounds")? as usize;
        if declared_end != n_rounds as u64 {
            return Err(ExperimentError::CheckpointTruncated {
                message: format!("trailer says {declared_end} rounds, header says {n_rounds}"),
            });
        }
        if lines.len() != 6 + n_rounds {
            return Err(ExperimentError::CheckpointTruncated {
                message: format!(
                    "expected {} lines for {n_rounds} round(s), found {}",
                    6 + n_rounds,
                    lines.len()
                ),
            });
        }

        let mut rounds = Vec::with_capacity(n_rounds);
        for i in 0..n_rounds {
            let idx = 5 + i;
            let line = lines[idx];
            let corrupt = |message: String| ExperimentError::CheckpointCorrupt {
                line: idx + 1,
                message,
            };
            let rest = line
                .strip_prefix("round ")
                .ok_or_else(|| corrupt(format!("expected 'round …', got '{line}'")))?;
            let parts: Vec<&str> = rest.split('\t').collect();
            let [round, strategy, points, scores] = parts[..] else {
                return Err(corrupt(format!(
                    "expected 4 tab-separated fields, got {}",
                    parts.len()
                )));
            };
            let round: u64 = round
                .parse()
                .map_err(|_| corrupt(format!("bad round index '{round}'")))?;
            let points_added: u64 = points
                .parse()
                .map_err(|_| corrupt(format!("bad points_added '{points}'")))?;
            let scores: Vec<f64> = if scores.is_empty() {
                Vec::new()
            } else {
                scores
                    .split(',')
                    .map(|s| s.parse().map_err(|_| corrupt(format!("bad score '{s}'"))))
                    .collect::<Result<_, _>>()?
            };
            rounds.push(RoundRecord {
                round,
                strategy: strategy.to_string(),
                points_added,
                scores,
            });
        }

        Ok(Checkpoint {
            workload,
            seed,
            ledger_bytes,
            rounds,
        })
    }

    /// Read and decode the checkpoint at `path`.
    pub fn load(path: &Path) -> Result<Checkpoint, ExperimentError> {
        let text = fs::read_to_string(path).map_err(|e| ExperimentError::CheckpointIo {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        Checkpoint::decode(&text)
    }

    /// Write atomically: temp file in the target directory, fsync,
    /// rename over `path`. A crash at any point leaves either the old
    /// checkpoint or the new one.
    pub fn write_atomic(&self, path: &Path) -> Result<(), ExperimentError> {
        let io_err = |e: std::io::Error| ExperimentError::CheckpointIo {
            path: path.to_path_buf(),
            message: e.to_string(),
        };
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let mut file = fs::File::create(&tmp).map_err(io_err)?;
        file.write_all(self.encode().as_bytes()).map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
        drop(file);
        fs::rename(&tmp, path).map_err(io_err)
    }
}

/// First half of a resume: load the checkpoint at `resume_path`,
/// validate it against this run (workload and seed must match — a
/// checkpoint from a different run is rejected with
/// [`ExperimentError::CheckpointMismatch`]), truncate the ledger file
/// back to the checkpoint's recorded byte length (dropping any
/// partially-flushed post-checkpoint events), and fast-forward the
/// process-wide round counter.
///
/// Must run **before** the ledger sink is (re)installed — the caller
/// reopens the ledger in append mode afterwards.
pub fn prepare_resume(
    workload: &str,
    seed: u64,
    resume_path: &Path,
    ledger_path: Option<&Path>,
) -> Result<Checkpoint, ExperimentError> {
    let ckpt = Checkpoint::load(resume_path)?;
    if ckpt.workload != workload {
        return Err(ExperimentError::CheckpointMismatch {
            message: format!(
                "checkpoint is for workload '{}', this run is '{workload}'",
                ckpt.workload
            ),
        });
    }
    if ckpt.seed != seed {
        return Err(ExperimentError::CheckpointMismatch {
            message: format!("checkpoint seed {} != run seed {seed}", ckpt.seed),
        });
    }
    if let Some(ledger) = ledger_path {
        let file = fs::OpenOptions::new()
            .write(true)
            .open(ledger)
            .map_err(|e| ExperimentError::CheckpointIo {
                path: ledger.to_path_buf(),
                message: format!("cannot reopen ledger for truncation: {e}"),
            })?;
        let len = file
            .metadata()
            .map_err(|e| ExperimentError::CheckpointIo {
                path: ledger.to_path_buf(),
                message: e.to_string(),
            })?
            .len();
        if len < ckpt.ledger_bytes {
            return Err(ExperimentError::CheckpointMismatch {
                message: format!(
                    "ledger at {} is {len} bytes, shorter than the checkpoint's {} — \
                     wrong ledger file?",
                    ledger.display(),
                    ckpt.ledger_bytes
                ),
            });
        }
        file.set_len(ckpt.ledger_bytes)
            .map_err(|e| ExperimentError::CheckpointIo {
                path: ledger.to_path_buf(),
                message: format!("cannot truncate ledger: {e}"),
            })?;
    }
    aml_telemetry::ledger::set_next_round(ckpt.rounds.len() as u64);
    Ok(ckpt)
}

/// Driver state for a checkpointed (and possibly resumed) sequence of
/// feedback rounds. The bench bins consult [`ExperimentLoop::completed`]
/// before each `run_strategy` call — a recorded round is skipped and its
/// scores reused — and call [`ExperimentLoop::record`] after each round
/// completes, which flushes the telemetry sinks and commits a new
/// checkpoint referencing the flushed ledger length.
pub struct ExperimentLoop {
    checkpoint_path: Option<PathBuf>,
    ledger_path: Option<PathBuf>,
    ckpt: Checkpoint,
}

impl ExperimentLoop {
    /// Fresh loop: checkpoints go to `checkpoint_path` after every round
    /// (no checkpointing when `None`); `ledger_path` is the `--ledger-out`
    /// file whose flushed length each checkpoint records.
    pub fn new(
        workload: &str,
        seed: u64,
        checkpoint_path: Option<PathBuf>,
        ledger_path: Option<PathBuf>,
    ) -> ExperimentLoop {
        ExperimentLoop {
            checkpoint_path,
            ledger_path,
            ckpt: Checkpoint::new(workload, seed),
        }
    }

    /// Resume from `resume_path`: loads and validates the checkpoint
    /// (workload and seed must match — a checkpoint from a different run
    /// is rejected with [`ExperimentError::CheckpointMismatch`]),
    /// truncates the ledger file back to the checkpoint's recorded
    /// length (dropping partially-flushed post-checkpoint events), and
    /// fast-forwards the process-wide round counter.
    ///
    /// Must be called **before** the ledger sink is (re)installed — the
    /// caller reopens the ledger in append mode afterwards.
    pub fn resume(
        workload: &str,
        seed: u64,
        resume_path: &Path,
        checkpoint_path: Option<PathBuf>,
        ledger_path: Option<PathBuf>,
    ) -> Result<ExperimentLoop, ExperimentError> {
        let ckpt = prepare_resume(workload, seed, resume_path, ledger_path.as_deref())?;
        Ok(ExperimentLoop::from_checkpoint(
            ckpt,
            checkpoint_path,
            ledger_path,
        ))
    }

    /// Build a loop around an already-validated checkpoint (the second
    /// half of [`ExperimentLoop::resume`]; the bench harness calls
    /// [`prepare_resume`] early — before reinstalling the ledger sink —
    /// and constructs the loop later).
    pub fn from_checkpoint(
        ckpt: Checkpoint,
        checkpoint_path: Option<PathBuf>,
        ledger_path: Option<PathBuf>,
    ) -> ExperimentLoop {
        ExperimentLoop {
            checkpoint_path,
            ledger_path,
            ckpt,
        }
    }

    /// The recorded outcome of `round`, if a prior (checkpointed) run
    /// already completed it — the caller skips the round and reuses the
    /// scores.
    pub fn completed(&self, round: u64) -> Option<&RoundRecord> {
        self.ckpt.rounds.iter().find(|r| r.round == round)
    }

    /// Rounds completed so far (recorded + resumed).
    pub fn rounds(&self) -> &[RoundRecord] {
        &self.ckpt.rounds
    }

    /// Record one freshly completed round and commit a checkpoint
    /// (when a checkpoint path is configured): flush the telemetry sinks
    /// so every ledger line of this round is on disk, capture the
    /// ledger's byte length, and atomically replace the checkpoint file.
    pub fn record(&mut self, rec: RoundRecord) -> Result<(), ExperimentError> {
        self.ckpt.rounds.push(rec);
        if let Some(path) = self.checkpoint_path.clone() {
            // Best-effort flush: a failing sink already counts
            // telemetry.events_dropped; the checkpoint then records
            // whatever actually reached the file.
            let _ = aml_telemetry::sink::flush_installed();
            self.ckpt.ledger_bytes = self
                .ledger_path
                .as_ref()
                .and_then(|p| fs::metadata(p).ok())
                .map(|m| m.len())
                .unwrap_or(0);
            self.ckpt.write_atomic(&path)?;
        }
        Ok(())
    }

    /// Convenience: build a [`RoundRecord`] from a strategy outcome.
    pub fn round_record(
        round: u64,
        strategy: Strategy,
        points_added: usize,
        scores: &[f64],
    ) -> RoundRecord {
        RoundRecord {
            round,
            strategy: strategy.name().to_string(),
            points_added: points_added as u64,
            scores: scores.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            workload: "table1_scream".into(),
            seed: 11,
            ledger_bytes: 4096,
            rounds: vec![
                RoundRecord {
                    round: 0,
                    strategy: "Without feedback".into(),
                    points_added: 0,
                    scores: vec![0.5, 0.25, 1.0 / 3.0],
                },
                RoundRecord {
                    round: 1,
                    strategy: "Within-ALE".into(),
                    points_added: 40,
                    scores: vec![0.75, 0.8125],
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let ckpt = sample();
        let decoded = Checkpoint::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded, ckpt);
        // Scores round-trip bit-exactly (1/3 has no short decimal form).
        assert_eq!(decoded.rounds[0].scores[2], 1.0 / 3.0);
    }

    #[test]
    fn empty_rounds_round_trip() {
        let ckpt = Checkpoint::new("w", 3);
        assert_eq!(Checkpoint::decode(&ckpt.encode()).unwrap(), ckpt);
    }

    #[test]
    fn version_mismatch_is_typed() {
        let text = sample().encode().replace("amlckpt v1", "amlckpt v99");
        assert!(matches!(
            Checkpoint::decode(&text),
            Err(ExperimentError::CheckpointVersionMismatch { .. })
        ));
    }

    #[test]
    fn truncation_at_every_byte_is_rejected_never_panics() {
        let full = sample().encode();
        for cut in 0..full.len() {
            // Cut only at char boundaries (the encoding is ASCII here,
            // but stay robust).
            if !full.is_char_boundary(cut) {
                continue;
            }
            let result = Checkpoint::decode(&full[..cut]);
            assert!(
                result.is_err(),
                "decode of {cut}/{} bytes must fail",
                full.len()
            );
        }
        assert!(Checkpoint::decode(&full).is_ok());
    }

    #[test]
    fn corrupt_lines_are_typed() {
        let good = sample().encode();
        for (needle, replacement) in [
            ("seed 11", "seed eleven"),
            ("round 1\t", "round one\t"),
            ("0.75", "threequarters"),
            ("workload table1_scream", "workloat table1_scream"),
        ] {
            let bad = good.replace(needle, replacement);
            assert!(
                matches!(
                    Checkpoint::decode(&bad),
                    Err(ExperimentError::CheckpointCorrupt { .. })
                ),
                "replacing {needle:?} must be corrupt, got {:?}",
                Checkpoint::decode(&bad)
            );
        }
    }

    #[test]
    fn inconsistent_trailer_is_truncation() {
        let bad = sample().encode().replace("end 2", "end 7");
        assert!(matches!(
            Checkpoint::decode(&bad),
            Err(ExperimentError::CheckpointTruncated { .. })
        ));
    }

    #[test]
    fn write_atomic_then_load() {
        let dir = std::env::temp_dir().join(format!("aml_ckpt_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ckpt = sample();
        ckpt.write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ckpt);
        // Overwrite with more rounds; still atomic, still loads.
        let mut more = ckpt.clone();
        more.rounds.push(RoundRecord {
            round: 2,
            strategy: "Uniform".into(),
            points_added: 40,
            scores: vec![0.9],
        });
        more.write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), more);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_wrong_run() {
        let dir = std::env::temp_dir().join(format!("aml_ckpt_resume_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        sample().write_atomic(&path).unwrap();
        assert!(matches!(
            ExperimentLoop::resume("other_workload", 11, &path, None, None),
            Err(ExperimentError::CheckpointMismatch { .. })
        ));
        assert!(matches!(
            ExperimentLoop::resume("table1_scream", 99, &path, None, None),
            Err(ExperimentError::CheckpointMismatch { .. })
        ));
        assert!(ExperimentLoop::resume("table1_scream", 11, &path, None, None).is_ok());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_checkpoint_is_io_error() {
        assert!(matches!(
            Checkpoint::load(Path::new("/nonexistent/run.ckpt")),
            Err(ExperimentError::CheckpointIo { .. })
        ));
    }

    #[test]
    fn loop_records_and_reports_completed_rounds() {
        let dir = std::env::temp_dir().join(format!("aml_ckpt_loop_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let mut lp = ExperimentLoop::new("w", 1, Some(path.clone()), None);
        assert!(lp.completed(0).is_none());
        lp.record(RoundRecord {
            round: 0,
            strategy: "Uniform".into(),
            points_added: 40,
            scores: vec![0.5],
        })
        .unwrap();
        assert_eq!(lp.completed(0).unwrap().points_added, 40);

        let resumed = ExperimentLoop::resume("w", 1, &path, None, None).unwrap();
        assert_eq!(resumed.completed(0).unwrap().scores, vec![0.5]);
        assert!(resumed.completed(1).is_none());
        fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use aml_propcheck::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Encode → decode is the identity for arbitrary round shapes
        /// (including non-terminating decimals that stress the shortest
        /// round-trip float encoding), and decoding any strict prefix of
        /// the encoding is a typed error — never a panic and never a
        /// silently shorter checkpoint.
        #[test]
        fn prop_round_trip_and_every_prefix_rejected(
            seed in 0u64..1_000_000,
            n_rounds in 0usize..5,
            n_scores in 0usize..8,
        ) {
            let mut ckpt = Checkpoint::new("prop workload", seed);
            ckpt.ledger_bytes = seed.wrapping_mul(31) % 10_000;
            for r in 0..n_rounds {
                let scores: Vec<f64> = (0..n_scores)
                    .map(|s| {
                        let x = ((seed ^ (r as u64 * 97 + s as u64)) % 2003) as f64;
                        x / 3.0 - 333.0
                    })
                    .collect();
                ckpt.rounds.push(RoundRecord {
                    round: r as u64,
                    strategy: format!("Strategy {r}"),
                    points_added: (seed % 97) * r as u64,
                    scores,
                });
            }
            let text = ckpt.encode();
            let back = Checkpoint::decode(&text).expect("decode");
            prop_assert_eq!(back, ckpt);
            for cut in 0..text.len() {
                prop_assert!(
                    Checkpoint::decode(&text[..cut]).is_err(),
                    "a {cut}-byte prefix of a {}-byte checkpoint must be rejected",
                    text.len()
                );
            }
        }
    }
}
