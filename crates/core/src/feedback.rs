//! Shared feedback vocabulary: what a strategy suggests, and the labeling
//! oracle abstraction.

use crate::Result;
use aml_dataset::Dataset;
use aml_interpret::region::FeatureRegions;
use aml_interpret::variance::AleBand;

/// What a feedback strategy proposes the operator do.
#[derive(Debug, Clone, PartialEq)]
pub enum Suggestion {
    /// Sample new points freely from these per-feature high-variance
    /// regions (the interpretable ALE feedback — the regions *are* the
    /// explanation's actionable half).
    Regions(Vec<FeatureRegions>),
    /// Label these specific rows of the provided candidate pool
    /// (active-learning style; indices into the pool dataset).
    PoolIndices(Vec<usize>),
    /// Add these already-labelled synthetic rows to the training set
    /// (upsampling / SMOTE — no new information, rebalanced emphasis).
    SyntheticRows {
        /// Feature rows to append.
        rows: Vec<Vec<f64>>,
        /// Label per row.
        labels: Vec<usize>,
    },
    /// Nothing to suggest.
    None,
}

/// A strategy's full output: the actionable suggestion plus the
/// human-readable explanation (mean±std ALE bands and region descriptions
/// — step 6 of the paper's algorithm).
#[derive(Debug, Clone)]
pub struct Feedback {
    /// Actionable half.
    pub suggestion: Suggestion,
    /// ALE bands per feature (empty for non-ALE strategies).
    pub explanations: Vec<AleBand>,
    /// Free-form notes ("threshold 0.02 = median of per-feature std", …).
    pub notes: String,
}

impl Feedback {
    /// Render the paper-style textual explanation: one region description
    /// per feature with flagged intervals.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        if !self.notes.is_empty() {
            out.push_str(&self.notes);
            out.push('\n');
        }
        if let Suggestion::Regions(regions) = &self.suggestion {
            for r in regions {
                if !r.intervals.is_empty() {
                    out.push_str("  sample more data where ");
                    out.push_str(&r.describe());
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// A labeling oracle: given feature rows, produce a labelled dataset.
///
/// For the Scream-vs-rest experiments this is the network simulator
/// ("because we collect the data through emulation, we can easily collect
/// any additional data the feedback solution specifies"); tests use
/// synthetic oracles.
pub trait Labeler {
    /// Label the rows. The returned dataset must contain the same rows in
    /// order (implementations may clamp values into physical validity).
    fn label_rows(&self, rows: &[Vec<f64>]) -> Result<Dataset>;
}

/// Blanket implementation so plain closures work as labelers in tests and
/// examples: `&|rows| { ... }`.
impl<F> Labeler for F
where
    F: Fn(&[Vec<f64>]) -> Result<Dataset>,
{
    fn label_rows(&self, rows: &[Vec<f64>]) -> Result<Dataset> {
        self(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::FeatureDomain;
    use aml_interpret::region::Interval;

    #[test]
    fn describe_renders_regions_and_notes() {
        let fb = Feedback {
            suggestion: Suggestion::Regions(vec![FeatureRegions {
                feature: 0,
                feature_name: "config.link_rate".into(),
                threshold: 0.02,
                intervals: vec![Interval { lo: 1.0, hi: 45.0 }],
                domain: FeatureDomain::continuous(1.0, 120.0),
            }]),
            explanations: vec![],
            notes: "threshold = 0.02".into(),
        };
        let d = fb.describe();
        assert!(d.contains("threshold = 0.02"));
        assert!(d.contains("config.link_rate <= 45"));
    }

    #[test]
    fn closure_is_a_labeler() {
        let oracle = |rows: &[Vec<f64>]| -> Result<Dataset> {
            let labels: Vec<usize> = rows.iter().map(|r| usize::from(r[0] > 0.5)).collect();
            Ok(Dataset::from_rows(rows, &labels, 2)?)
        };
        let ds = oracle
            .label_rows(&[vec![0.1, 0.0], vec![0.9, 0.0]])
            .unwrap();
        assert_eq!(ds.labels(), &[0, 1]);
    }
}
