//! Label-imbalance correction: random oversampling and SMOTE.
//!
//! The paper's strongest Table-1 baseline: "we compare our solution to a
//! standard data-science solution to label imbalance, upsampling \[13\]"
//! (reference 13 is SMOTE). Both variants are provided:
//!
//! * [`random_oversample`] — duplicate minority-class rows until every
//!   class matches the majority count;
//! * [`smote`] — Synthetic Minority Over-sampling TEchnique: synthesize
//!   minority points by interpolating between a minority sample and one of
//!   its k nearest minority neighbours.

use crate::{CoreError, Result};
use aml_dataset::Dataset;
use aml_rng::rngs::StdRng;
use aml_rng::{Rng, SeedableRng};

/// Duplicate minority-class rows (sampled with replacement) until all
/// classes present reach the majority class count. Returns the augmented
/// dataset (original rows first, duplicates appended).
pub fn random_oversample(data: &Dataset, seed: u64) -> Result<Dataset> {
    if data.is_empty() {
        return Err(CoreError::InvalidParameter("empty dataset".into()));
    }
    let counts = data.class_counts();
    let max = *counts.iter().max().expect("non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = data.clone();
    for (class, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let members: Vec<usize> = (0..data.n_rows())
            .filter(|&i| data.label(i) == class)
            .collect();
        for _ in count..max {
            let pick = members[rng.gen_range(0..members.len())];
            out.push_row(data.row(pick), class)?;
        }
    }
    Ok(out)
}

/// SMOTE: for every synthetic point, pick a random minority sample `x`,
/// one of its `k` nearest same-class neighbours `x'`, and emit
/// `x + u · (x' − x)` with `u ~ U(0,1)`. Balances all classes up to the
/// majority count. Classes with a single sample fall back to duplication.
pub fn smote(data: &Dataset, k: usize, seed: u64) -> Result<Dataset> {
    if data.is_empty() {
        return Err(CoreError::InvalidParameter("empty dataset".into()));
    }
    if k == 0 {
        return Err(CoreError::InvalidParameter("k must be >= 1".into()));
    }
    let counts = data.class_counts();
    let max = *counts.iter().max().expect("non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = data.clone();

    for (class, &count) in counts.iter().enumerate() {
        if count == 0 || count == max {
            continue;
        }
        let members: Vec<usize> = (0..data.n_rows())
            .filter(|&i| data.label(i) == class)
            .collect();
        // Precompute each member's k nearest same-class neighbours.
        let neighbours: Vec<Vec<usize>> = members
            .iter()
            .map(|&i| {
                let mut dists: Vec<(f64, usize)> = members
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| (sq_dist(data.row(i), data.row(j)), j))
                    .collect();
                dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite"));
                dists.into_iter().take(k).map(|(_, j)| j).collect()
            })
            .collect();

        for _ in count..max {
            let mi = rng.gen_range(0..members.len());
            let base = data.row(members[mi]);
            let row: Vec<f64> = if neighbours[mi].is_empty() {
                base.to_vec() // singleton class: duplicate
            } else {
                let nb = neighbours[mi][rng.gen_range(0..neighbours[mi].len())];
                let other = data.row(nb);
                let u: f64 = rng.gen();
                base.iter()
                    .zip(other)
                    .map(|(a, b)| a + u * (b - a))
                    .collect()
            };
            out.push_row(&row, class)?;
        }
    }
    Ok(out)
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imbalanced() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            rows.push(vec![i as f64, 0.0]);
            labels.push(0usize);
        }
        for i in 0..5 {
            rows.push(vec![100.0 + i as f64, 1.0]);
            labels.push(1usize);
        }
        Dataset::from_rows(&rows, &labels, 2).unwrap()
    }

    #[test]
    fn oversample_balances_counts() {
        let ds = imbalanced();
        let out = random_oversample(&ds, 1).unwrap();
        assert_eq!(out.class_counts(), vec![20, 20]);
        assert_eq!(out.n_rows(), 40);
    }

    #[test]
    fn oversample_only_duplicates_existing_rows() {
        let ds = imbalanced();
        let out = random_oversample(&ds, 2).unwrap();
        for i in ds.n_rows()..out.n_rows() {
            let row = out.row(i);
            let found = (0..ds.n_rows()).any(|j| ds.row(j) == row);
            assert!(found, "row {row:?} is not an original");
        }
    }

    #[test]
    fn smote_balances_counts() {
        let ds = imbalanced();
        let out = smote(&ds, 3, 3).unwrap();
        assert_eq!(out.class_counts(), vec![20, 20]);
    }

    #[test]
    fn smote_synthesizes_convex_combinations() {
        let ds = imbalanced();
        let out = smote(&ds, 3, 4).unwrap();
        // Minority rows live on the segment x ∈ [100, 104], y = 1; synthetic
        // points must stay within the class's convex hull on each axis.
        for i in ds.n_rows()..out.n_rows() {
            let row = out.row(i);
            assert!(
                (100.0..=104.0).contains(&row[0]),
                "synthetic x {} outside hull",
                row[0]
            );
            assert_eq!(row[1], 1.0);
            assert_eq!(out.label(i), 1);
        }
    }

    #[test]
    fn singleton_class_falls_back_to_duplication() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0], vec![50.0]];
        let labels = vec![0, 0, 0, 1];
        let ds = Dataset::from_rows(&rows, &labels, 2).unwrap();
        let out = smote(&ds, 5, 5).unwrap();
        assert_eq!(out.class_counts(), vec![3, 3]);
        for i in ds.n_rows()..out.n_rows() {
            assert_eq!(out.row(i), &[50.0]);
        }
    }

    #[test]
    fn balanced_input_is_unchanged() {
        let rows = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
        let labels = vec![0, 0, 1, 1];
        let ds = Dataset::from_rows(&rows, &labels, 2).unwrap();
        assert_eq!(random_oversample(&ds, 1).unwrap().n_rows(), 4);
        assert_eq!(smote(&ds, 1, 1).unwrap().n_rows(), 4);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let ds = imbalanced();
        assert!(smote(&ds, 0, 0).is_err());
        let empty = ds.empty_like();
        assert!(random_oversample(&empty, 0).is_err());
        assert!(smote(&empty, 1, 0).is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use aml_propcheck::prelude::*;
    // Explicit imports beat the two ambiguous glob re-exports of `Rng`.
    use aml_rng::{Rng, SeedableRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// SMOTE always balances classes and every synthetic coordinate is
        /// within the per-class bounding box (convexity).
        #[test]
        fn prop_smote_convex_and_balanced(
            n0 in 3usize..15,
            n1 in 3usize..15,
            seed in 0u64..100,
        ) {
            let mut rows = Vec::new();
            let mut labels = Vec::new();
            let mut rng = aml_rng::rngs::StdRng::seed_from_u64(seed);
            for _ in 0..n0 {
                rows.push(vec![rng.gen_range(-5.0..0.0), rng.gen_range(0.0..1.0)]);
                labels.push(0usize);
            }
            for _ in 0..n1 {
                rows.push(vec![rng.gen_range(5.0..10.0), rng.gen_range(2.0..3.0)]);
                labels.push(1usize);
            }
            let ds = Dataset::from_rows(&rows, &labels, 2).unwrap();
            let out = smote(&ds, 3, seed).unwrap();
            let counts = out.class_counts();
            prop_assert_eq!(counts[0], counts[1]);
            for i in ds.n_rows()..out.n_rows() {
                let r = out.row(i);
                let c = out.label(i);
                let (xr, yr) = if c == 0 { (-5.0..=0.0, 0.0..=1.0) } else { (5.0..=10.0, 2.0..=3.0) };
                prop_assert!(xr.contains(&r[0]), "x {} outside class hull", r[0]);
                prop_assert!(yr.contains(&r[1]), "y {} outside class hull", r[1]);
            }
        }
    }
}
