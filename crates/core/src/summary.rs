//! In-memory ledger summary: the handful of ML-level totals a completed
//! run is remembered by.
//!
//! The experiment ledger streams every trial, round, and suggestion to
//! disk; most consumers (the history store, `perfgate --record`, the
//! `/dashboard` trend section) only need four numbers from all of that:
//! how many trials finished, how many failed, how many feedback rounds
//! ran, and the accuracy of the last one. This module tallies those
//! *while the run executes*, as an [`aml_telemetry::Sink`] that consumes
//! ledger events without writing anything — so a `--record` run gets its
//! summary for free, with or without `--ledger-out`.
//!
//! Installing the collector raises the ledger emission gate (it
//! `wants_ledger`), so events flow to it even when no JSONL ledger sink
//! is configured. The returned [`SummaryHandle`] shares the tallies via
//! an `Arc`, so they survive `aml_telemetry::sink::finish` draining the
//! sink itself. Everything is a relaxed atomic: no locks on the
//! emission path, and nothing at all happens unless
//! [`install_collector`] is called (off-is-free).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aml_telemetry::ledger::LedgerEvent;
use aml_telemetry::sink::SpanEvent;
use aml_telemetry::{Sink, Snapshot};

/// Shared tallies behind a [`SummaryHandle`] and its collector sink.
#[derive(Debug, Default)]
struct Totals {
    trials_finished: AtomicU64,
    trials_failed: AtomicU64,
    rounds: AtomicU64,
    /// Bit pattern of the last `RoundCompleted.acc_mean`; NaN bits mean
    /// "no round completed yet".
    final_acc_bits: AtomicU64,
    /// Bit pattern of the last `ModelDiagnostics` round's ECE; NaN bits
    /// mean "no diagnostics observed yet".
    final_ece_bits: AtomicU64,
}

/// The ML-level totals of a run, read from a [`SummaryHandle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerSummary {
    /// `trial_finished` ledger events observed.
    pub trials_finished: u64,
    /// `trial_failed` ledger events observed.
    pub trials_failed: u64,
    /// `round_completed` ledger events observed.
    pub rounds: u64,
    /// Mean accuracy of the last completed feedback round, if any.
    pub final_acc: Option<f64>,
    /// Expected Calibration Error of the last round's model
    /// diagnostics, if any were emitted (quality plane armed).
    pub ece: Option<f64>,
}

/// Live handle onto the tallies of an installed summary collector.
/// Cloning is cheap (an `Arc` bump); reads are consistent per field but
/// not across fields (each is an independent relaxed atomic).
#[derive(Debug, Clone)]
pub struct SummaryHandle {
    totals: Arc<Totals>,
}

impl SummaryHandle {
    /// Read the current totals.
    pub fn snapshot(&self) -> LedgerSummary {
        let acc = f64::from_bits(self.totals.final_acc_bits.load(Ordering::Relaxed));
        let ece = f64::from_bits(self.totals.final_ece_bits.load(Ordering::Relaxed));
        LedgerSummary {
            trials_finished: self.totals.trials_finished.load(Ordering::Relaxed),
            trials_failed: self.totals.trials_failed.load(Ordering::Relaxed),
            rounds: self.totals.rounds.load(Ordering::Relaxed),
            final_acc: if acc.is_finite() { Some(acc) } else { None },
            ece: if ece.is_finite() { Some(ece) } else { None },
        }
    }
}

/// The sink half: consumes ledger events, updates the shared tallies,
/// writes nothing.
struct SummaryCollector {
    totals: Arc<Totals>,
}

impl Sink for SummaryCollector {
    fn on_span_close(&self, _event: &SpanEvent) {}

    fn on_ledger_event(&self, event: &LedgerEvent) {
        match event {
            LedgerEvent::TrialFinished { .. } => {
                self.totals.trials_finished.fetch_add(1, Ordering::Relaxed);
            }
            LedgerEvent::TrialFailed { .. } => {
                self.totals.trials_failed.fetch_add(1, Ordering::Relaxed);
            }
            LedgerEvent::RoundCompleted { acc_mean, .. } => {
                self.totals.rounds.fetch_add(1, Ordering::Relaxed);
                self.totals
                    .final_acc_bits
                    .store(acc_mean.to_bits(), Ordering::Relaxed);
            }
            LedgerEvent::ModelDiagnostics {
                bin_count,
                bin_conf_sum,
                bin_hit,
                ..
            } => {
                let ece = aml_telemetry::quality::ece_from_bins(bin_count, bin_conf_sum, bin_hit);
                self.totals
                    .final_ece_bits
                    .store(ece.to_bits(), Ordering::Relaxed);
            }
            _ => {}
        }
    }

    fn wants_ledger(&self) -> bool {
        true
    }

    fn finish(&self, _snapshot: &Snapshot) -> std::io::Result<()> {
        Ok(())
    }

    fn target(&self) -> String {
        "ledger summary (in memory)".into()
    }
}

/// Install a summary collector into the telemetry sink registry and
/// return the handle its tallies are read through. Raises the ledger
/// emission gate. Call once per run, before the workload starts; the
/// handle stays valid after `aml_telemetry::sink::finish` drains the
/// sinks.
pub fn install_collector() -> SummaryHandle {
    let totals = Arc::new(Totals {
        final_acc_bits: AtomicU64::new(f64::NAN.to_bits()),
        final_ece_bits: AtomicU64::new(f64::NAN.to_bits()),
        ..Totals::default()
    });
    aml_telemetry::sink::install(Box::new(SummaryCollector {
        totals: Arc::clone(&totals),
    }));
    SummaryHandle { totals }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector_pair() -> (SummaryHandle, SummaryCollector) {
        let totals = Arc::new(Totals {
            final_acc_bits: AtomicU64::new(f64::NAN.to_bits()),
            final_ece_bits: AtomicU64::new(f64::NAN.to_bits()),
            ..Totals::default()
        });
        (
            SummaryHandle {
                totals: Arc::clone(&totals),
            },
            SummaryCollector { totals },
        )
    }

    #[test]
    fn tallies_trials_failures_and_rounds() {
        let (handle, sink) = collector_pair();
        assert_eq!(
            handle.snapshot(),
            LedgerSummary {
                trials_finished: 0,
                trials_failed: 0,
                rounds: 0,
                final_acc: None,
                ece: None,
            }
        );
        for trial in 0..3 {
            sink.on_ledger_event(&LedgerEvent::TrialFinished {
                trial,
                rung: 0,
                family: "forest".into(),
                score: 0.8,
            });
        }
        sink.on_ledger_event(&LedgerEvent::TrialFailed {
            trial: 3,
            rung: 0,
            family: "mlp".into(),
            reason: "error".into(),
        });
        sink.on_ledger_event(&LedgerEvent::RoundCompleted {
            round: 0,
            strategy: "Within-ALE".into(),
            acc_mean: 0.82,
            acc_min: 0.8,
            acc_max: 0.84,
            points_added: 50,
            regions: 2,
            ale_std_mean: 0.0,
            ale_std_max: 0.0,
        });
        sink.on_ledger_event(&LedgerEvent::RoundCompleted {
            round: 1,
            strategy: "Within-ALE".into(),
            acc_mean: 0.91,
            acc_min: 0.9,
            acc_max: 0.92,
            points_added: 50,
            regions: 1,
            ale_std_mean: 0.0,
            ale_std_max: 0.0,
        });
        let snap = handle.snapshot();
        assert_eq!(snap.trials_finished, 3);
        assert_eq!(snap.trials_failed, 1);
        assert_eq!(snap.rounds, 2);
        assert_eq!(snap.final_acc, Some(0.91));
        assert_eq!(snap.ece, None);
        // A model_diagnostics event fills in the calibration summary.
        sink.on_ledger_event(&LedgerEvent::ModelDiagnostics {
            round: 1,
            strategy: "Within-ALE".into(),
            rows: 4,
            classes: vec!["a".into(), "b".into()],
            confusion: vec![vec![2, 0], vec![1, 1]],
            brier: 0.2,
            bin_count: vec![4],
            bin_conf_sum: vec![3.2],
            bin_hit: vec![3],
            ale_band_width: 0.0,
        });
        let ece = handle.snapshot().ece.expect("diagnostics set ece");
        assert!((ece - 0.05).abs() < 1e-12, "{ece}");
    }

    #[test]
    fn non_finite_round_accuracy_reads_as_none() {
        let (handle, sink) = collector_pair();
        sink.on_ledger_event(&LedgerEvent::RoundCompleted {
            round: 0,
            strategy: "Random".into(),
            acc_mean: f64::NAN,
            acc_min: f64::NAN,
            acc_max: f64::NAN,
            points_added: 0,
            regions: 0,
            ale_std_mean: 0.0,
            ale_std_max: 0.0,
        });
        let snap = handle.snapshot();
        assert_eq!(snap.rounds, 1);
        assert_eq!(snap.final_acc, None);
    }

    #[test]
    fn collector_wants_ledger_and_writes_nothing() {
        let (_handle, sink) = collector_pair();
        assert!(sink.wants_ledger());
        assert_eq!(sink.target(), "ledger summary (in memory)");
    }
}
