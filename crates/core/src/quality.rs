//! Per-round quality probes: dataset profiles and model diagnostics.
//!
//! Builders for the quality plane's two ledger events. The experiment
//! loop calls these once per feedback round — only while the ledger is
//! armed — to summarize what the model just trained on (per-feature
//! histograms over the *declared* domains, so profiles share bin edges
//! across rounds and runs and are PSI-comparable) and how the refit
//! ensemble behaves on the eval sets (confusion matrix, Brier score,
//! reliability-bin tallies). The events carry raw counts and sums only;
//! every derived metric is computed on the read side
//! ([`aml_telemetry::quality`]), which keeps a `quality.json` and an
//! `amlquality` recompute from the ledger byte-identical.

use crate::Result;
use aml_dataset::{Dataset, FeatureDomain};
use aml_models::Classifier;
use aml_telemetry::ledger::LedgerEvent;
use aml_telemetry::quality::{profile_feature, RELIABILITY_BINS};

/// Build one `dataset_profile` event over the union of `sets` (all must
/// share the schema of the first; the experiment passes either the
/// augmented train set or the eval test sets). Returns `None` for an
/// empty set list.
pub fn dataset_profile_event(
    round: u64,
    split: &str,
    sets: &[&Dataset],
) -> Result<Option<LedgerEvent>> {
    let Some(first) = sets.first() else {
        return Ok(None);
    };
    let mut rows = 0u64;
    let mut class_counts = vec![0u64; first.n_classes()];
    for ds in sets {
        rows += ds.n_rows() as u64;
        for (k, c) in ds.class_counts().iter().enumerate() {
            if let Some(slot) = class_counts.get_mut(k) {
                *slot += *c as u64;
            }
        }
    }
    let mut features = Vec::with_capacity(first.n_features());
    for (j, meta) in first.features().iter().enumerate() {
        let mut values: Vec<f64> = Vec::with_capacity(rows as usize);
        for ds in sets {
            values.extend(ds.column(j)?);
        }
        let domain = first.domain(j)?;
        // Small integer domains get one bin per category (per-category
        // counts); everything else uses the default resolution.
        let max_bins = match domain {
            FeatureDomain::Integer { lo, hi } => {
                usize::try_from((hi - lo).saturating_add(1)).unwrap_or(usize::MAX)
            }
            FeatureDomain::Continuous { .. } => usize::MAX,
        };
        features.push(profile_feature(
            &meta.name,
            domain.lo(),
            domain.hi(),
            max_bins,
            &values,
        ));
    }
    Ok(Some(LedgerEvent::DatasetProfile {
        round,
        split: split.to_string(),
        rows,
        class_counts,
        features,
    }))
}

/// Build one `model_diagnostics` event from `model`'s predictions over
/// every row of `test_sets`: confusion matrix, Brier score, and
/// reliability-bin tallies (confidence = the predicted class's
/// probability, argmax ties to the lower index — matching
/// [`Classifier::predict`]). Returns `None` when the eval sets are
/// empty. `ale_band_width` is the round's mean ALE ±σ band width (2σ),
/// 0 without ALE feedback.
pub fn model_diagnostics_event<M: Classifier + ?Sized>(
    round: u64,
    strategy: &str,
    model: &M,
    test_sets: &[Dataset],
    ale_band_width: f64,
) -> Result<Option<LedgerEvent>> {
    let Some(first) = test_sets.first() else {
        return Ok(None);
    };
    let n_classes = first.n_classes();
    let mut confusion = vec![vec![0u64; n_classes]; n_classes];
    let mut bin_count = vec![0u64; RELIABILITY_BINS];
    let mut bin_conf_sum = vec![0.0f64; RELIABILITY_BINS];
    let mut bin_hit = vec![0u64; RELIABILITY_BINS];
    let mut brier_sum = 0.0;
    let mut rows = 0u64;
    for ts in test_sets {
        for i in 0..ts.n_rows() {
            let probs = model.predict_proba_row(ts.row(i))?;
            let label = ts.label(i);
            let mut pred = 0usize;
            let mut conf = f64::NEG_INFINITY;
            let mut sq = 0.0;
            for (k, &p) in probs.iter().enumerate() {
                if p > conf {
                    conf = p;
                    pred = k;
                }
                let target = if k == label { 1.0 } else { 0.0 };
                sq += (p - target) * (p - target);
            }
            if !conf.is_finite() {
                continue;
            }
            if label < n_classes && pred < n_classes {
                confusion[label][pred] += 1;
            }
            let bin = ((conf * RELIABILITY_BINS as f64) as usize).min(RELIABILITY_BINS - 1);
            bin_count[bin] += 1;
            bin_conf_sum[bin] += conf;
            if pred == label {
                bin_hit[bin] += 1;
            }
            brier_sum += sq;
            rows += 1;
        }
    }
    Ok(Some(LedgerEvent::ModelDiagnostics {
        round,
        strategy: strategy.to_string(),
        rows,
        classes: first.class_names().to_vec(),
        confusion,
        brier: if rows > 0 {
            brier_sum / rows as f64
        } else {
            0.0
        },
        bin_count,
        bin_conf_sum,
        bin_hit,
        ale_band_width,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::FeatureMeta;
    use aml_models::ModelError;

    /// Predicts class 0 with fixed confidence for every row.
    struct Constant {
        proba: Vec<f64>,
    }

    impl Classifier for Constant {
        fn n_classes(&self) -> usize {
            self.proba.len()
        }

        fn n_features(&self) -> usize {
            1
        }

        fn predict_proba_row(&self, _row: &[f64]) -> std::result::Result<Vec<f64>, ModelError> {
            Ok(self.proba.clone())
        }

        fn name(&self) -> &'static str {
            "constant"
        }
    }

    fn two_class_set(rows: &[(f64, usize)]) -> Dataset {
        let mut ds = Dataset::new(
            vec![FeatureMeta {
                name: "x".into(),
                domain: FeatureDomain::continuous(0.0, 1.0),
            }],
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        for (x, y) in rows {
            ds.push_row(&[*x], *y).unwrap();
        }
        ds
    }

    #[test]
    fn profile_event_unions_sets_and_counts_classes() {
        let a = two_class_set(&[(0.1, 0), (0.9, 1)]);
        let b = two_class_set(&[(0.2, 0), (0.3, 0)]);
        let event = dataset_profile_event(3, "eval", &[&a, &b])
            .unwrap()
            .unwrap();
        match event {
            LedgerEvent::DatasetProfile {
                round,
                split,
                rows,
                class_counts,
                features,
            } => {
                assert_eq!(round, 3);
                assert_eq!(split, "eval");
                assert_eq!(rows, 4);
                assert_eq!(class_counts, vec![3, 1]);
                assert_eq!(features.len(), 1);
                assert_eq!(features[0].count, 4);
                assert_eq!(features[0].bins.iter().sum::<u64>(), 4);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(dataset_profile_event(0, "train", &[]).unwrap().is_none());
    }

    #[test]
    fn small_integer_domains_profile_per_category() {
        let mut ds = Dataset::new(
            vec![FeatureMeta {
                name: "proto".into(),
                domain: FeatureDomain::integer(0, 2),
            }],
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        for (v, y) in [(0.0, 0), (1.0, 1), (1.0, 0), (2.0, 1)] {
            ds.push_row(&[v], y).unwrap();
        }
        let event = dataset_profile_event(0, "train", &[&ds]).unwrap().unwrap();
        let LedgerEvent::DatasetProfile { features, .. } = event else {
            panic!("wrong event");
        };
        assert_eq!(features[0].bins, vec![1, 2, 1], "one bin per category");
    }

    #[test]
    fn diagnostics_tally_confusion_brier_and_reliability() {
        let ds = two_class_set(&[(0.1, 0), (0.2, 0), (0.3, 1)]);
        let model = Constant {
            proba: vec![0.8, 0.2],
        };
        let event = model_diagnostics_event(2, "Random", &model, &[ds], 0.5)
            .unwrap()
            .unwrap();
        let LedgerEvent::ModelDiagnostics {
            round,
            strategy,
            rows,
            classes,
            confusion,
            brier,
            bin_count,
            bin_conf_sum,
            bin_hit,
            ale_band_width,
        } = event
        else {
            panic!("wrong event");
        };
        assert_eq!((round, rows), (2, 3));
        assert_eq!(strategy, "Random");
        assert_eq!(classes, vec!["a".to_string(), "b".to_string()]);
        // Everything predicted as class 0.
        assert_eq!(confusion, vec![vec![2, 0], vec![1, 0]]);
        // Confidence 0.8 lands in bin 8 of 10.
        assert_eq!(bin_count[8], 3);
        assert!((bin_conf_sum[8] - 2.4).abs() < 1e-12);
        assert_eq!(bin_hit[8], 2);
        // Brier per row: correct = 2*(0.2)^2 = 0.08, wrong = 0.64+0.64.
        let expected = (0.08 + 0.08 + 1.28) / 3.0;
        assert!((brier - expected).abs() < 1e-12, "{brier}");
        assert_eq!(ale_band_width, 0.5);
        assert!(model_diagnostics_event(0, "x", &model, &[], 0.0)
            .unwrap()
            .is_none());
    }
}
