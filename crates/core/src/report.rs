//! Table-1-style reporting: balanced accuracy `mean ± std` per strategy
//! plus the one-sided Wilcoxon p-value columns.

use crate::experiment::{Strategy, StrategyOutcome};
use crate::Result;
use aml_stats::summary::PairwiseMatrix;

/// A rendered experiment table.
pub struct Table {
    matrix: PairwiseMatrix,
    points_added: Vec<(Strategy, usize)>,
}

impl Table {
    /// Assemble from strategy outcomes (paired scores).
    pub fn build(outcomes: &[StrategyOutcome]) -> Result<Table> {
        let mut matrix = PairwiseMatrix::new();
        let mut points_added = Vec::new();
        for out in outcomes {
            let name = if matches!(
                out.strategy,
                Strategy::WithinAlePool | Strategy::CrossAlePool
            ) {
                format!("{} ({} points)", out.strategy.name(), out.n_points_added)
            } else {
                out.strategy.name().to_string()
            };
            matrix.add(name, out.scores.clone())?;
            points_added.push((out.strategy, out.n_points_added));
        }
        Ok(Table {
            matrix,
            points_added,
        })
    }

    /// The underlying pairwise matrix (for further analysis).
    pub fn matrix(&self) -> &PairwiseMatrix {
        &self.matrix
    }

    /// Points added per strategy.
    pub fn points_added(&self) -> &[(Strategy, usize)] {
        &self.points_added
    }

    /// Render in the paper's layout: `P(X, no feedback)`, `P(X, within)`,
    /// `P(X, cross)` columns.
    pub fn render(&self) -> Result<String> {
        Ok(self.matrix.render(&[
            Strategy::NoFeedback.name(),
            Strategy::WithinAle.name(),
            Strategy::CrossAle.name(),
        ])?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_strategy, ExperimentConfig, Strategy};
    use aml_automl::AutoMlConfig;
    use aml_dataset::{split::split_into_k, synth};

    #[test]
    fn table_builds_and_renders() {
        let train = synth::two_moons(120, 0.25, 1).unwrap();
        let test = synth::two_moons(200, 0.25, 2).unwrap();
        let tests = split_into_k(&test, 4, 3).unwrap();
        let cfg = ExperimentConfig {
            automl: AutoMlConfig {
                n_candidates: 4,
                ensemble_rounds: 3,
                ..Default::default()
            },
            n_feedback_points: 20,
            n_cross_runs: 2,
            seed: 1,
            ..Default::default()
        };
        let outcomes = vec![
            run_strategy(Strategy::NoFeedback, &cfg, &train, None, None, &tests).unwrap(),
            run_strategy(Strategy::Upsampling, &cfg, &train, None, None, &tests).unwrap(),
        ];
        let table = Table::build(&outcomes).unwrap();
        let rendered = table.render().unwrap();
        assert!(rendered.contains("Without feedback"));
        assert!(rendered.contains("Upsampling"));
        assert!(rendered.contains("P(X, Without feedback)"));
        assert!(rendered.contains('%'));
    }

    #[test]
    fn pool_strategy_name_includes_point_count() {
        let train = synth::noisy_xor(120, 0.05, 3).unwrap();
        let pool = synth::noisy_xor(200, 0.05, 4).unwrap();
        let test = synth::noisy_xor(120, 0.0, 5).unwrap();
        let tests = split_into_k(&test, 3, 6).unwrap();
        let cfg = ExperimentConfig {
            automl: AutoMlConfig {
                n_candidates: 4,
                ensemble_rounds: 3,
                ..Default::default()
            },
            n_feedback_points: 15,
            n_cross_runs: 2,
            seed: 2,
            ..Default::default()
        };
        let out = run_strategy(
            Strategy::WithinAlePool,
            &cfg,
            &train,
            Some(&pool),
            None,
            &tests,
        )
        .unwrap();
        let table = Table::build(&[out]).unwrap();
        let rendered = table.render().unwrap();
        assert!(
            rendered.contains("Within-ALE-Pool ("),
            "pool row shows its point count: {rendered}"
        );
    }
}
