//! Uniform random sampling — "the simplest baseline" (paper §4).
//!
//! Draws feature rows uniformly at random from every feature's declared
//! domain `R(X_s)`, to be labelled by the oracle and appended to the
//! training set.

use crate::{CoreError, Result};
use aml_dataset::Dataset;
use aml_rng::rngs::StdRng;
use aml_rng::{Rng, SeedableRng};

/// Sample `n` rows uniformly from the dataset's feature domains.
pub fn uniform_sample(data: &Dataset, n: usize, seed: u64) -> Result<Vec<Vec<f64>>> {
    if data.n_features() == 0 {
        return Err(CoreError::InvalidParameter(
            "dataset has no features".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = Vec::with_capacity(data.n_features());
        for j in 0..data.n_features() {
            let d = data.domain(j)?;
            let v = rng.gen_range(d.lo()..=d.hi());
            row.push(d.clamp(v));
        }
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::{Dataset, FeatureMeta};

    fn schema() -> Dataset {
        Dataset::new(
            vec![
                FeatureMeta::continuous("a", -1.0, 1.0),
                FeatureMeta::integer("b", 0, 10),
            ],
            vec!["x".into(), "y".into()],
        )
        .unwrap()
    }

    #[test]
    fn samples_respect_domains() {
        let ds = schema();
        let rows = uniform_sample(&ds, 200, 1).unwrap();
        assert_eq!(rows.len(), 200);
        for r in &rows {
            assert!((-1.0..=1.0).contains(&r[0]));
            assert!((0.0..=10.0).contains(&r[1]));
            assert_eq!(r[1], r[1].round(), "integer domain clamps to integers");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = schema();
        assert_eq!(
            uniform_sample(&ds, 10, 4).unwrap(),
            uniform_sample(&ds, 10, 4).unwrap()
        );
        assert_ne!(
            uniform_sample(&ds, 10, 4).unwrap(),
            uniform_sample(&ds, 10, 5).unwrap()
        );
    }

    #[test]
    fn covers_the_domain_roughly_uniformly() {
        let ds = schema();
        let rows = uniform_sample(&ds, 2000, 9).unwrap();
        let mean: f64 = rows.iter().map(|r| r[0]).sum::<f64>() / rows.len() as f64;
        assert!(mean.abs() < 0.1, "mean of U(-1,1) ≈ 0, got {mean}");
        let below: usize = rows.iter().filter(|r| r[0] < 0.0).count();
        assert!((800..1200).contains(&below));
    }
}
