//! # aml-core — Interpretable feedback for AutoML
//!
//! The paper's contribution: when AutoML produces a model whose accuracy
//! disappoints, tell the operator **which regions of feature space to
//! collect more training data from, and why** — in terms a non-ML expert
//! can check against their domain knowledge.
//!
//! ## The algorithm (paper §3)
//!
//! 1. Run AutoML → an ensemble ℳ of diverse models
//!    ([`aml_automl::FittedAutoMl`]).
//! 2. Per model, compute ALE curves per feature
//!    ([`aml_interpret::ale`]).
//! 3. Threshold the cross-model standard deviation of the ALE values with
//!    𝒯 ([`aml_interpret::variance`], [`aml_interpret::region`]).
//! 4. Return the high-variance feature subspaces `∪ᵢ Aᵢx ≤ bᵢ` as sampling
//!    regions plus the mean±std ALE plots as the explanation
//!    ([`ale_feedback::AleAnalysis`]).
//! 5. The operator samples those regions, labels the points, retrains.
//!
//! Two variants ([`ale_feedback::AleMode`]): **Within-ALE** uses the members
//! of one AutoML ensemble as the model bag; **Cross-ALE** uses the full
//! ensembles of several independent AutoML runs (more diverse, more
//! expensive). Each has a pool-restricted variant for head-to-head
//! comparison with active learning.
//!
//! ## Baselines (paper §4)
//!
//! [`uniform`] random sampling, [`confidence`]-based active learning,
//! [`qbc`] (vote-entropy query-by-committee over the AutoML ensemble),
//! [`upsampling`] (random oversampling + SMOTE), plus the margin and
//! entropy uncertainty-sampling variants ([`uncertainty`]).
//!
//! ## The experiment loop
//!
//! [`experiment`] packages the evaluate → feedback → augment → retrain →
//! re-evaluate protocol behind Table 1 and §4.2, generic over a
//! [`feedback::Labeler`] (the simulator, the firewall generator, or any
//! oracle).

pub mod ale_feedback;
pub mod checkpoint;
pub mod confidence;
pub mod experiment;
pub mod feedback;
pub mod qbc;
pub mod quality;
pub mod report;
pub mod summary;
pub mod uncertainty;
pub mod uniform;
pub mod upsampling;

pub use ale_feedback::{AleAnalysis, AleFeedback, AleMode, InterpretationMethod, ThresholdRule};
pub use checkpoint::{Checkpoint, ExperimentError, ExperimentLoop, RoundRecord};
pub use experiment::{run_strategy, ExperimentConfig, Strategy, StrategyOutcome};
pub use feedback::{Feedback, Labeler, Suggestion};
pub use report::Table;
pub use summary::{LedgerSummary, SummaryHandle};

/// Errors from the feedback layer.
#[derive(Debug)]
pub enum CoreError {
    /// A strategy needed a capability that wasn't provided (e.g. a free
    /// labeler or a candidate pool).
    MissingCapability(String),
    /// Invalid parameter.
    InvalidParameter(String),
    /// No region exceeded the threshold — there is nothing to suggest.
    NoRegions,
    /// AutoML failure.
    AutoMl(aml_automl::AutoMlError),
    /// Interpretation failure.
    Interpret(aml_interpret::InterpretError),
    /// Model failure.
    Model(aml_models::ModelError),
    /// Dataset failure.
    Data(aml_dataset::DataError),
    /// Statistics failure.
    Stats(aml_stats::StatsError),
    /// Experiment-loop persistence failure (checkpoint/resume).
    Experiment(checkpoint::ExperimentError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::MissingCapability(m) => write!(f, "missing capability: {m}"),
            CoreError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            CoreError::NoRegions => write!(f, "no feature region exceeds the variance threshold"),
            CoreError::AutoMl(e) => write!(f, "automl error: {e}"),
            CoreError::Interpret(e) => write!(f, "interpretation error: {e}"),
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Data(e) => write!(f, "dataset error: {e}"),
            CoreError::Stats(e) => write!(f, "stats error: {e}"),
            CoreError::Experiment(e) => write!(f, "experiment error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<aml_automl::AutoMlError> for CoreError {
    fn from(e: aml_automl::AutoMlError) -> Self {
        CoreError::AutoMl(e)
    }
}
impl From<aml_interpret::InterpretError> for CoreError {
    fn from(e: aml_interpret::InterpretError) -> Self {
        CoreError::Interpret(e)
    }
}
impl From<aml_models::ModelError> for CoreError {
    fn from(e: aml_models::ModelError) -> Self {
        CoreError::Model(e)
    }
}
impl From<aml_dataset::DataError> for CoreError {
    fn from(e: aml_dataset::DataError) -> Self {
        CoreError::Data(e)
    }
}
impl From<aml_stats::StatsError> for CoreError {
    fn from(e: aml_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}
impl From<checkpoint::ExperimentError> for CoreError {
    fn from(e: checkpoint::ExperimentError) -> Self {
        CoreError::Experiment(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
