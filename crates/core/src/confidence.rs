//! Confidence-based (least-confidence) active learning — "one of the most
//! commonly used active learning solutions" (paper §4).
//!
//! Scores every candidate-pool point by `1 − max_c p(c | x)` under the
//! AutoML ensemble's predicted probability ("we use the prediction
//! probability returned by AutoSKlearn as a measure of confidence") and
//! returns the least-confident points.

use crate::{CoreError, Result};
use aml_dataset::Dataset;
use aml_models::Classifier;

/// Least-confidence score of one row: `1 − max_c p(c|x)`.
pub fn least_confidence(model: &dyn Classifier, row: &[f64]) -> Result<f64> {
    let p = model.predict_proba_row(row)?;
    let max = p.iter().cloned().fold(f64::MIN, f64::max);
    Ok(1.0 - max)
}

/// Select the `n` least-confident pool rows. Ties break toward lower pool
/// index. Returns pool indices sorted by descending uncertainty.
pub fn confidence_select(model: &dyn Classifier, pool: &Dataset, n: usize) -> Result<Vec<usize>> {
    if pool.is_empty() {
        return Err(CoreError::MissingCapability(
            "confidence-based feedback needs a candidate pool".into(),
        ));
    }
    let mut scored: Vec<(f64, usize)> = (0..pool.n_rows())
        .map(|i| Ok((least_confidence(model, pool.row(i))?, i)))
        .collect::<Result<_>>()?;
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("confidences are finite")
            .then(a.1.cmp(&b.1))
    });
    Ok(scored.into_iter().take(n).map(|(_, i)| i).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// p(class 1) = clamp(x, 0, 1): confidence lowest at x = 0.5.
    struct LinearProb;
    impl Classifier for LinearProb {
        fn n_classes(&self) -> usize {
            2
        }
        fn n_features(&self) -> usize {
            1
        }
        fn predict_proba_row(&self, row: &[f64]) -> aml_models::Result<Vec<f64>> {
            let p = row[0].clamp(0.0, 1.0);
            Ok(vec![1.0 - p, p])
        }
        fn name(&self) -> &'static str {
            "linear_prob"
        }
    }

    fn pool(values: &[f64]) -> Dataset {
        let rows: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        Dataset::from_rows(&rows, &vec![0usize; values.len()], 2).unwrap()
    }

    #[test]
    fn score_peaks_at_decision_boundary() {
        let lc_mid = least_confidence(&LinearProb, &[0.5]).unwrap();
        let lc_edge = least_confidence(&LinearProb, &[0.95]).unwrap();
        assert!((lc_mid - 0.5).abs() < 1e-12);
        assert!(lc_edge < 0.1);
    }

    #[test]
    fn selects_boundary_points_first() {
        let p = pool(&[0.05, 0.45, 0.95, 0.55, 0.30]);
        let picked = confidence_select(&LinearProb, &p, 2).unwrap();
        // 0.45 and 0.55 are the closest to the boundary.
        assert!(picked.contains(&1));
        assert!(picked.contains(&3));
    }

    #[test]
    fn ties_break_by_pool_order() {
        let p = pool(&[0.4, 0.6, 0.4, 0.6]); // all score 0.4
        let picked = confidence_select(&LinearProb, &p, 2).unwrap();
        assert_eq!(picked, vec![0, 1]);
    }

    #[test]
    fn empty_pool_rejected() {
        let p = pool(&[0.5]).empty_like();
        assert!(matches!(
            confidence_select(&LinearProb, &p, 5),
            Err(CoreError::MissingCapability(_))
        ));
    }

    #[test]
    fn cap_respected() {
        let p = pool(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        assert_eq!(confidence_select(&LinearProb, &p, 3).unwrap().len(), 3);
        assert_eq!(confidence_select(&LinearProb, &p, 50).unwrap().len(), 5);
    }
}
