//! The evaluate → feedback → augment → retrain → re-evaluate loop behind
//! Table 1 and §4.2.
//!
//! Every strategy follows the same protocol so the comparison is paired:
//!
//! 1. fit AutoML on the initial training data (once, or `n_cross_runs`
//!    times for Cross-ALE);
//! 2. produce a suggestion (regions / pool indices / synthetic rows);
//! 3. materialize new labelled rows — via the [`Labeler`] oracle for
//!    free-sampling strategies, by revealing pool labels for pool-based
//!    ones;
//! 4. refit AutoML on the augmented data (same refit seed for every
//!    strategy);
//! 5. score balanced accuracy on each of the (typically 20) test sets.

use crate::ale_feedback::{AleFeedback, AleMode};
use crate::confidence::confidence_select;
use crate::feedback::{Feedback, Labeler, Suggestion};
use crate::qbc::qbc_select;
use crate::uncertainty::{entropy_select, margin_select};
use crate::uniform::uniform_sample;
use crate::upsampling::{random_oversample, smote};
use crate::{CoreError, Result};
use aml_automl::{AutoMl, AutoMlConfig, FittedAutoMl};
use aml_dataset::Dataset;
use aml_models::metrics::balanced_accuracy;
use aml_models::Classifier;

/// The nine Table-1 strategies (plus SMOTE as a distinct upsampler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strategy {
    /// Train on the raw data only.
    NoFeedback,
    /// ALE-variance regions from one AutoML ensemble; free sampling.
    WithinAle,
    /// ALE-variance regions across independent AutoML runs; free sampling.
    CrossAle,
    /// Within-ALE restricted to the candidate pool.
    WithinAlePool,
    /// Cross-ALE restricted to the candidate pool.
    CrossAlePool,
    /// Uniform random sampling from the feature domains.
    Uniform,
    /// Least-confidence active learning from the pool.
    Confidence,
    /// Query-by-committee (vote entropy) from the pool.
    Qbc,
    /// Random oversampling to balance labels.
    Upsampling,
    /// SMOTE synthetic oversampling.
    Smote,
    /// Smallest-margin uncertainty sampling from the pool.
    Margin,
    /// Predictive-entropy uncertainty sampling from the pool.
    Entropy,
}

impl Strategy {
    /// All strategies in Table-1 order (extensions appended).
    pub const ALL: [Strategy; 12] = [
        Strategy::NoFeedback,
        Strategy::WithinAle,
        Strategy::CrossAle,
        Strategy::Uniform,
        Strategy::Confidence,
        Strategy::Upsampling,
        Strategy::Qbc,
        Strategy::WithinAlePool,
        Strategy::CrossAlePool,
        Strategy::Smote,
        Strategy::Margin,
        Strategy::Entropy,
    ];

    /// Display name matching the paper's Table 1 rows.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::NoFeedback => "Without feedback",
            Strategy::WithinAle => "Within-ALE",
            Strategy::CrossAle => "Cross-ALE",
            Strategy::WithinAlePool => "Within-ALE-Pool",
            Strategy::CrossAlePool => "Cross-ALE-Pool",
            Strategy::Uniform => "Uniform",
            Strategy::Confidence => "Confidence based",
            Strategy::Qbc => "QBC",
            Strategy::Upsampling => "Upsampling",
            Strategy::Smote => "SMOTE",
            Strategy::Margin => "Margin based",
            Strategy::Entropy => "Entropy based",
        }
    }

    /// Whether the strategy draws on an unlabeled candidate pool.
    pub fn needs_pool(&self) -> bool {
        matches!(
            self,
            Strategy::WithinAlePool
                | Strategy::CrossAlePool
                | Strategy::Confidence
                | Strategy::Qbc
                | Strategy::Margin
                | Strategy::Entropy
        )
    }

    /// Whether the strategy needs a labeling oracle for new points.
    pub fn needs_labeler(&self) -> bool {
        matches!(
            self,
            Strategy::WithinAle | Strategy::CrossAle | Strategy::Uniform
        )
    }
}

/// Experiment configuration shared by all strategies of one run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// AutoML configuration (seeds are derived per purpose from `seed`).
    pub automl: AutoMlConfig,
    /// Feedback budget: points added to the training set (280 in the
    /// paper's Table 1).
    pub n_feedback_points: usize,
    /// Independent AutoML runs for Cross-ALE (10 in the paper).
    pub n_cross_runs: usize,
    /// ALE algorithm parameters (mode is overridden per strategy).
    pub ale: AleFeedback,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            automl: AutoMlConfig::default(),
            n_feedback_points: 280,
            n_cross_runs: 10,
            ale: AleFeedback::default(),
            seed: 0,
        }
    }
}

/// Result of one strategy run.
pub struct StrategyOutcome {
    /// The strategy.
    pub strategy: Strategy,
    /// Balanced accuracy per test set (paired across strategies).
    pub scores: Vec<f64>,
    /// Rows actually added to the training set.
    pub n_points_added: usize,
    /// The interpretable feedback artifact (ALE strategies only).
    pub feedback: Option<Feedback>,
    /// The refit AutoML model (for downstream inspection).
    pub model: FittedAutoMl,
}

/// Typed replacement for "checked above" unwraps on the labeler path: a
/// capability hole surfaces as [`CoreError::MissingCapability`] even if a
/// future strategy forgets to update [`Strategy::needs_labeler`].
fn require_labeler(labeler: Option<&dyn Labeler>, strategy: Strategy) -> Result<&dyn Labeler> {
    labeler.ok_or_else(|| {
        CoreError::MissingCapability(format!("{} needs a labeling oracle", strategy.name()))
    })
}

/// Typed replacement for "checked above" unwraps on the pool path.
fn require_pool(pool: Option<&Dataset>, strategy: Strategy) -> Result<&Dataset> {
    pool.ok_or_else(|| {
        CoreError::MissingCapability(format!("{} needs a candidate pool", strategy.name()))
    })
}

/// Fault-injection site + guard for the oracle-labeling path. The
/// `nan_labels` fault (see `aml-faults`) poisons every other suggested
/// row with a NaN; fault or not, rows containing non-finite values are
/// dropped — and counted — rather than handed to the oracle, so a
/// poisoned round degrades to fewer points instead of failing outright
/// (`Dataset::from_rows` rejects non-finite values, which would abort
/// the whole round).
fn sanitize_oracle_rows(strategy: Strategy, mut rows: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    if aml_faults::label_rows_poisoned() {
        for row in rows.iter_mut().step_by(2) {
            if let Some(v) = row.first_mut() {
                *v = f64::NAN;
            }
        }
    }
    drop_nonfinite_rows(strategy, rows)
}

/// Drop rows with any non-finite value, counting what was dropped under
/// `core.nonfinite_rows_dropped` so degraded rounds are observable.
fn drop_nonfinite_rows(strategy: Strategy, mut rows: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let before = rows.len();
    rows.retain(|r| r.iter().all(|v| v.is_finite()));
    let dropped = (before - rows.len()) as u64;
    if dropped > 0 {
        aml_telemetry::counter_add_labeled("core.nonfinite_rows_dropped", strategy.name(), dropped);
    }
    rows
}

fn derive_seed(master: u64, salt: u64) -> u64 {
    let mut z = master ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fit_automl(cfg: &ExperimentConfig, train: &Dataset, salt: u64) -> Result<FittedAutoMl> {
    let mut ac = cfg.automl.clone();
    ac.seed = derive_seed(cfg.seed, salt);
    Ok(AutoMl::new(ac).fit(train)?)
}

/// Run one strategy end to end. `pool` rows are treated as unlabeled until
/// selected (their labels are then revealed — the standard active-learning
/// evaluation protocol). `test_sets` must all share the training schema.
pub fn run_strategy(
    strategy: Strategy,
    cfg: &ExperimentConfig,
    train: &Dataset,
    pool: Option<&Dataset>,
    labeler: Option<&dyn Labeler>,
    test_sets: &[Dataset],
) -> Result<StrategyOutcome> {
    if test_sets.is_empty() {
        return Err(CoreError::InvalidParameter(
            "need at least one test set".into(),
        ));
    }
    if strategy.needs_pool() {
        require_pool(pool, strategy)?;
    }
    if strategy.needs_labeler() {
        require_labeler(labeler, strategy)?;
    }

    let _run_span = aml_telemetry::span!("core.strategy.run", strategy.name());
    aml_telemetry::serve::set_phase(strategy.name());
    let mut augmented = train.clone();
    let mut feedback = None;
    let n_before = augmented.n_rows();

    {
        let _augment = aml_telemetry::span!("core.strategy.augment", strategy.name());
        match strategy {
            Strategy::NoFeedback => {}
            Strategy::WithinAle
            | Strategy::CrossAle
            | Strategy::WithinAlePool
            | Strategy::CrossAlePool => {
                let mode = match strategy {
                    Strategy::WithinAle | Strategy::WithinAlePool => AleMode::Within,
                    _ => AleMode::Cross,
                };
                let n_runs = if mode == AleMode::Cross {
                    cfg.n_cross_runs.max(2)
                } else {
                    1
                };
                let runs: Vec<FittedAutoMl> = {
                    let _committee =
                        aml_telemetry::span!("core.strategy.committee", strategy.name());
                    // Committee members are independent AutoML runs; the
                    // handoff marks each one a parallelizable fan-out unit
                    // in the trace tree, so the critical-path analyzer
                    // reports the committee's Amdahl speedup ceiling even
                    // though this loop currently runs them sequentially.
                    let ctx = aml_telemetry::TraceContext::current();
                    (0..n_runs)
                        .map(|r| {
                            let _handoff = ctx.attach(r as u64);
                            let _member = aml_telemetry::span!("core.strategy.member");
                            fit_automl(cfg, train, 100 + r as u64)
                        })
                        .collect::<Result<_>>()?
                };
                let ale = AleFeedback {
                    mode,
                    ..cfg.ale.clone()
                };
                let (analysis, fb) = {
                    let _suggest = aml_telemetry::span!("core.strategy.suggest", strategy.name());
                    ale.feedback(&runs, train)?
                };
                feedback = Some(fb);

                match strategy {
                    Strategy::WithinAle | Strategy::CrossAle => {
                        let rows = ale.suggest_points(
                            &analysis,
                            train,
                            cfg.n_feedback_points,
                            derive_seed(cfg.seed, 7),
                        )?;
                        let rows = sanitize_oracle_rows(strategy, rows);
                        aml_telemetry::counter_add_labeled(
                            "core.labeler.queries",
                            strategy.name(),
                            rows.len() as u64,
                        );
                        if !rows.is_empty() {
                            let labelled = require_labeler(labeler, strategy)?.label_rows(&rows)?;
                            augmented.extend(&labelled)?;
                        }
                    }
                    _ => {
                        let pool = require_pool(pool, strategy)?;
                        let picked =
                            ale.suggest_from_pool(&analysis, pool, cfg.n_feedback_points)?;
                        let subset = pool.subset(&picked)?;
                        augmented.extend(&subset)?;
                    }
                }
            }
            Strategy::Uniform => {
                let rows = uniform_sample(train, cfg.n_feedback_points, derive_seed(cfg.seed, 8))?;
                let rows = sanitize_oracle_rows(strategy, rows);
                aml_telemetry::counter_add_labeled(
                    "core.labeler.queries",
                    strategy.name(),
                    rows.len() as u64,
                );
                if !rows.is_empty() {
                    let labelled = require_labeler(labeler, strategy)?.label_rows(&rows)?;
                    augmented.extend(&labelled)?;
                }
            }
            Strategy::Confidence => {
                let run = fit_automl(cfg, train, 200)?;
                let pool = require_pool(pool, strategy)?;
                let picked = confidence_select(run.ensemble(), pool, cfg.n_feedback_points)?;
                augmented.extend(&pool.subset(&picked)?)?;
            }
            Strategy::Qbc => {
                let run = fit_automl(cfg, train, 300)?;
                let pool = require_pool(pool, strategy)?;
                let picked = qbc_select(run.ensemble(), pool, cfg.n_feedback_points)?;
                augmented.extend(&pool.subset(&picked)?)?;
            }
            Strategy::Upsampling => {
                augmented = random_oversample(train, derive_seed(cfg.seed, 9))?;
            }
            Strategy::Smote => {
                augmented = smote(train, 5, derive_seed(cfg.seed, 10))?;
            }
            Strategy::Margin => {
                let run = fit_automl(cfg, train, 400)?;
                let pool = require_pool(pool, strategy)?;
                let picked = margin_select(run.ensemble(), pool, cfg.n_feedback_points)?;
                augmented.extend(&pool.subset(&picked)?)?;
            }
            Strategy::Entropy => {
                let run = fit_automl(cfg, train, 500)?;
                let pool = require_pool(pool, strategy)?;
                let picked = entropy_select(run.ensemble(), pool, cfg.n_feedback_points)?;
                augmented.extend(&pool.subset(&picked)?)?;
            }
        }
    }

    let n_points_added = augmented.n_rows() - n_before;

    // Refit with the SAME derived seed for every strategy: differences in
    // the final model come from the data, not the search's RNG.
    let model = {
        let _refit = aml_telemetry::span!("core.strategy.refit", strategy.name());
        fit_automl(cfg, &augmented, 0xF17)?
    };

    let scores = {
        let _score = aml_telemetry::span!("core.strategy.score", strategy.name());
        test_sets
            .iter()
            .map(|ts| {
                let preds = model.predict(ts)?;
                Ok(balanced_accuracy(ts.labels(), &preds, ts.n_classes())?)
            })
            .collect::<Result<Vec<f64>>>()?
    };

    // Ledger: the quality plane's per-round probes (train/eval dataset
    // profiles, model diagnostics) plus one round_completed summarizing
    // this strategy application — all stamped with the SAME round
    // number. The round counter is untouched when the ledger is
    // disarmed, so arming telemetry never changes round numbering.
    if aml_telemetry::ledger::active() {
        let round = aml_telemetry::ledger::next_round();
        let acc_mean = scores.iter().sum::<f64>() / scores.len() as f64;
        let acc_min = scores.iter().copied().fold(f64::INFINITY, f64::min);
        let acc_max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (regions, ale_std_mean, ale_std_max) = match &feedback {
            Some(fb) => {
                let regions = match &fb.suggestion {
                    Suggestion::Regions(rs) => {
                        rs.iter().map(|r| r.intervals.len()).sum::<usize>() as u64
                    }
                    _ => 0,
                };
                let stds: Vec<f64> = fb
                    .explanations
                    .iter()
                    .flat_map(|b| b.std.iter().copied())
                    .collect();
                if stds.is_empty() {
                    (regions, 0.0, 0.0)
                } else {
                    (
                        regions,
                        stds.iter().sum::<f64>() / stds.len() as f64,
                        stds.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    )
                }
            }
            None => (0, 0.0, 0.0),
        };
        if let Some(event) = crate::quality::dataset_profile_event(round, "train", &[&augmented])? {
            aml_telemetry::ledger::emit(&event);
        }
        let eval_refs: Vec<&Dataset> = test_sets.iter().collect();
        if let Some(event) = crate::quality::dataset_profile_event(round, "eval", &eval_refs)? {
            aml_telemetry::ledger::emit(&event);
        }
        // The ALE ±σ band is 2σ wide; its mean width per round is the
        // quality plane's interpretability-uncertainty trend.
        if let Some(event) = crate::quality::model_diagnostics_event(
            round,
            strategy.name(),
            &model,
            test_sets,
            2.0 * ale_std_mean,
        )? {
            aml_telemetry::ledger::emit(&event);
        }
        aml_telemetry::ledger::emit(&aml_telemetry::LedgerEvent::RoundCompleted {
            round,
            strategy: strategy.name().to_string(),
            acc_mean,
            acc_min,
            acc_max,
            points_added: n_points_added as u64,
            regions,
            ale_std_mean,
            ale_std_max,
        });
    }
    aml_telemetry::serve::note_round_done();

    Ok(StrategyOutcome {
        strategy,
        scores,
        n_points_added,
        feedback,
        model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::{split::split_into_k, synth};

    /// Noise-free XOR oracle.
    fn xor_labeler() -> impl Labeler {
        |rows: &[Vec<f64>]| -> Result<Dataset> {
            let labels: Vec<usize> = rows
                .iter()
                .map(|r| usize::from((r[0] > 0.5) != (r[1] > 0.5)))
                .collect();
            Ok(Dataset::from_rows(rows, &labels, 2)?)
        }
    }

    fn quick_cfg(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            automl: AutoMlConfig {
                n_candidates: 6,
                ensemble_rounds: 4,
                ..Default::default()
            },
            n_feedback_points: 40,
            n_cross_runs: 2,
            seed,
            ..Default::default()
        }
    }

    fn setup() -> (Dataset, Dataset, Vec<Dataset>) {
        let train = synth::noisy_xor(150, 0.05, 1).unwrap();
        let pool = synth::noisy_xor(300, 0.05, 2).unwrap();
        let test = synth::noisy_xor(300, 0.0, 3).unwrap();
        let test_sets = split_into_k(&test, 4, 4).unwrap();
        (train, pool, test_sets)
    }

    #[test]
    fn every_strategy_runs_and_scores() {
        let (train, pool, tests) = setup();
        let labeler = xor_labeler();
        let cfg = quick_cfg(5);
        for strategy in Strategy::ALL {
            let out = run_strategy(strategy, &cfg, &train, Some(&pool), Some(&labeler), &tests)
                .unwrap_or_else(|e| panic!("{} failed: {e}", strategy.name()));
            assert_eq!(out.scores.len(), 4);
            for s in &out.scores {
                assert!((0.0..=1.0).contains(s), "{}: score {s}", strategy.name());
            }
        }
    }

    #[test]
    fn feedback_strategies_actually_add_points() {
        let (train, pool, tests) = setup();
        let labeler = xor_labeler();
        let cfg = quick_cfg(6);
        let within = run_strategy(
            Strategy::WithinAle,
            &cfg,
            &train,
            None,
            Some(&labeler),
            &tests,
        )
        .unwrap();
        assert_eq!(within.n_points_added, 40);
        assert!(within.feedback.is_some());

        let none = run_strategy(Strategy::NoFeedback, &cfg, &train, None, None, &tests).unwrap();
        assert_eq!(none.n_points_added, 0);

        let qbc = run_strategy(Strategy::Qbc, &cfg, &train, Some(&pool), None, &tests).unwrap();
        assert_eq!(qbc.n_points_added, 40);
    }

    #[test]
    fn pool_variants_may_add_fewer_points() {
        // The pool may not cover the suggested subspace with enough points
        // — Table 1 shows exactly this (180 and 91 of 280).
        let (train, pool, tests) = setup();
        let cfg = quick_cfg(7);
        let out = run_strategy(
            Strategy::WithinAlePool,
            &cfg,
            &train,
            Some(&pool),
            None,
            &tests,
        )
        .unwrap();
        assert!(out.n_points_added <= 40);
        assert!(out.n_points_added > 0);
    }

    #[test]
    fn missing_capabilities_are_reported() {
        let (train, _pool, tests) = setup();
        let cfg = quick_cfg(8);
        assert!(matches!(
            run_strategy(Strategy::Confidence, &cfg, &train, None, None, &tests),
            Err(CoreError::MissingCapability(_))
        ));
        assert!(matches!(
            run_strategy(Strategy::Uniform, &cfg, &train, None, None, &tests),
            Err(CoreError::MissingCapability(_))
        ));
    }

    #[test]
    fn upsampling_balances_without_oracle_or_pool() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        // 90/10 imbalance on a separable problem.
        for i in 0..90 {
            rows.push(vec![i as f64 * 0.01, 0.0]);
            labels.push(0usize);
        }
        for i in 0..10 {
            rows.push(vec![5.0 + i as f64 * 0.01, 1.0]);
            labels.push(1usize);
        }
        let train = Dataset::from_rows(&rows, &labels, 2).unwrap();
        let tests = vec![train.clone()];
        let cfg = quick_cfg(9);
        let out = run_strategy(Strategy::Upsampling, &cfg, &train, None, None, &tests).unwrap();
        assert_eq!(out.n_points_added, 80);
    }

    #[test]
    fn nonfinite_suggested_rows_are_dropped_not_labeled() {
        // Without a fault plan installed this is a pure filter: rows
        // with NaN/inf never reach the oracle (the `nan_labels` fault's
        // end-to-end path is exercised by the bench fault matrix).
        let rows = vec![
            vec![0.1, 0.2],
            vec![f64::NAN, 0.3],
            vec![0.4, f64::INFINITY],
            vec![0.5, 0.6],
        ];
        let clean = drop_nonfinite_rows(Strategy::Uniform, rows);
        assert_eq!(clean, vec![vec![0.1, 0.2], vec![0.5, 0.6]]);
        // All-finite input passes through untouched (and uncounted).
        let fine = vec![vec![1.0, 2.0]];
        assert_eq!(drop_nonfinite_rows(Strategy::Uniform, fine.clone()), fine);
    }

    #[test]
    fn ale_feedback_helps_on_xor_with_sparse_training() {
        // Tiny, imbalanced-coverage training set; ALE feedback supplies
        // oracle-labelled points in confusing regions and should not hurt.
        let (train, _pool, tests) = setup();
        let labeler = xor_labeler();
        let cfg = quick_cfg(10);
        let base = run_strategy(Strategy::NoFeedback, &cfg, &train, None, None, &tests).unwrap();
        let within = run_strategy(
            Strategy::WithinAle,
            &cfg,
            &train,
            None,
            Some(&labeler),
            &tests,
        )
        .unwrap();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            mean(&within.scores) >= mean(&base.scores) - 0.05,
            "feedback must not collapse accuracy: {} vs {}",
            mean(&within.scores),
            mean(&base.scores)
        );
    }
}
