//! Additional uncertainty-sampling active-learning baselines: smallest
//! margin and predictive entropy.
//!
//! The paper's §6 surveys the active-learning family ("uncertainty sampling
//! \[32\]" et al.); least-confidence ([`crate::confidence`]) is the variant
//! its evaluation uses, and these two complete the classic trio — useful
//! for the extended baseline comparisons in the ablation benches.

use crate::{CoreError, Result};
use aml_dataset::Dataset;
use aml_models::Classifier;

/// Margin score: `p(top1) − p(top2)`, *smaller = more uncertain*.
pub fn margin(model: &dyn Classifier, row: &[f64]) -> Result<f64> {
    let p = model.predict_proba_row(row)?;
    if p.len() < 2 {
        return Err(CoreError::InvalidParameter(
            "margin sampling needs >= 2 classes".into(),
        ));
    }
    let (mut top1, mut top2) = (f64::MIN, f64::MIN);
    for &v in &p {
        if v > top1 {
            top2 = top1;
            top1 = v;
        } else if v > top2 {
            top2 = v;
        }
    }
    Ok(top1 - top2)
}

/// Predictive entropy `−Σ p ln p` (natural log), *larger = more uncertain*.
pub fn predictive_entropy(model: &dyn Classifier, row: &[f64]) -> Result<f64> {
    let p = model.predict_proba_row(row)?;
    Ok(p.iter().filter(|&&v| v > 0.0).map(|&v| -v * v.ln()).sum())
}

/// Select the `n` smallest-margin pool rows (ties → lower index).
pub fn margin_select(model: &dyn Classifier, pool: &Dataset, n: usize) -> Result<Vec<usize>> {
    if pool.is_empty() {
        return Err(CoreError::MissingCapability(
            "margin sampling needs a candidate pool".into(),
        ));
    }
    let mut scored: Vec<(f64, usize)> = (0..pool.n_rows())
        .map(|i| Ok((margin(model, pool.row(i))?, i)))
        .collect::<Result<_>>()?;
    scored.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("margins are finite")
            .then(a.1.cmp(&b.1))
    });
    Ok(scored.into_iter().take(n).map(|(_, i)| i).collect())
}

/// Select the `n` highest-entropy pool rows (ties → lower index).
pub fn entropy_select(model: &dyn Classifier, pool: &Dataset, n: usize) -> Result<Vec<usize>> {
    if pool.is_empty() {
        return Err(CoreError::MissingCapability(
            "entropy sampling needs a candidate pool".into(),
        ));
    }
    let mut scored: Vec<(f64, usize)> = (0..pool.n_rows())
        .map(|i| Ok((predictive_entropy(model, pool.row(i))?, i)))
        .collect::<Result<_>>()?;
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("entropies are finite")
            .then(a.1.cmp(&b.1))
    });
    Ok(scored.into_iter().take(n).map(|(_, i)| i).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// p(class 1) = clamp(x, 0, 1).
    struct LinearProb;
    impl Classifier for LinearProb {
        fn n_classes(&self) -> usize {
            2
        }
        fn n_features(&self) -> usize {
            1
        }
        fn predict_proba_row(&self, row: &[f64]) -> aml_models::Result<Vec<f64>> {
            let p = row[0].clamp(0.0, 1.0);
            Ok(vec![1.0 - p, p])
        }
        fn name(&self) -> &'static str {
            "linear_prob"
        }
    }

    fn pool(values: &[f64]) -> Dataset {
        let rows: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        Dataset::from_rows(&rows, &vec![0usize; values.len()], 2).unwrap()
    }

    #[test]
    fn margin_is_zero_at_the_boundary() {
        assert!(margin(&LinearProb, &[0.5]).unwrap().abs() < 1e-12);
        assert!((margin(&LinearProb, &[1.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_peaks_at_the_boundary() {
        let mid = predictive_entropy(&LinearProb, &[0.5]).unwrap();
        let edge = predictive_entropy(&LinearProb, &[0.99]).unwrap();
        assert!((mid - std::f64::consts::LN_2).abs() < 1e-9, "H(0.5) = ln 2");
        assert!(edge < mid);
    }

    #[test]
    fn both_selectors_prefer_boundary_points() {
        let p = pool(&[0.1, 0.48, 0.9, 0.52, 0.02]);
        assert_eq!(margin_select(&LinearProb, &p, 2).unwrap(), vec![1, 3]);
        let e = entropy_select(&LinearProb, &p, 2).unwrap();
        assert!(e.contains(&1) && e.contains(&3));
    }

    #[test]
    fn in_binary_problems_margin_and_entropy_rank_identically() {
        // Binary case: all three uncertainty measures are monotone in
        // |p − 0.5|, so the selected sets agree (values chosen with
        // distinct |p − 0.5| so floating-point summation order can't flip
        // near-ties).
        let p = pool(&[0.3, 0.45, 0.72, 0.55, 0.05, 0.95]);
        let m: std::collections::BTreeSet<usize> = margin_select(&LinearProb, &p, 3)
            .unwrap()
            .into_iter()
            .collect();
        let e: std::collections::BTreeSet<usize> = entropy_select(&LinearProb, &p, 3)
            .unwrap()
            .into_iter()
            .collect();
        assert_eq!(m, e);
    }

    #[test]
    fn empty_pool_rejected() {
        let empty = pool(&[0.5]).empty_like();
        assert!(margin_select(&LinearProb, &empty, 1).is_err());
        assert!(entropy_select(&LinearProb, &empty, 1).is_err());
    }
}
