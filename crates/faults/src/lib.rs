//! # aml-faults
//!
//! Deterministic fault injection for the AutoML loop — the test oracle
//! behind trial sandboxing, checkpoint/resume, and sink-failure
//! accounting (DESIGN.md §7).
//!
//! A [`FaultPlan`] names *sites* and *indices*:
//!
//! ```text
//! trial_panic@3,trial_slow@7:500ms,trial_nan@2,sink_fail@2,nan_labels@1
//! ```
//!
//! * `trial_panic@N` — trial id `N` panics inside its sandbox.
//! * `trial_slow@N:DURms` — trial id `N` sleeps `DUR` milliseconds before
//!   training (drives the `--max-trial-time` timeout path).
//! * `trial_nan@N` — trial id `N` reports a NaN validation score (drives
//!   the non-finite-score guard).
//! * `sink_fail@N` — the `N`-th ledger event write (0-based, counted
//!   while a plan is installed) fails, exercising the
//!   `telemetry.events_dropped` accounting.
//! * `nan_labels@N` — the `N`-th labeling call (0-based) has its
//!   suggested rows poisoned with NaN feature values, exercising the
//!   experiment loop's non-finite-row filter.
//! * `worker_crash@N` — the `N`-th worker process launched by the run
//!   server (0-based) aborts after checkpointing its first fresh round,
//!   exercising the server's retry-with-backoff and resume paths. Pure
//!   lookup ([`FaultPlan::worker_crash_at`]); the server keeps its own
//!   launch counter.
//! * `submit_burst@N` — the `N`-th job submission (0-based) is rejected
//!   with `429 Retry-After` as if the queue were full, exercising
//!   client-visible backpressure deterministically. Pure lookup
//!   ([`FaultPlan::submit_burst_at`]).
//!
//! Because every site is keyed by a deterministic index (trial ids are
//! assigned before any parallel work; labeling calls are sequential),
//! the injected faults — and therefore the resulting `trial_failed`
//! ledger events — are reproducible run over run.
//!
//! ## Off-is-free
//!
//! All hooks gate on one relaxed [`AtomicBool`] load. Without
//! [`install`], no plan is consulted, no counters tick, and the hooks
//! compile down to a load-and-branch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// What an injected trial-site fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialFault {
    /// Panic inside the trial sandbox (`reason: panic`).
    Panic,
    /// Sleep this long before training (`reason: timeout` when a
    /// `--max-trial-time` budget is set and exceeded).
    Slow(Duration),
    /// Report a NaN validation score (`reason: nonfinite`).
    NanScore,
}

/// A parsed, deterministic fault plan. See the crate docs for the spec
/// grammar.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Trial ids that panic.
    pub trial_panic: Vec<u64>,
    /// Trial ids that sleep, with their delays.
    pub trial_slow: Vec<(u64, Duration)>,
    /// Trial ids that report a NaN score.
    pub trial_nan: Vec<u64>,
    /// 0-based ledger-write indices that fail.
    pub sink_fail: Vec<u64>,
    /// 0-based labeling-call indices whose rows are NaN-poisoned.
    pub nan_labels: Vec<u64>,
    /// 0-based run-server worker-launch indices that abort after their
    /// first fresh round is checkpointed.
    pub worker_crash: Vec<u64>,
    /// 0-based run-server submission indices rejected with an injected
    /// 429 backpressure response.
    pub submit_burst: Vec<u64>,
}

/// A malformed `--fault-plan` entry: the offending token plus what was
/// wrong with it. `Display` renders both, so error surfaces that only
/// show a string still name the token that failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// The comma-separated plan entry that failed to parse (the whole
    /// spec when it was empty).
    pub token: String,
    /// What was wrong with the token.
    pub message: String,
}

impl FaultParseError {
    fn new(token: impl Into<String>, message: impl Into<String>) -> Self {
        FaultParseError {
            token: token.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault-plan entry '{}': {}", self.token, self.message)
    }
}

impl std::error::Error for FaultParseError {}

impl FaultPlan {
    /// Parse a comma-separated plan spec such as
    /// `trial_panic@3,trial_slow@7:500ms,sink_fail@2,nan_labels@1`.
    /// Empty specs and empty items are rejected with a typed error that
    /// names the offending token.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultParseError> {
        let mut plan = FaultPlan::default();
        if spec.trim().is_empty() {
            return Err(FaultParseError::new(spec, "empty fault plan"));
        }
        for item in spec.split(',') {
            let item = item.trim();
            let (site, arg) = item
                .split_once('@')
                .ok_or_else(|| FaultParseError::new(item, "expected SITE@INDEX"))?;
            match site {
                "trial_panic" => plan.trial_panic.push(parse_index(item, arg)?),
                "trial_nan" => plan.trial_nan.push(parse_index(item, arg)?),
                "sink_fail" => plan.sink_fail.push(parse_index(item, arg)?),
                "nan_labels" => plan.nan_labels.push(parse_index(item, arg)?),
                "worker_crash" => plan.worker_crash.push(parse_index(item, arg)?),
                "submit_burst" => plan.submit_burst.push(parse_index(item, arg)?),
                "trial_slow" => {
                    let (idx, dur) = arg.split_once(':').ok_or_else(|| {
                        FaultParseError::new(item, "trial_slow expects trial_slow@N:DURms")
                    })?;
                    plan.trial_slow
                        .push((parse_index(item, idx)?, parse_duration(item, dur)?));
                }
                other => {
                    return Err(FaultParseError::new(
                        item,
                        format!(
                            "unknown fault site '{other}' (expected trial_panic, trial_slow, \
                             trial_nan, sink_fail, nan_labels, worker_crash, or submit_burst)"
                        ),
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self == &FaultPlan::default()
    }

    /// Pure lookup: does the plan crash the `launch`-th worker process
    /// (0-based)? The run server keeps its own launch counter, so this
    /// takes the index instead of ticking a global.
    pub fn worker_crash_at(&self, launch: u64) -> bool {
        self.worker_crash.contains(&launch)
    }

    /// Pure lookup: does the plan reject the `submission`-th job
    /// submission (0-based) with injected backpressure?
    pub fn submit_burst_at(&self, submission: u64) -> bool {
        self.submit_burst.contains(&submission)
    }
}

fn parse_index(item: &str, arg: &str) -> Result<u64, FaultParseError> {
    arg.parse()
        .map_err(|_| FaultParseError::new(item, "index must be a non-negative integer"))
}

fn parse_duration(item: &str, arg: &str) -> Result<Duration, FaultParseError> {
    let ms = arg
        .strip_suffix("ms")
        .ok_or_else(|| FaultParseError::new(item, "duration must end in 'ms'"))?;
    ms.parse::<u64>()
        .map(Duration::from_millis)
        .map_err(|_| FaultParseError::new(item, "duration must be an integer millisecond count"))
}

/// Hot-path gate: true iff a plan is installed.
static FAULTS_ACTIVE: AtomicBool = AtomicBool::new(false);
/// The installed plan (None when inactive).
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
/// 0-based index of the next ledger event write (counts only while a
/// plan is installed).
static SINK_WRITES: AtomicU64 = AtomicU64::new(0);
/// 0-based index of the next labeling call.
static LABEL_CALLS: AtomicU64 = AtomicU64::new(0);

/// Whether a fault plan is installed (one relaxed atomic load).
#[inline]
pub fn active() -> bool {
    FAULTS_ACTIVE.load(Ordering::Relaxed)
}

/// Install `plan` process-wide and reset the site counters. Replaces any
/// previously installed plan.
pub fn install(plan: FaultPlan) {
    let mut slot = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    SINK_WRITES.store(0, Ordering::Relaxed);
    LABEL_CALLS.store(0, Ordering::Relaxed);
    *slot = Some(plan);
    FAULTS_ACTIVE.store(true, Ordering::Release);
}

/// Remove the installed plan (tests; also safe to call when none is
/// installed).
pub fn clear() {
    let mut slot = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    FAULTS_ACTIVE.store(false, Ordering::Release);
    *slot = None;
}

fn with_plan<T>(f: impl FnOnce(&FaultPlan) -> T) -> Option<T> {
    let slot = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    slot.as_ref().map(f)
}

/// Site hook: the fault (if any) scheduled for trial `trial`. Checked by
/// the search sandbox before training. Precedence when a trial appears
/// at several sites: panic, then slow, then NaN.
#[inline]
pub fn trial_fault(trial: u64) -> Option<TrialFault> {
    if !active() {
        return None;
    }
    with_plan(|p| {
        if p.trial_panic.contains(&trial) {
            Some(TrialFault::Panic)
        } else if let Some(&(_, d)) = p.trial_slow.iter().find(|&&(t, _)| t == trial) {
            Some(TrialFault::Slow(d))
        } else if p.trial_nan.contains(&trial) {
            Some(TrialFault::NanScore)
        } else {
            None
        }
    })
    .flatten()
}

/// Site hook: should this ledger event write fail? Ticks the write
/// counter and answers true for scheduled `sink_fail` indices.
#[inline]
pub fn sink_write_fails() -> bool {
    if !active() {
        return false;
    }
    let idx = SINK_WRITES.fetch_add(1, Ordering::Relaxed);
    with_plan(|p| p.sink_fail.contains(&idx)).unwrap_or(false)
}

/// Site hook: should this labeling call's suggested rows be
/// NaN-poisoned? Ticks the label-call counter and answers true for
/// scheduled `nan_labels` indices.
#[inline]
pub fn label_rows_poisoned() -> bool {
    if !active() {
        return false;
    }
    let idx = LABEL_CALLS.fetch_add(1, Ordering::Relaxed);
    with_plan(|p| p.nan_labels.contains(&idx)).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share the process-global plan; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn hold() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn parses_the_full_grammar() {
        let plan = FaultPlan::parse(
            "trial_panic@3,trial_slow@7:500ms,trial_nan@2,sink_fail@2,nan_labels@1,\
             worker_crash@0,submit_burst@4",
        )
        .unwrap();
        assert_eq!(plan.trial_panic, vec![3]);
        assert_eq!(plan.trial_slow, vec![(7, Duration::from_millis(500))]);
        assert_eq!(plan.trial_nan, vec![2]);
        assert_eq!(plan.sink_fail, vec![2]);
        assert_eq!(plan.nan_labels, vec![1]);
        assert_eq!(plan.worker_crash, vec![0]);
        assert_eq!(plan.submit_burst, vec![4]);
        assert!(!plan.is_empty());
        assert!(plan.worker_crash_at(0));
        assert!(!plan.worker_crash_at(1));
        assert!(plan.submit_burst_at(4));
        assert!(!plan.submit_burst_at(0));
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            "",
            "   ",
            "trial_panic",
            "trial_panic@x",
            "trial_slow@3",
            "trial_slow@3:fast",
            "trial_slow@3:500s",
            "bogus@1",
            "trial_panic@1,,sink_fail@0",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_error_names_the_offending_token() {
        let err = FaultPlan::parse("trial_panic@1,bogus@7,sink_fail@0").unwrap_err();
        assert_eq!(err.token, "bogus@7");
        assert!(err.message.contains("unknown fault site 'bogus'"), "{err}");
        let rendered = err.to_string();
        assert!(
            rendered.starts_with("bad fault-plan entry 'bogus@7': "),
            "{rendered}"
        );

        let err = FaultPlan::parse("trial_slow@3:fast").unwrap_err();
        assert_eq!(err.token, "trial_slow@3:fast");
        assert!(err.to_string().contains("duration must end in 'ms'"));

        let err = FaultPlan::parse("trial_panic@x").unwrap_err();
        assert_eq!(err.token, "trial_panic@x");
        assert!(err.to_string().contains("non-negative integer"));

        let err = FaultPlan::parse("  ").unwrap_err();
        assert!(err.to_string().contains("empty fault plan"));
    }

    #[test]
    fn hooks_are_inert_without_a_plan() {
        let _guard = hold();
        clear();
        assert!(!active());
        assert_eq!(trial_fault(3), None);
        assert!(!sink_write_fails());
        assert!(!label_rows_poisoned());
    }

    #[test]
    fn trial_faults_fire_at_their_indices_only() {
        let _guard = hold();
        install(FaultPlan::parse("trial_panic@3,trial_slow@7:500ms,trial_nan@2").unwrap());
        assert_eq!(trial_fault(3), Some(TrialFault::Panic));
        assert_eq!(
            trial_fault(7),
            Some(TrialFault::Slow(Duration::from_millis(500)))
        );
        assert_eq!(trial_fault(2), Some(TrialFault::NanScore));
        assert_eq!(trial_fault(0), None);
        assert_eq!(trial_fault(4), None);
        clear();
    }

    #[test]
    fn sink_and_label_counters_tick_per_call() {
        let _guard = hold();
        install(FaultPlan::parse("sink_fail@2,nan_labels@1").unwrap());
        assert!(!sink_write_fails()); // write 0
        assert!(!sink_write_fails()); // write 1
        assert!(sink_write_fails()); // write 2 — fails
        assert!(!sink_write_fails()); // write 3
        assert!(!label_rows_poisoned()); // call 0
        assert!(label_rows_poisoned()); // call 1 — poisoned
        assert!(!label_rows_poisoned()); // call 2
        clear();
    }

    #[test]
    fn install_resets_counters() {
        let _guard = hold();
        install(FaultPlan::parse("sink_fail@0").unwrap());
        assert!(sink_write_fails());
        install(FaultPlan::parse("sink_fail@0").unwrap());
        assert!(sink_write_fails(), "counter must restart at 0 on install");
        clear();
    }
}
