//! Property tests holding the sampler to its declared search space: for
//! every model family, every sampled configuration's typed params must
//! respect the bounds, integer-ness, log-scale positivity, and category
//! choices that the once-per-run `search_space` ledger event advertises.
//! This is the contract that makes the coverage and importance analytics
//! trustworthy — a sample outside its declared bin range would silently
//! clamp into the edge bins.

use aml_automl::{CandidateConfig, ModelFamily};
use aml_propcheck::prelude::*;
use aml_telemetry::ParamValue;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sampled_params_respect_the_declared_dimensions(seed in 0u64..10_000) {
        for &family in ModelFamily::ALL.iter() {
            let config = CandidateConfig::sample(family, seed);
            let dims = family.dims();
            let params = config.params();
            prop_assert_eq!(params.len(), dims.len());
            for ((name, value), dim) in params.iter().zip(dims.iter()) {
                prop_assert_eq!(name, &dim.name);
                match value {
                    ParamValue::Int(v) => {
                        prop_assert_eq!(dim.kind.as_str(), "int");
                        prop_assert!(
                            (dim.lo as i64..=dim.hi as i64).contains(v),
                            "{family:?}.{name} = {v} outside [{}, {}]",
                            dim.lo,
                            dim.hi
                        );
                    }
                    ParamValue::Float(v) => {
                        prop_assert_eq!(dim.kind.as_str(), "float");
                        prop_assert!(v.is_finite(), "{family:?}.{name} non-finite");
                        // Log-scale dims must stay strictly positive or
                        // the log-space binning would degenerate.
                        if dim.scale == "log10" {
                            prop_assert!(*v > 0.0, "{family:?}.{name} = {v} <= 0 on log dim");
                        }
                        prop_assert!(
                            (dim.lo..=dim.hi).contains(v),
                            "{family:?}.{name} = {v} outside [{}, {}]",
                            dim.lo,
                            dim.hi
                        );
                    }
                    ParamValue::Cat(tag) => {
                        prop_assert_eq!(dim.kind.as_str(), "cat");
                        prop_assert!(
                            dim.choices.iter().any(|c| c == tag),
                            "{family:?}.{name} = '{tag}' not in {:?}",
                            dim.choices
                        );
                    }
                }
            }
        }
    }
}
