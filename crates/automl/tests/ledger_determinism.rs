//! Ledger determinism: the search emits the same multiset of ledger
//! lines whether it trains candidates on 1 thread or 4, so sorting the
//! lines yields byte-identical content. This is the contract that makes
//! the ledger both diffable across machines and a correctness oracle
//! for the parallel training path (`aml_telemetry::ledger` module docs).
//!
//! An integration test (own process) because it installs a global
//! telemetry sink; the library tests of the involved crates keep their
//! global state behind their own locks.

use aml_automl::ModelFamily;
use aml_dataset::{split::train_test_split, synth, Dataset};
use aml_telemetry::sink::{self, Sink, SpanEvent};
use aml_telemetry::{LedgerEvent, Snapshot};
use std::sync::Mutex;

/// Captures ledger lines in memory.
struct CollectingLedger {
    lines: Mutex<Vec<String>>,
}

impl Sink for CollectingLedger {
    fn on_span_close(&self, _event: &SpanEvent) {}
    fn on_ledger_event(&self, event: &LedgerEvent) {
        self.lines.lock().unwrap().push(event.to_json_line());
    }
    fn wants_ledger(&self) -> bool {
        true
    }
    fn finish(&self, _snapshot: &Snapshot) -> std::io::Result<()> {
        Ok(())
    }
    fn target(&self) -> String {
        "collector".into()
    }
}

struct Fwd(&'static CollectingLedger);

impl Sink for Fwd {
    fn on_span_close(&self, e: &SpanEvent) {
        self.0.on_span_close(e)
    }
    fn on_ledger_event(&self, e: &LedgerEvent) {
        self.0.on_ledger_event(e)
    }
    fn wants_ledger(&self) -> bool {
        true
    }
    fn finish(&self, s: &Snapshot) -> std::io::Result<()> {
        self.0.finish(s)
    }
    fn target(&self) -> String {
        self.0.target()
    }
}

fn splits() -> (Dataset, Dataset) {
    let ds = synth::two_moons(300, 0.2, 5).unwrap();
    train_test_split(&ds, 0.25, true, 1).unwrap()
}

/// Run a successive-halving search with `parallelism` threads and return
/// the ledger lines it emitted.
fn ledger_lines_of_run(train: &Dataset, val: &Dataset, parallelism: usize) -> Vec<String> {
    let collector = Box::leak(Box::new(CollectingLedger {
        lines: Mutex::new(Vec::new()),
    }));
    sink::install(Box::new(Fwd(collector)));
    run_search_strategy(train, val, parallelism);
    for (target, result) in sink::finish(&Snapshot::default()) {
        assert!(result.is_ok(), "finish({target}) failed");
    }
    std::mem::take(&mut collector.lines.lock().unwrap())
}

fn run_search_strategy(train: &Dataset, val: &Dataset, parallelism: usize) {
    aml_automl::search::run_search(
        aml_automl::SearchStrategy::SuccessiveHalving,
        12,
        &ModelFamily::ALL,
        train,
        val,
        7,
        parallelism,
        &aml_automl::SearchLimits::default(),
    )
    .expect("search succeeds");
}

#[test]
fn ledger_is_identical_across_thread_counts() {
    let (train, val) = splits();

    let mut one = ledger_lines_of_run(&train, &val, 1);
    let mut four = ledger_lines_of_run(&train, &val, 4);

    assert!(
        !one.is_empty(),
        "the search must emit ledger events when a ledger sink is installed"
    );
    assert!(
        one.iter().any(|l| l.contains("\"type\":\"trial_started\"")),
        "expected trial_started lines"
    );
    assert!(
        one.iter()
            .any(|l| l.contains("\"type\":\"trial_finished\"")),
        "expected trial_finished lines"
    );
    // Every trial_started line carries the typed params map.
    assert!(
        one.iter()
            .filter(|l| l.contains("\"type\":\"trial_started\""))
            .all(|l| l.contains("\"params\":{")),
        "trial_started lines must carry typed params"
    );
    // Exactly one search_space line per run (the gate resets when the
    // sinks finish, so both runs of this process get their own).
    for lines in [&one, &four] {
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"type\":\"search_space\""))
                .count(),
            1,
            "expected exactly one search_space line per run"
        );
    }

    // Same multiset of lines: sorting makes the content byte-identical.
    one.sort();
    four.sort();
    assert_eq!(
        one, four,
        "ledger content must not depend on the thread count"
    );
}
