//! Caruana greedy ensemble selection (the algorithm auto-sklearn uses).
//!
//! Starting from an empty bag, repeatedly add — **with replacement** — the
//! candidate whose inclusion maximizes the bag's balanced accuracy on the
//! validation split, for a fixed number of rounds. A model picked `c` times
//! receives weight `c / rounds`. Selection with replacement acts as implicit
//! regularization: strong models accumulate weight instead of forcing weak
//! ones in.

use crate::search::TrainedCandidate;
use crate::{AutoMlError, Result};
use aml_models::metrics::balanced_accuracy;
use aml_models::model::argmax;

/// Result of greedy selection: per-candidate counts and the bag's
/// validation balanced accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionOutcome {
    /// Times each candidate (by leaderboard index) was picked.
    pub counts: Vec<usize>,
    /// Validation balanced accuracy of the final weighted bag.
    pub val_score: f64,
}

/// Run greedy forward selection with replacement for `rounds` rounds.
///
/// `val_labels` are the validation-set labels matching every candidate's
/// cached `val_proba`. `init_top_k` seeds the bag with the first
/// `init_top_k` candidates (one pick each) before the greedy rounds —
/// auto-sklearn's `ensemble_nbest` regularization. This guarantees the
/// final ensemble contains multiple *distinct* members, which the paper's
/// feedback algorithm requires ("a bag of (sufficiently diverse) ML
/// models"); pass 0 for pure greedy selection.
pub fn greedy_ensemble_selection(
    candidates: &[TrainedCandidate],
    val_labels: &[usize],
    n_classes: usize,
    rounds: usize,
    init_top_k: usize,
) -> Result<SelectionOutcome> {
    let _span = aml_telemetry::span!("automl.select.greedy");
    if candidates.is_empty() {
        return Err(AutoMlError::AllCandidatesFailed(
            "empty candidate list".into(),
        ));
    }
    if rounds == 0 {
        return Err(AutoMlError::InvalidConfig(
            "selection rounds must be >= 1".into(),
        ));
    }
    let n_val = val_labels.len();
    for c in candidates {
        if c.val_proba.len() != n_val {
            return Err(AutoMlError::InvalidConfig(format!(
                "candidate has {} validation predictions, expected {n_val}",
                c.val_proba.len()
            )));
        }
    }

    // Running sum of the bag's probability mass per validation row.
    let mut sum: Vec<Vec<f64>> = vec![vec![0.0; n_classes]; n_val];
    let mut counts = vec![0usize; candidates.len()];
    let mut picked = 0usize;
    let mut best_bag_score = 0.0;

    // Seed with the leaderboard's best `init_top_k` candidates.
    for ci in 0..init_top_k.min(candidates.len()) {
        counts[ci] += 1;
        add_proba(&mut sum, &candidates[ci].val_proba);
    }

    for _round in 0..rounds {
        let mut best: Option<(f64, usize)> = None;
        for (ci, cand) in candidates.iter().enumerate() {
            // Score of the bag if `cand` were added.
            let preds: Vec<usize> = (0..n_val)
                .map(|i| {
                    let merged: Vec<f64> = (0..n_classes)
                        .map(|c| sum[i][c] + cand.val_proba[i][c])
                        .collect();
                    argmax(&merged)
                })
                .collect();
            let score = balanced_accuracy(val_labels, &preds, n_classes)?;
            // Strict improvement keeps the earliest (strongest-leaderboard)
            // candidate on ties → deterministic.
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, ci));
            }
        }
        let (score, ci) = best.expect("candidates is non-empty");
        counts[ci] += 1;
        picked += 1;
        add_proba(&mut sum, &candidates[ci].val_proba);
        best_bag_score = score;
    }
    debug_assert_eq!(picked, rounds);

    Ok(SelectionOutcome {
        counts,
        val_score: best_bag_score,
    })
}

/// Accumulate a candidate's per-row class probabilities into the bag sum.
fn add_proba(sum: &mut [Vec<f64>], proba: &[Vec<f64>]) {
    for (row, p) in sum.iter_mut().zip(proba) {
        for (s, v) in row.iter_mut().zip(p) {
            *s += *v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::CandidateConfig;
    use crate::ModelFamily;
    use aml_dataset::synth;
    use aml_models::Classifier;
    use std::sync::Arc;

    /// Build a fake candidate whose validation probabilities are fixed.
    fn fake(val_proba: Vec<Vec<f64>>, train: &aml_dataset::Dataset) -> TrainedCandidate {
        let config = CandidateConfig::sample(ModelFamily::NaiveBayes, 0);
        let model: Arc<dyn Classifier> = config.fit(train).unwrap();
        TrainedCandidate {
            trial: 0,
            config,
            model,
            val_score: 0.0,
            val_proba,
        }
    }

    #[test]
    fn picks_the_perfect_candidate() {
        let train = synth::two_moons(60, 0.2, 1).unwrap();
        let val_labels = vec![0, 1, 0, 1];
        let perfect = fake(
            vec![
                vec![0.9, 0.1],
                vec![0.1, 0.9],
                vec![0.9, 0.1],
                vec![0.1, 0.9],
            ],
            &train,
        );
        let awful = fake(
            vec![
                vec![0.1, 0.9],
                vec![0.9, 0.1],
                vec![0.1, 0.9],
                vec![0.9, 0.1],
            ],
            &train,
        );
        let out = greedy_ensemble_selection(&[awful, perfect], &val_labels, 2, 5, 0).unwrap();
        // Round 1 must pick the perfect candidate (strict improvement over
        // the empty bag); later rounds may tie once the bag is already
        // perfect, but the bag never becomes imperfect.
        assert!(
            out.counts[1] >= 1,
            "perfect candidate never picked: {:?}",
            out.counts
        );
        assert_eq!(out.val_score, 1.0);
    }

    #[test]
    fn complementary_candidates_both_selected() {
        let train = synth::two_moons(60, 0.2, 2).unwrap();
        let val_labels = vec![0, 0, 1, 1];
        // A nails rows 0-1, coin-flips 2-3 slightly wrong; B the reverse.
        let a = fake(
            vec![
                vec![1.0, 0.0],
                vec![1.0, 0.0],
                vec![0.55, 0.45],
                vec![0.55, 0.45],
            ],
            &train,
        );
        let b = fake(
            vec![
                vec![0.45, 0.55],
                vec![0.45, 0.55],
                vec![0.0, 1.0],
                vec![0.0, 1.0],
            ],
            &train,
        );
        let out = greedy_ensemble_selection(&[a, b], &val_labels, 2, 6, 0).unwrap();
        assert!(
            out.counts[0] > 0 && out.counts[1] > 0,
            "counts {:?}",
            out.counts
        );
        assert_eq!(out.val_score, 1.0, "the blend is perfect");
    }

    #[test]
    fn rejects_empty_and_zero_rounds() {
        assert!(greedy_ensemble_selection(&[], &[0], 2, 3, 0).is_err());
        let train = synth::two_moons(60, 0.2, 3).unwrap();
        let c = fake(vec![vec![0.5, 0.5]], &train);
        assert!(greedy_ensemble_selection(&[c], &[0], 2, 0, 0).is_err());
    }

    #[test]
    fn counts_sum_to_rounds() {
        let train = synth::two_moons(60, 0.2, 4).unwrap();
        let val_labels = vec![0, 1];
        let c1 = fake(vec![vec![0.6, 0.4], vec![0.4, 0.6]], &train);
        let c2 = fake(vec![vec![0.7, 0.3], vec![0.6, 0.4]], &train);
        let out = greedy_ensemble_selection(&[c1, c2], &val_labels, 2, 9, 0).unwrap();
        assert_eq!(out.counts.iter().sum::<usize>(), 9);
    }
}
