//! The AutoML search space: model families, hyperparameter sampling, and
//! candidate fitting.
//!
//! Eight model families mirror auto-sklearn's classical-model core. Each
//! family defines (a) a hyperparameter prior to sample configurations from
//! and (b) which scaler its pipeline uses — distance/gradient models get a
//! standardizer, tree models run on raw features.

use crate::Result;
use aml_dataset::Dataset;
use aml_models::adaboost::AdaBoostParams;
use aml_models::forest::ForestParams;
use aml_models::gbdt::GbdtParams;
use aml_models::knn::{KnnParams, KnnWeights};
use aml_models::linear_svm::SvmParams;
use aml_models::logistic::LogRegParams;
use aml_models::naive_bayes::NbParams;
use aml_models::preprocess::ScalerKind;
use aml_models::tree::{Criterion, Splitter, TreeParams};
use aml_models::{
    AdaBoost, Classifier, ExtraTrees, GaussianNaiveBayes, GradientBoosting, KNearestNeighbors,
    LinearSvm, LogisticRegression, Pipeline, RandomForest,
};
use aml_rng::rngs::StdRng;
use aml_rng::{Rng, SeedableRng};
use aml_telemetry::{ParamValue, SpaceDim, SpaceFamily};
use std::sync::Arc;

fn int_dim(name: &str, lo: i64, hi: i64) -> SpaceDim {
    SpaceDim {
        name: name.to_string(),
        kind: "int".to_string(),
        scale: "linear".to_string(),
        lo: lo as f64,
        hi: hi as f64,
        choices: Vec::new(),
    }
}

fn log_dim(name: &str, lo: f64, hi: f64) -> SpaceDim {
    SpaceDim {
        name: name.to_string(),
        kind: "float".to_string(),
        scale: "log10".to_string(),
        lo,
        hi,
        choices: Vec::new(),
    }
}

fn cat_dim(name: &str, choices: &[&str]) -> SpaceDim {
    SpaceDim {
        name: name.to_string(),
        kind: "cat".to_string(),
        scale: "linear".to_string(),
        lo: 0.0,
        hi: 0.0,
        choices: choices.iter().map(|c| c.to_string()).collect(),
    }
}

fn criterion_tag(c: Criterion) -> &'static str {
    match c {
        Criterion::Gini => "gini",
        Criterion::Entropy => "entropy",
    }
}

/// The model families the searcher can draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Single CART tree.
    DecisionTree,
    /// Bagged random forest.
    RandomForest,
    /// Extremely randomized trees.
    ExtraTrees,
    /// Gradient-boosted trees.
    GradientBoosting,
    /// k-nearest neighbours (standardized).
    Knn,
    /// Gaussian naive Bayes.
    NaiveBayes,
    /// Multinomial logistic regression (standardized).
    LogisticRegression,
    /// One-vs-rest linear SVM (standardized).
    LinearSvm,
    /// AdaBoost.SAMME over shallow trees.
    AdaBoost,
}

impl ModelFamily {
    /// All families, in a fixed order (round-robin sampling uses this).
    pub const ALL: [ModelFamily; 9] = [
        ModelFamily::DecisionTree,
        ModelFamily::RandomForest,
        ModelFamily::ExtraTrees,
        ModelFamily::GradientBoosting,
        ModelFamily::Knn,
        ModelFamily::NaiveBayes,
        ModelFamily::LogisticRegression,
        ModelFamily::LinearSvm,
        ModelFamily::AdaBoost,
    ];

    /// The family's declared hyperparameter dimensions, in sampling
    /// order. This is the ground truth behind the once-per-run
    /// `search_space` ledger event and the search-observability
    /// analytics: every bound/scale here matches [`CandidateConfig::sample`]
    /// exactly (a propcheck test holds the two together).
    pub fn dims(&self) -> Vec<SpaceDim> {
        match self {
            ModelFamily::DecisionTree => vec![
                int_dim("max_depth", 2, 16),
                int_dim("min_samples_leaf", 1, 16),
                cat_dim("criterion", &["gini", "entropy"]),
            ],
            ModelFamily::RandomForest => vec![
                int_dim("n_trees", 16, 64),
                int_dim("max_depth", 4, 14),
                int_dim("min_samples_leaf", 1, 8),
                cat_dim("criterion", &["gini", "entropy"]),
            ],
            ModelFamily::ExtraTrees => vec![
                int_dim("n_trees", 16, 64),
                int_dim("max_depth", 4, 14),
                int_dim("min_samples_leaf", 1, 8),
            ],
            ModelFamily::GradientBoosting => vec![
                int_dim("n_rounds", 15, 50),
                cat_dim("learning_rate", &["0.05", "0.1", "0.2"]),
                int_dim("max_depth", 2, 4),
                int_dim("min_samples_leaf", 2, 10),
            ],
            ModelFamily::Knn => vec![
                int_dim("k", 1, 25),
                cat_dim("weights", &["uniform", "distance"]),
            ],
            ModelFamily::NaiveBayes => vec![log_dim("var_smoothing", 1e-9, 1e-5)],
            ModelFamily::LogisticRegression => vec![log_dim("l2", 1e-5, 1.0)],
            ModelFamily::LinearSvm => {
                vec![log_dim("lambda", 1e-5, 1e-1), int_dim("epochs", 10, 30)]
            }
            ModelFamily::AdaBoost => vec![
                int_dim("n_rounds", 20, 60),
                int_dim("max_depth", 1, 3),
                cat_dim("learning_rate", &["0.5", "1"]),
            ],
        }
    }

    /// Short stable name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelFamily::DecisionTree => "decision_tree",
            ModelFamily::RandomForest => "random_forest",
            ModelFamily::ExtraTrees => "extra_trees",
            ModelFamily::GradientBoosting => "gradient_boosting",
            ModelFamily::Knn => "knn",
            ModelFamily::NaiveBayes => "gaussian_nb",
            ModelFamily::LogisticRegression => "logistic_regression",
            ModelFamily::LinearSvm => "linear_svm",
            ModelFamily::AdaBoost => "adaboost",
        }
    }
}

/// A sampled hyperparameter configuration (family + params + scaler).
#[derive(Debug, Clone, PartialEq)]
pub enum CandidateConfig {
    /// CART tree.
    DecisionTree(TreeParams),
    /// Random forest.
    RandomForest(ForestParams),
    /// Extra trees.
    ExtraTrees(ForestParams),
    /// Gradient boosting.
    GradientBoosting(GbdtParams),
    /// kNN plus its scaler.
    Knn(KnnParams, ScalerKind),
    /// Gaussian NB.
    NaiveBayes(NbParams),
    /// Logistic regression plus its scaler.
    LogisticRegression(LogRegParams, ScalerKind),
    /// Linear SVM plus its scaler.
    LinearSvm(SvmParams, ScalerKind),
    /// AdaBoost.SAMME.
    AdaBoost(AdaBoostParams),
}

impl CandidateConfig {
    /// The family this configuration belongs to.
    pub fn family(&self) -> ModelFamily {
        match self {
            CandidateConfig::DecisionTree(_) => ModelFamily::DecisionTree,
            CandidateConfig::RandomForest(_) => ModelFamily::RandomForest,
            CandidateConfig::ExtraTrees(_) => ModelFamily::ExtraTrees,
            CandidateConfig::GradientBoosting(_) => ModelFamily::GradientBoosting,
            CandidateConfig::Knn(..) => ModelFamily::Knn,
            CandidateConfig::NaiveBayes(_) => ModelFamily::NaiveBayes,
            CandidateConfig::LogisticRegression(..) => ModelFamily::LogisticRegression,
            CandidateConfig::LinearSvm(..) => ModelFamily::LinearSvm,
            CandidateConfig::AdaBoost(_) => ModelFamily::AdaBoost,
        }
    }

    /// Typed hyperparameter values in the family's declared dimension
    /// order (see [`ModelFamily::dims`]); emitted as the `trial_started`
    /// line's trailing `params` map. Fixed (non-searched) parameters are
    /// not part of the declared space and are omitted.
    pub fn params(&self) -> Vec<(String, ParamValue)> {
        let int = |name: &str, v: usize| (name.to_string(), ParamValue::Int(v as i64));
        let float = |name: &str, v: f64| (name.to_string(), ParamValue::Float(v));
        let cat = |name: &str, tag: String| (name.to_string(), ParamValue::Cat(tag));
        match self {
            CandidateConfig::DecisionTree(p) => vec![
                int("max_depth", p.max_depth),
                int("min_samples_leaf", p.min_samples_leaf),
                cat("criterion", criterion_tag(p.criterion).to_string()),
            ],
            CandidateConfig::RandomForest(p) => vec![
                int("n_trees", p.n_trees),
                int("max_depth", p.max_depth),
                int("min_samples_leaf", p.min_samples_leaf),
                cat("criterion", criterion_tag(p.criterion).to_string()),
            ],
            CandidateConfig::ExtraTrees(p) => vec![
                int("n_trees", p.n_trees),
                int("max_depth", p.max_depth),
                int("min_samples_leaf", p.min_samples_leaf),
            ],
            CandidateConfig::GradientBoosting(p) => vec![
                int("n_rounds", p.n_rounds),
                // Drawn from a finite grid, so it travels as a category
                // tag (shortest round-trip form matches the declaration).
                cat("learning_rate", format!("{}", p.learning_rate)),
                int("max_depth", p.max_depth),
                int("min_samples_leaf", p.min_samples_leaf),
            ],
            CandidateConfig::Knn(p, _) => vec![
                int("k", p.k),
                cat(
                    "weights",
                    match p.weights {
                        KnnWeights::Uniform => "uniform",
                        KnnWeights::Distance => "distance",
                    }
                    .to_string(),
                ),
            ],
            CandidateConfig::NaiveBayes(p) => vec![float("var_smoothing", p.var_smoothing)],
            CandidateConfig::LogisticRegression(p, _) => vec![float("l2", p.l2)],
            CandidateConfig::LinearSvm(p, _) => {
                vec![float("lambda", p.lambda), int("epochs", p.epochs)]
            }
            CandidateConfig::AdaBoost(p) => vec![
                int("n_rounds", p.n_rounds),
                int("max_depth", p.max_depth),
                cat("learning_rate", format!("{}", p.learning_rate)),
            ],
        }
    }

    /// Sample a configuration for `family` from its hyperparameter prior.
    pub fn sample(family: ModelFamily, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            ModelFamily::DecisionTree => CandidateConfig::DecisionTree(TreeParams {
                max_depth: rng.gen_range(2..=16),
                min_samples_split: 2,
                min_samples_leaf: rng.gen_range(1..=16),
                criterion: if rng.gen() {
                    Criterion::Gini
                } else {
                    Criterion::Entropy
                },
                splitter: Splitter::Best,
                max_features: None,
                seed,
            }),
            ModelFamily::RandomForest => CandidateConfig::RandomForest(ForestParams {
                n_trees: rng.gen_range(16..=64),
                max_depth: rng.gen_range(4..=14),
                min_samples_leaf: rng.gen_range(1..=8),
                max_features: None,
                criterion: if rng.gen() {
                    Criterion::Gini
                } else {
                    Criterion::Entropy
                },
                seed,
            }),
            ModelFamily::ExtraTrees => CandidateConfig::ExtraTrees(ForestParams {
                n_trees: rng.gen_range(16..=64),
                max_depth: rng.gen_range(4..=14),
                min_samples_leaf: rng.gen_range(1..=8),
                max_features: None,
                criterion: Criterion::Gini,
                seed,
            }),
            ModelFamily::GradientBoosting => CandidateConfig::GradientBoosting(GbdtParams {
                n_rounds: rng.gen_range(15..=50),
                learning_rate: *[0.05, 0.1, 0.2]
                    .get(rng.gen_range(0..3))
                    .expect("index in range"),
                max_depth: rng.gen_range(2..=4),
                min_samples_leaf: rng.gen_range(2..=10),
            }),
            ModelFamily::Knn => CandidateConfig::Knn(
                KnnParams {
                    // Odd k avoids binary ties.
                    k: 2 * rng.gen_range(0..=12) + 1,
                    weights: if rng.gen() {
                        KnnWeights::Uniform
                    } else {
                        KnnWeights::Distance
                    },
                },
                ScalerKind::Standard,
            ),
            ModelFamily::NaiveBayes => CandidateConfig::NaiveBayes(NbParams {
                var_smoothing: 10f64.powf(rng.gen_range(-9.0..-5.0)),
            }),
            ModelFamily::LogisticRegression => CandidateConfig::LogisticRegression(
                LogRegParams {
                    l2: 10f64.powf(rng.gen_range(-5.0..0.0)),
                    learning_rate: 0.2,
                    max_iter: 200,
                    tol: 1e-5,
                },
                ScalerKind::Standard,
            ),
            ModelFamily::LinearSvm => CandidateConfig::LinearSvm(
                SvmParams {
                    lambda: 10f64.powf(rng.gen_range(-5.0..-1.0)),
                    epochs: rng.gen_range(10..=30),
                    seed,
                },
                ScalerKind::Standard,
            ),
            ModelFamily::AdaBoost => CandidateConfig::AdaBoost(AdaBoostParams {
                n_rounds: rng.gen_range(20..=60),
                max_depth: rng.gen_range(1..=3),
                learning_rate: *[0.5, 1.0].get(rng.gen_range(0..2)).expect("index in range"),
            }),
        }
    }

    /// Fit this configuration on `train`, producing a pipeline classifier.
    pub fn fit(&self, train: &Dataset) -> Result<Arc<dyn Classifier>> {
        let pipeline: Pipeline = match self {
            CandidateConfig::DecisionTree(p) => Pipeline::fit_with(train, ScalerKind::None, |d| {
                Ok(Arc::new(aml_models::DecisionTree::fit(d, p.clone())?))
            })?,
            CandidateConfig::RandomForest(p) => Pipeline::fit_with(train, ScalerKind::None, |d| {
                Ok(Arc::new(RandomForest::fit(d, p.clone())?))
            })?,
            CandidateConfig::ExtraTrees(p) => Pipeline::fit_with(train, ScalerKind::None, |d| {
                Ok(Arc::new(ExtraTrees::fit(d, p.clone())?))
            })?,
            CandidateConfig::GradientBoosting(p) => {
                Pipeline::fit_with(train, ScalerKind::None, |d| {
                    Ok(Arc::new(GradientBoosting::fit(d, p.clone())?))
                })?
            }
            CandidateConfig::Knn(p, scaler) => Pipeline::fit_with(train, *scaler, |d| {
                Ok(Arc::new(KNearestNeighbors::fit(d, p.clone())?))
            })?,
            CandidateConfig::NaiveBayes(p) => Pipeline::fit_with(train, ScalerKind::None, |d| {
                Ok(Arc::new(GaussianNaiveBayes::fit(d, p.clone())?))
            })?,
            CandidateConfig::LogisticRegression(p, scaler) => {
                Pipeline::fit_with(train, *scaler, |d| {
                    Ok(Arc::new(LogisticRegression::fit(d, p.clone())?))
                })?
            }
            CandidateConfig::LinearSvm(p, scaler) => Pipeline::fit_with(train, *scaler, |d| {
                Ok(Arc::new(LinearSvm::fit(d, p.clone())?))
            })?,
            CandidateConfig::AdaBoost(p) => Pipeline::fit_with(train, ScalerKind::None, |d| {
                Ok(Arc::new(AdaBoost::fit(d, p.clone())?))
            })?,
        };
        Ok(Arc::new(pipeline))
    }
}

/// The declared search space over `families`, in the given order —
/// the payload of the once-per-run `search_space` ledger event.
pub fn search_space(families: &[ModelFamily]) -> Vec<SpaceFamily> {
    families
        .iter()
        .map(|f| SpaceFamily {
            family: f.name().to_string(),
            dims: f.dims(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::synth;
    use aml_models::metrics::accuracy;

    #[test]
    fn sample_is_deterministic_per_seed() {
        for family in ModelFamily::ALL {
            let a = CandidateConfig::sample(family, 42);
            let b = CandidateConfig::sample(family, 42);
            assert_eq!(a, b, "{family:?}");
            assert_eq!(a.family(), family);
        }
    }

    #[test]
    fn different_seeds_vary_hyperparameters() {
        let configs: Vec<CandidateConfig> = (0..8)
            .map(|s| CandidateConfig::sample(ModelFamily::DecisionTree, s))
            .collect();
        let distinct = configs.iter().filter(|c| **c != configs[0]).count();
        assert!(
            distinct > 0,
            "hyperparameter prior should not be a point mass"
        );
    }

    #[test]
    fn every_family_fits_and_predicts_blobs() {
        let train = synth::gaussian_blobs(160, 2, 2, 1.0, 3).unwrap();
        let test = synth::gaussian_blobs(80, 2, 2, 1.0, 4).unwrap();
        for family in ModelFamily::ALL {
            let cfg = CandidateConfig::sample(family, 7);
            let model = cfg.fit(&train).unwrap();
            let acc = accuracy(test.labels(), &model.predict(&test).unwrap()).unwrap();
            assert!(
                acc > 0.7,
                "{} only reached accuracy {acc} on easy blobs",
                family.name()
            );
        }
    }

    #[test]
    fn params_follow_the_declared_dimension_order() {
        for family in ModelFamily::ALL {
            let dims = family.dims();
            assert!(!dims.is_empty(), "{family:?} declares no dimensions");
            for seed in 0..16 {
                let params = CandidateConfig::sample(family, seed).params();
                let names: Vec<&str> = params.iter().map(|(n, _)| n.as_str()).collect();
                let declared: Vec<&str> = dims.iter().map(|d| d.name.as_str()).collect();
                assert_eq!(names, declared, "{family:?} seed {seed}");
            }
        }
    }

    #[test]
    fn search_space_covers_all_families_in_order() {
        let space = search_space(&ModelFamily::ALL);
        assert_eq!(space.len(), 9);
        assert_eq!(space[0].family, "decision_tree");
        assert_eq!(space[8].family, "adaboost");
        let knn = space.iter().find(|f| f.family == "knn").unwrap();
        assert_eq!(knn.dims[0].name, "k");
        assert_eq!(knn.dims[0].kind, "int");
        assert_eq!((knn.dims[0].lo, knn.dims[0].hi), (1.0, 25.0));
        assert_eq!(knn.dims[1].choices, vec!["uniform", "distance"]);
        let nb = space.iter().find(|f| f.family == "gaussian_nb").unwrap();
        assert_eq!(nb.dims[0].scale, "log10");
    }

    #[test]
    fn family_names_are_unique() {
        let mut names: Vec<&str> = ModelFamily::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ModelFamily::ALL.len());
    }
}
