//! The AutoML search space: model families, hyperparameter sampling, and
//! candidate fitting.
//!
//! Eight model families mirror auto-sklearn's classical-model core. Each
//! family defines (a) a hyperparameter prior to sample configurations from
//! and (b) which scaler its pipeline uses — distance/gradient models get a
//! standardizer, tree models run on raw features.

use crate::Result;
use aml_dataset::Dataset;
use aml_models::adaboost::AdaBoostParams;
use aml_models::forest::ForestParams;
use aml_models::gbdt::GbdtParams;
use aml_models::knn::{KnnParams, KnnWeights};
use aml_models::linear_svm::SvmParams;
use aml_models::logistic::LogRegParams;
use aml_models::naive_bayes::NbParams;
use aml_models::preprocess::ScalerKind;
use aml_models::tree::{Criterion, Splitter, TreeParams};
use aml_models::{
    AdaBoost, Classifier, ExtraTrees, GaussianNaiveBayes, GradientBoosting, KNearestNeighbors,
    LinearSvm, LogisticRegression, Pipeline, RandomForest,
};
use aml_rng::rngs::StdRng;
use aml_rng::{Rng, SeedableRng};
use std::sync::Arc;

/// The model families the searcher can draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Single CART tree.
    DecisionTree,
    /// Bagged random forest.
    RandomForest,
    /// Extremely randomized trees.
    ExtraTrees,
    /// Gradient-boosted trees.
    GradientBoosting,
    /// k-nearest neighbours (standardized).
    Knn,
    /// Gaussian naive Bayes.
    NaiveBayes,
    /// Multinomial logistic regression (standardized).
    LogisticRegression,
    /// One-vs-rest linear SVM (standardized).
    LinearSvm,
    /// AdaBoost.SAMME over shallow trees.
    AdaBoost,
}

impl ModelFamily {
    /// All families, in a fixed order (round-robin sampling uses this).
    pub const ALL: [ModelFamily; 9] = [
        ModelFamily::DecisionTree,
        ModelFamily::RandomForest,
        ModelFamily::ExtraTrees,
        ModelFamily::GradientBoosting,
        ModelFamily::Knn,
        ModelFamily::NaiveBayes,
        ModelFamily::LogisticRegression,
        ModelFamily::LinearSvm,
        ModelFamily::AdaBoost,
    ];

    /// Short stable name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelFamily::DecisionTree => "decision_tree",
            ModelFamily::RandomForest => "random_forest",
            ModelFamily::ExtraTrees => "extra_trees",
            ModelFamily::GradientBoosting => "gradient_boosting",
            ModelFamily::Knn => "knn",
            ModelFamily::NaiveBayes => "gaussian_nb",
            ModelFamily::LogisticRegression => "logistic_regression",
            ModelFamily::LinearSvm => "linear_svm",
            ModelFamily::AdaBoost => "adaboost",
        }
    }
}

/// A sampled hyperparameter configuration (family + params + scaler).
#[derive(Debug, Clone, PartialEq)]
pub enum CandidateConfig {
    /// CART tree.
    DecisionTree(TreeParams),
    /// Random forest.
    RandomForest(ForestParams),
    /// Extra trees.
    ExtraTrees(ForestParams),
    /// Gradient boosting.
    GradientBoosting(GbdtParams),
    /// kNN plus its scaler.
    Knn(KnnParams, ScalerKind),
    /// Gaussian NB.
    NaiveBayes(NbParams),
    /// Logistic regression plus its scaler.
    LogisticRegression(LogRegParams, ScalerKind),
    /// Linear SVM plus its scaler.
    LinearSvm(SvmParams, ScalerKind),
    /// AdaBoost.SAMME.
    AdaBoost(AdaBoostParams),
}

impl CandidateConfig {
    /// The family this configuration belongs to.
    pub fn family(&self) -> ModelFamily {
        match self {
            CandidateConfig::DecisionTree(_) => ModelFamily::DecisionTree,
            CandidateConfig::RandomForest(_) => ModelFamily::RandomForest,
            CandidateConfig::ExtraTrees(_) => ModelFamily::ExtraTrees,
            CandidateConfig::GradientBoosting(_) => ModelFamily::GradientBoosting,
            CandidateConfig::Knn(..) => ModelFamily::Knn,
            CandidateConfig::NaiveBayes(_) => ModelFamily::NaiveBayes,
            CandidateConfig::LogisticRegression(..) => ModelFamily::LogisticRegression,
            CandidateConfig::LinearSvm(..) => ModelFamily::LinearSvm,
            CandidateConfig::AdaBoost(_) => ModelFamily::AdaBoost,
        }
    }

    /// Sample a configuration for `family` from its hyperparameter prior.
    pub fn sample(family: ModelFamily, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        match family {
            ModelFamily::DecisionTree => CandidateConfig::DecisionTree(TreeParams {
                max_depth: rng.gen_range(2..=16),
                min_samples_split: 2,
                min_samples_leaf: rng.gen_range(1..=16),
                criterion: if rng.gen() {
                    Criterion::Gini
                } else {
                    Criterion::Entropy
                },
                splitter: Splitter::Best,
                max_features: None,
                seed,
            }),
            ModelFamily::RandomForest => CandidateConfig::RandomForest(ForestParams {
                n_trees: rng.gen_range(16..=64),
                max_depth: rng.gen_range(4..=14),
                min_samples_leaf: rng.gen_range(1..=8),
                max_features: None,
                criterion: if rng.gen() {
                    Criterion::Gini
                } else {
                    Criterion::Entropy
                },
                seed,
            }),
            ModelFamily::ExtraTrees => CandidateConfig::ExtraTrees(ForestParams {
                n_trees: rng.gen_range(16..=64),
                max_depth: rng.gen_range(4..=14),
                min_samples_leaf: rng.gen_range(1..=8),
                max_features: None,
                criterion: Criterion::Gini,
                seed,
            }),
            ModelFamily::GradientBoosting => CandidateConfig::GradientBoosting(GbdtParams {
                n_rounds: rng.gen_range(15..=50),
                learning_rate: *[0.05, 0.1, 0.2]
                    .get(rng.gen_range(0..3))
                    .expect("index in range"),
                max_depth: rng.gen_range(2..=4),
                min_samples_leaf: rng.gen_range(2..=10),
            }),
            ModelFamily::Knn => CandidateConfig::Knn(
                KnnParams {
                    // Odd k avoids binary ties.
                    k: 2 * rng.gen_range(0..=12) + 1,
                    weights: if rng.gen() {
                        KnnWeights::Uniform
                    } else {
                        KnnWeights::Distance
                    },
                },
                ScalerKind::Standard,
            ),
            ModelFamily::NaiveBayes => CandidateConfig::NaiveBayes(NbParams {
                var_smoothing: 10f64.powf(rng.gen_range(-9.0..-5.0)),
            }),
            ModelFamily::LogisticRegression => CandidateConfig::LogisticRegression(
                LogRegParams {
                    l2: 10f64.powf(rng.gen_range(-5.0..0.0)),
                    learning_rate: 0.2,
                    max_iter: 200,
                    tol: 1e-5,
                },
                ScalerKind::Standard,
            ),
            ModelFamily::LinearSvm => CandidateConfig::LinearSvm(
                SvmParams {
                    lambda: 10f64.powf(rng.gen_range(-5.0..-1.0)),
                    epochs: rng.gen_range(10..=30),
                    seed,
                },
                ScalerKind::Standard,
            ),
            ModelFamily::AdaBoost => CandidateConfig::AdaBoost(AdaBoostParams {
                n_rounds: rng.gen_range(20..=60),
                max_depth: rng.gen_range(1..=3),
                learning_rate: *[0.5, 1.0].get(rng.gen_range(0..2)).expect("index in range"),
            }),
        }
    }

    /// Fit this configuration on `train`, producing a pipeline classifier.
    pub fn fit(&self, train: &Dataset) -> Result<Arc<dyn Classifier>> {
        let pipeline: Pipeline = match self {
            CandidateConfig::DecisionTree(p) => Pipeline::fit_with(train, ScalerKind::None, |d| {
                Ok(Arc::new(aml_models::DecisionTree::fit(d, p.clone())?))
            })?,
            CandidateConfig::RandomForest(p) => Pipeline::fit_with(train, ScalerKind::None, |d| {
                Ok(Arc::new(RandomForest::fit(d, p.clone())?))
            })?,
            CandidateConfig::ExtraTrees(p) => Pipeline::fit_with(train, ScalerKind::None, |d| {
                Ok(Arc::new(ExtraTrees::fit(d, p.clone())?))
            })?,
            CandidateConfig::GradientBoosting(p) => {
                Pipeline::fit_with(train, ScalerKind::None, |d| {
                    Ok(Arc::new(GradientBoosting::fit(d, p.clone())?))
                })?
            }
            CandidateConfig::Knn(p, scaler) => Pipeline::fit_with(train, *scaler, |d| {
                Ok(Arc::new(KNearestNeighbors::fit(d, p.clone())?))
            })?,
            CandidateConfig::NaiveBayes(p) => Pipeline::fit_with(train, ScalerKind::None, |d| {
                Ok(Arc::new(GaussianNaiveBayes::fit(d, p.clone())?))
            })?,
            CandidateConfig::LogisticRegression(p, scaler) => {
                Pipeline::fit_with(train, *scaler, |d| {
                    Ok(Arc::new(LogisticRegression::fit(d, p.clone())?))
                })?
            }
            CandidateConfig::LinearSvm(p, scaler) => Pipeline::fit_with(train, *scaler, |d| {
                Ok(Arc::new(LinearSvm::fit(d, p.clone())?))
            })?,
            CandidateConfig::AdaBoost(p) => Pipeline::fit_with(train, ScalerKind::None, |d| {
                Ok(Arc::new(AdaBoost::fit(d, p.clone())?))
            })?,
        };
        Ok(Arc::new(pipeline))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::synth;
    use aml_models::metrics::accuracy;

    #[test]
    fn sample_is_deterministic_per_seed() {
        for family in ModelFamily::ALL {
            let a = CandidateConfig::sample(family, 42);
            let b = CandidateConfig::sample(family, 42);
            assert_eq!(a, b, "{family:?}");
            assert_eq!(a.family(), family);
        }
    }

    #[test]
    fn different_seeds_vary_hyperparameters() {
        let configs: Vec<CandidateConfig> = (0..8)
            .map(|s| CandidateConfig::sample(ModelFamily::DecisionTree, s))
            .collect();
        let distinct = configs.iter().filter(|c| **c != configs[0]).count();
        assert!(
            distinct > 0,
            "hyperparameter prior should not be a point mass"
        );
    }

    #[test]
    fn every_family_fits_and_predicts_blobs() {
        let train = synth::gaussian_blobs(160, 2, 2, 1.0, 3).unwrap();
        let test = synth::gaussian_blobs(80, 2, 2, 1.0, 4).unwrap();
        for family in ModelFamily::ALL {
            let cfg = CandidateConfig::sample(family, 7);
            let model = cfg.fit(&train).unwrap();
            let acc = accuracy(test.labels(), &model.predict(&test).unwrap()).unwrap();
            assert!(
                acc > 0.7,
                "{} only reached accuracy {acc} on easy blobs",
                family.name()
            );
        }
    }

    #[test]
    fn family_names_are_unique() {
        let mut names: Vec<&str> = ModelFamily::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ModelFamily::ALL.len());
    }
}
