//! The top-level AutoML driver: split → search → ensemble-select → package.

use crate::search::{run_search, SearchLimits, SearchStrategy, TrainedCandidate};
use crate::selection::greedy_ensemble_selection;
use crate::space::ModelFamily;
use crate::{AutoMlError, Result};
use aml_dataset::{split::train_test_split, Dataset};
use aml_models::{Classifier, SoftVotingEnsemble};
use std::sync::Arc;

/// Configuration of one AutoML run.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoMlConfig {
    /// Candidate configurations to sample and train.
    pub n_candidates: usize,
    /// Greedy ensemble-selection rounds (bag size with replacement).
    pub ensemble_rounds: usize,
    /// Seed the ensemble with the top-k leaderboard models before greedy
    /// selection (auto-sklearn's `ensemble_nbest`). Guarantees a diverse
    /// multi-member bag — required by QBC and the ALE feedback committee.
    pub ensemble_init_top_k: usize,
    /// Fraction of the training data held out for validation/selection.
    pub validation_fraction: f64,
    /// Model families to search over.
    pub families: Vec<ModelFamily>,
    /// Search strategy.
    pub strategy: SearchStrategy,
    /// Master seed. Different seeds → different model bags, which is what
    /// the paper's Cross-ALE variant exploits.
    pub seed: u64,
    /// Worker threads for candidate training (1 = sequential).
    pub parallelism: usize,
    /// Wall-clock budget per trial (`--max-trial-time`); `None` runs
    /// trials inline with no budget machinery (off-is-free).
    pub max_trial_time: Option<std::time::Duration>,
    /// Minimum trials that must survive the search (`--min-trials`);
    /// below this the run errors instead of degrading further.
    pub min_trials: usize,
}

impl Default for AutoMlConfig {
    fn default() -> Self {
        AutoMlConfig {
            n_candidates: 24,
            ensemble_rounds: 15,
            ensemble_init_top_k: 5,
            validation_fraction: 0.2,
            families: ModelFamily::ALL.to_vec(),
            strategy: SearchStrategy::Random,
            seed: 0,
            parallelism: 1,
            max_trial_time: None,
            min_trials: 1,
        }
    }
}

impl AutoMlConfig {
    fn validate(&self) -> Result<()> {
        if self.n_candidates == 0 {
            return Err(AutoMlError::InvalidConfig(
                "n_candidates must be >= 1".into(),
            ));
        }
        if self.ensemble_rounds == 0 {
            return Err(AutoMlError::InvalidConfig(
                "ensemble_rounds must be >= 1".into(),
            ));
        }
        if !(self.validation_fraction > 0.0 && self.validation_fraction < 0.9) {
            return Err(AutoMlError::InvalidConfig(format!(
                "validation_fraction {} outside (0, 0.9)",
                self.validation_fraction
            )));
        }
        if self.families.is_empty() {
            return Err(AutoMlError::InvalidConfig(
                "families must not be empty".into(),
            ));
        }
        if self.parallelism == 0 {
            return Err(AutoMlError::InvalidConfig(
                "parallelism must be >= 1".into(),
            ));
        }
        if self.min_trials == 0 {
            return Err(AutoMlError::InvalidConfig("min_trials must be >= 1".into()));
        }
        if self.min_trials > self.n_candidates {
            return Err(AutoMlError::InvalidConfig(format!(
                "min_trials {} exceeds n_candidates {}",
                self.min_trials, self.n_candidates
            )));
        }
        Ok(())
    }
}

/// The AutoML entry point.
#[derive(Debug, Clone)]
pub struct AutoMl {
    config: AutoMlConfig,
}

/// Output of a fitted AutoML run: the weighted ensemble plus the full
/// leaderboard, with the individual distinct ensemble members accessible for
/// the feedback algorithms.
pub struct FittedAutoMl {
    ensemble: SoftVotingEnsemble,
    leaderboard: Vec<TrainedCandidate>,
    val_score: f64,
    seed: u64,
}

impl AutoMl {
    /// Create a driver with the given configuration.
    pub fn new(config: AutoMlConfig) -> Self {
        AutoMl { config }
    }

    /// Access the configuration.
    pub fn config(&self) -> &AutoMlConfig {
        &self.config
    }

    /// Run the full AutoML pipeline on `train_data`.
    pub fn fit(&self, train_data: &Dataset) -> Result<FittedAutoMl> {
        let _span = aml_telemetry::span!("automl.fit");
        self.config.validate()?;
        // Inner split: train'/validation (stratified; falls back to
        // unstratified when a class is too rare to stratify).
        let (inner_train, inner_val) = train_test_split(
            train_data,
            self.config.validation_fraction,
            true,
            self.config.seed ^ 0x5EED_5EED,
        )
        .or_else(|_| {
            train_test_split(
                train_data,
                self.config.validation_fraction,
                false,
                self.config.seed ^ 0x5EED_5EED,
            )
        })?;

        let leaderboard = run_search(
            self.config.strategy,
            self.config.n_candidates,
            &self.config.families,
            &inner_train,
            &inner_val,
            self.config.seed,
            self.config.parallelism,
            &SearchLimits {
                max_trial_time: self.config.max_trial_time,
                min_trials: self.config.min_trials,
            },
        )?;

        let outcome = greedy_ensemble_selection(
            &leaderboard,
            inner_val.labels(),
            train_data.n_classes(),
            self.config.ensemble_rounds,
            self.config.ensemble_init_top_k,
        )?;

        // Distinct picked members with their counts as weights.
        let mut members: Vec<Arc<dyn Classifier>> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        for (ci, &count) in outcome.counts.iter().enumerate() {
            if count > 0 {
                members.push(leaderboard[ci].model.clone());
                weights.push(count as f64);
            }
        }
        aml_telemetry::ledger::emit_with(|| aml_telemetry::LedgerEvent::EnsembleSelected {
            val_score: outcome.val_score,
            members: outcome
                .counts
                .iter()
                .enumerate()
                .filter(|&(_, &count)| count > 0)
                .map(|(ci, &count)| aml_telemetry::EnsembleMember {
                    trial: leaderboard[ci].trial,
                    family: leaderboard[ci].config.family().name().to_string(),
                    weight: count as f64,
                    score: leaderboard[ci].val_score,
                })
                .collect(),
        });
        let ensemble = SoftVotingEnsemble::new(members, weights)?;

        Ok(FittedAutoMl {
            ensemble,
            leaderboard,
            val_score: outcome.val_score,
            seed: self.config.seed,
        })
    }
}

impl FittedAutoMl {
    /// The final weighted soft-voting ensemble.
    pub fn ensemble(&self) -> &SoftVotingEnsemble {
        &self.ensemble
    }

    /// Every trained candidate, best-first (the leaderboard).
    pub fn leaderboard(&self) -> &[TrainedCandidate] {
        &self.leaderboard
    }

    /// Validation balanced accuracy of the selected ensemble.
    pub fn validation_score(&self) -> f64 {
        self.val_score
    }

    /// The seed this run used.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Names of the distinct ensemble members (diagnostics / reports).
    pub fn member_names(&self) -> Vec<&'static str> {
        self.ensemble.members().iter().map(|m| m.name()).collect()
    }
}

impl Classifier for FittedAutoMl {
    fn n_classes(&self) -> usize {
        self.ensemble.n_classes()
    }

    fn n_features(&self) -> usize {
        self.ensemble.n_features()
    }

    fn predict_proba_row(&self, row: &[f64]) -> aml_models::Result<Vec<f64>> {
        self.ensemble.predict_proba_row(row)
    }

    fn name(&self) -> &'static str {
        "automl_ensemble"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::synth;
    use aml_models::metrics::balanced_accuracy;

    fn quick_cfg(seed: u64) -> AutoMlConfig {
        AutoMlConfig {
            n_candidates: 8,
            ensemble_rounds: 6,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn fits_moons_with_decent_accuracy() {
        let train = synth::two_moons(300, 0.2, 1).unwrap();
        let test = synth::two_moons(200, 0.2, 2).unwrap();
        let fitted = AutoMl::new(quick_cfg(3)).fit(&train).unwrap();
        let preds = fitted.predict(&test).unwrap();
        let ba = balanced_accuracy(test.labels(), &preds, 2).unwrap();
        assert!(ba > 0.9, "AutoML balanced accuracy {ba}");
    }

    #[test]
    fn ensemble_members_are_accessible_and_multiple() {
        let train = synth::noisy_xor(400, 0.1, 2).unwrap();
        let fitted = AutoMl::new(AutoMlConfig {
            n_candidates: 16,
            ensemble_rounds: 10,
            seed: 5,
            ..Default::default()
        })
        .fit(&train)
        .unwrap();
        assert!(!fitted.ensemble().members().is_empty());
        assert_eq!(
            fitted.ensemble().members().len(),
            fitted.member_names().len()
        );
        // Leaderboard is sorted.
        for w in fitted.leaderboard().windows(2) {
            assert!(w[0].val_score >= w[1].val_score);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let train = synth::two_moons(200, 0.25, 7).unwrap();
        let probe = [0.5, 0.2];
        let a = AutoMl::new(quick_cfg(11)).fit(&train).unwrap();
        let b = AutoMl::new(quick_cfg(11)).fit(&train).unwrap();
        assert_eq!(
            a.predict_proba_row(&probe).unwrap(),
            b.predict_proba_row(&probe).unwrap()
        );
    }

    #[test]
    fn different_seeds_give_different_bags() {
        // The Cross-ALE premise: independent runs → diverse bags. With
        // different seeds, either the member set or the predictions differ.
        let train = synth::two_moons(200, 0.25, 7).unwrap();
        let a = AutoMl::new(quick_cfg(1)).fit(&train).unwrap();
        let c = AutoMl::new(quick_cfg(2)).fit(&train).unwrap();
        let probe = [0.5, 0.2];
        let pa = a.predict_proba_row(&probe).unwrap();
        let pc = c.predict_proba_row(&probe).unwrap();
        let differs = a.member_names() != c.member_names()
            || pa.iter().zip(&pc).any(|(x, y)| (x - y).abs() > 1e-12);
        assert!(differs, "seeds 1 and 2 produced identical AutoML outputs");
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = AutoMlConfig {
            n_candidates: 0,
            ..Default::default()
        };
        let ds = synth::two_moons(100, 0.2, 0).unwrap();
        assert!(AutoMl::new(bad).fit(&ds).is_err());
        let bad2 = AutoMlConfig {
            validation_fraction: 0.95,
            ..Default::default()
        };
        assert!(AutoMl::new(bad2).fit(&ds).is_err());
        let bad3 = AutoMlConfig {
            parallelism: 0,
            ..Default::default()
        };
        assert!(AutoMl::new(bad3).fit(&ds).is_err());
    }

    #[test]
    fn parallel_fit_matches_sequential() {
        let train = synth::two_moons(200, 0.2, 9).unwrap();
        let mut cfg = quick_cfg(13);
        cfg.parallelism = 1;
        let seq = AutoMl::new(cfg.clone()).fit(&train).unwrap();
        cfg.parallelism = 4;
        let par = AutoMl::new(cfg).fit(&train).unwrap();
        let probe = [0.0, 0.5];
        assert_eq!(
            seq.predict_proba_row(&probe).unwrap(),
            par.predict_proba_row(&probe).unwrap()
        );
        assert_eq!(seq.validation_score(), par.validation_score());
    }
}
