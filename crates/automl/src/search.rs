//! Candidate search: random search and successive halving.
//!
//! Both strategies produce a leaderboard of [`TrainedCandidate`]s scored by
//! balanced accuracy on a held-out validation split. Candidate training is
//! embarrassingly parallel and runs on `std::thread::scope` threads when
//! `parallelism > 1`; results are reassembled in sampling order so the
//! outcome is identical to a sequential run.

use crate::space::{CandidateConfig, ModelFamily};
use crate::{AutoMlError, Result};
use aml_dataset::Dataset;
use aml_models::metrics::balanced_accuracy;
use aml_models::Classifier;
use aml_telemetry::ledger::{self, LedgerEvent};
use std::sync::Arc;

/// How the searcher allocates its candidate budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Sample `n_candidates` configs, train each on the full training split.
    Random,
    /// Successive halving: train all candidates on a small data fraction,
    /// keep the best half, double the fraction, repeat until one rung uses
    /// the full data.
    SuccessiveHalving,
}

/// A fitted candidate with its validation score.
pub struct TrainedCandidate {
    /// Stable trial id: the sequential sampling index of the config,
    /// assigned before any parallel work — the experiment ledger's join
    /// key across rungs and into the selected ensemble.
    pub trial: u64,
    /// The sampled configuration.
    pub config: CandidateConfig,
    /// Fitted pipeline (refit on the full training split at final rung).
    pub model: Arc<dyn Classifier>,
    /// Balanced accuracy on the validation split.
    pub val_score: f64,
    /// Validation probability matrix (row per validation sample) — cached
    /// for greedy ensemble selection so members aren't re-predicted.
    pub val_proba: Vec<Vec<f64>>,
}

/// SplitMix64 seed derivation (matches aml-models' forests).
pub(crate) fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Round-robin family assignment so every family appears in the candidate
/// pool even for small budgets.
pub(crate) fn assign_families(n: usize, families: &[ModelFamily]) -> Vec<ModelFamily> {
    (0..n).map(|i| families[i % families.len()]).collect()
}

/// Train one candidate and score it on the validation split. Returns `None`
/// if this particular configuration failed (e.g. a degenerate bootstrap) so
/// the search can continue with the survivors.
///
/// Emits `trial_started` then `trial_finished`/`trial_failed` ledger
/// events (no wall time — the ledger must be thread-count invariant).
fn train_one(
    trial: u64,
    rung: u64,
    config: CandidateConfig,
    train: &Dataset,
    val: &Dataset,
) -> Option<TrainedCandidate> {
    ledger::emit_with(|| LedgerEvent::TrialStarted {
        trial,
        rung,
        family: config.family().name().to_string(),
        config: format!("{config:?}"),
    });
    let outcome = fit_and_score(&config, train, val);
    aml_telemetry::serve::note_trial_done();
    match outcome {
        Some((model, val_score, val_proba)) => {
            ledger::emit_with(|| LedgerEvent::TrialFinished {
                trial,
                rung,
                family: config.family().name().to_string(),
                score: val_score,
            });
            Some(TrainedCandidate {
                trial,
                config,
                model,
                val_score,
                val_proba,
            })
        }
        None => {
            ledger::emit_with(|| LedgerEvent::TrialFailed {
                trial,
                rung,
                family: config.family().name().to_string(),
            });
            None
        }
    }
}

/// Fit + validation-score one config; `None` on any failure.
#[allow(clippy::type_complexity)]
fn fit_and_score(
    config: &CandidateConfig,
    train: &Dataset,
    val: &Dataset,
) -> Option<(Arc<dyn Classifier>, f64, Vec<Vec<f64>>)> {
    let fit_start = aml_telemetry::maybe_now();
    let model = config.fit(train).ok()?;
    if let Some(start) = fit_start {
        aml_telemetry::histogram_record_labeled(
            "automl.fit_us",
            config.family().name(),
            start.elapsed().as_micros() as u64,
        );
        aml_telemetry::counter_add("automl.candidates_trained", 1);
    }
    let val_proba = model.predict_proba(val).ok()?;
    let preds: Vec<usize> = val_proba
        .iter()
        .map(|p| aml_models::model::argmax(p))
        .collect();
    let val_score = balanced_accuracy(val.labels(), &preds, val.n_classes()).ok()?;
    Some((model, val_score, val_proba))
}

/// Train `(trial, config)` jobs (in order) with up to `parallelism` worker
/// threads at halving rung `rung`. Output preserves input order; failed
/// candidates are dropped.
fn train_all(
    jobs: Vec<(u64, CandidateConfig)>,
    rung: u64,
    train: &Dataset,
    val: &Dataset,
    parallelism: usize,
) -> Vec<TrainedCandidate> {
    aml_telemetry::serve::add_planned_trials(jobs.len() as u64);
    if parallelism <= 1 || jobs.len() <= 1 {
        return jobs
            .into_iter()
            .filter_map(|(t, c)| train_one(t, rung, c, train, val))
            .collect();
    }
    let n = jobs.len();
    let mut slots: Vec<Option<TrainedCandidate>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let jobs: Vec<(usize, u64, CandidateConfig)> = jobs
        .into_iter()
        .enumerate()
        .map(|(i, (t, c))| (i, t, c))
        .collect();
    let chunk = n.div_ceil(parallelism);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for piece in jobs.chunks(chunk) {
            let piece: Vec<(usize, u64, CandidateConfig)> = piece.to_vec();
            handles.push(scope.spawn(move || {
                piece
                    .into_iter()
                    .map(|(i, t, c)| (i, train_one(t, rung, c, train, val)))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            for (i, result) in h.join().expect("candidate training threads don't panic") {
                slots[i] = result;
            }
        }
    });

    slots.into_iter().flatten().collect()
}

/// Run the search, returning candidates sorted by descending validation
/// score (ties broken by sampling order for determinism).
///
/// `train`/`val` are the inner split of the user's training data.
pub fn run_search(
    strategy: SearchStrategy,
    n_candidates: usize,
    families: &[ModelFamily],
    train: &Dataset,
    val: &Dataset,
    seed: u64,
    parallelism: usize,
) -> Result<Vec<TrainedCandidate>> {
    let _span = aml_telemetry::span!("automl.search.run");
    if n_candidates == 0 {
        return Err(AutoMlError::InvalidConfig(
            "n_candidates must be >= 1".into(),
        ));
    }
    if families.is_empty() {
        return Err(AutoMlError::InvalidConfig(
            "families must not be empty".into(),
        ));
    }
    let assigned = assign_families(n_candidates, families);
    // The enumeration index is the trial id: assigned sequentially before
    // any parallel work, it is the ledger's stable join key.
    let jobs: Vec<(u64, CandidateConfig)> = assigned
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            (
                i as u64,
                CandidateConfig::sample(f, derive_seed(seed, i as u64)),
            )
        })
        .collect();

    let (mut survivors, final_rung): (Vec<(u64, CandidateConfig)>, u64) = match strategy {
        SearchStrategy::Random => (jobs, 0),
        SearchStrategy::SuccessiveHalving => {
            halving_survivors(jobs, train, val, seed, parallelism)?
        }
    };

    // Final rung: full training data.
    let mut trained = train_all(
        std::mem::take(&mut survivors),
        final_rung,
        train,
        val,
        parallelism,
    );
    if trained.is_empty() {
        return Err(AutoMlError::AllCandidatesFailed(
            "no candidate produced a valid model".into(),
        ));
    }
    // Stable sort keeps sampling order among score ties.
    trained.sort_by(|a, b| {
        b.val_score
            .partial_cmp(&a.val_score)
            .expect("scores are finite")
    });
    Ok(trained)
}

/// Successive-halving rungs on growing data fractions; returns the surviving
/// `(trial, config)` jobs to be refit on the full training split, plus the
/// rung number that full-data refit runs at (for the ledger).
#[allow(clippy::type_complexity)]
fn halving_survivors(
    mut jobs: Vec<(u64, CandidateConfig)>,
    train: &Dataset,
    val: &Dataset,
    seed: u64,
    parallelism: usize,
) -> Result<(Vec<(u64, CandidateConfig)>, u64)> {
    let mut fraction = 0.25f64;
    let mut rung = 0u64;
    while jobs.len() > 2 && fraction < 1.0 {
        let n_sub = ((train.n_rows() as f64 * fraction) as usize)
            .max(16)
            .min(train.n_rows());
        // Deterministic subsample for this rung.
        let idx = subsample_indices(train.n_rows(), n_sub, derive_seed(seed, 1000 + rung));
        let sub = train.subset(&idx)?;
        let trained = train_all(jobs.clone(), rung, &sub, val, parallelism);
        if trained.is_empty() {
            // All failed at this rung (tiny subsample may be degenerate) —
            // skip the rung rather than aborting the search.
            fraction *= 2.0;
            rung += 1;
            continue;
        }
        let mut scored: Vec<(f64, u64, CandidateConfig)> = trained
            .into_iter()
            .map(|t| (t.val_score, t.trial, t.config))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores are finite"));
        let keep = (scored.len() / 2).max(2);
        jobs = scored
            .into_iter()
            .take(keep)
            .map(|(_, t, c)| (t, c))
            .collect();
        fraction *= 2.0;
        rung += 1;
    }
    Ok((jobs, rung))
}

fn subsample_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    use aml_rng::seq::SliceRandom;
    use aml_rng::SeedableRng;
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = aml_rng::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::{split::train_test_split, synth};

    fn splits() -> (Dataset, Dataset) {
        let ds = synth::two_moons(300, 0.2, 5).unwrap();
        train_test_split(&ds, 0.25, true, 1).unwrap()
    }

    #[test]
    fn random_search_returns_sorted_leaderboard() {
        let (train, val) = splits();
        let out = run_search(
            SearchStrategy::Random,
            8,
            &ModelFamily::ALL,
            &train,
            &val,
            3,
            1,
        )
        .unwrap();
        assert_eq!(out.len(), 8);
        for w in out.windows(2) {
            assert!(w[0].val_score >= w[1].val_score);
        }
        assert!(
            out[0].val_score > 0.8,
            "best candidate {}",
            out[0].val_score
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let (train, val) = splits();
        let seq = run_search(
            SearchStrategy::Random,
            6,
            &ModelFamily::ALL,
            &train,
            &val,
            9,
            1,
        )
        .unwrap();
        let par = run_search(
            SearchStrategy::Random,
            6,
            &ModelFamily::ALL,
            &train,
            &val,
            9,
            4,
        )
        .unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.val_score, b.val_score);
        }
    }

    #[test]
    fn halving_prunes_candidates() {
        let (train, val) = splits();
        let out = run_search(
            SearchStrategy::SuccessiveHalving,
            12,
            &ModelFamily::ALL,
            &train,
            &val,
            7,
            1,
        )
        .unwrap();
        assert!(out.len() < 12, "halving should prune, kept {}", out.len());
        assert!(out.len() >= 2);
    }

    #[test]
    fn round_robin_covers_families() {
        let fams = assign_families(10, &ModelFamily::ALL);
        for f in &ModelFamily::ALL {
            assert!(fams.contains(f));
        }
    }

    #[test]
    fn zero_candidates_rejected() {
        let (train, val) = splits();
        assert!(run_search(
            SearchStrategy::Random,
            0,
            &ModelFamily::ALL,
            &train,
            &val,
            0,
            1
        )
        .is_err());
    }

    #[test]
    fn restricted_family_list_respected() {
        let (train, val) = splits();
        let out = run_search(
            SearchStrategy::Random,
            4,
            &[ModelFamily::Knn],
            &train,
            &val,
            2,
            1,
        )
        .unwrap();
        assert!(out.iter().all(|c| c.config.family() == ModelFamily::Knn));
    }
}
