//! Candidate search: random search and successive halving.
//!
//! Both strategies produce a leaderboard of [`TrainedCandidate`]s scored by
//! balanced accuracy on a held-out validation split. Candidate training is
//! embarrassingly parallel and runs on `std::thread::scope` threads when
//! `parallelism > 1`; results are reassembled in sampling order so the
//! outcome is identical to a sequential run.

use crate::space::{CandidateConfig, ModelFamily};
use crate::{AutoMlError, Result, SearchError};
use aml_dataset::Dataset;
use aml_faults::TrialFault;
use aml_models::metrics::balanced_accuracy;
use aml_models::Classifier;
use aml_telemetry::ledger::{self, LedgerEvent};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Trials currently inside the fit sandbox, mirrored to the
/// `search.trials_inflight` gauge so `/metrics` shows live search
/// concurrency mid-run.
static TRIALS_INFLIGHT: AtomicU64 = AtomicU64::new(0);

fn trial_fit_begin() {
    let now = TRIALS_INFLIGHT.fetch_add(1, Ordering::Relaxed) + 1;
    aml_telemetry::gauge_set("search.trials_inflight", now);
}

fn trial_fit_end() {
    let now = TRIALS_INFLIGHT
        .fetch_sub(1, Ordering::Relaxed)
        .saturating_sub(1);
    aml_telemetry::gauge_set("search.trials_inflight", now);
}

/// How the searcher allocates its candidate budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Sample `n_candidates` configs, train each on the full training split.
    Random,
    /// Successive halving: train all candidates on a small data fraction,
    /// keep the best half, double the fraction, repeat until one rung uses
    /// the full data.
    SuccessiveHalving,
}

/// Robustness limits on the search (DESIGN.md §7).
///
/// Every trial always runs inside a `catch_unwind` sandbox with a
/// non-finite-score guard, so panicking or NaN-scoring candidates become
/// `trial_failed` ledger events instead of killing the run. These limits
/// add the two knobs on top:
///
/// * `max_trial_time` — wall-clock budget per trial. When set, each
///   trial runs on a dedicated worker thread and is abandoned (ledgered
///   as `reason: timeout`) if it overruns; when `None`, trials run
///   inline with zero extra threads or copies (off-is-free).
/// * `min_trials` — the search errors with
///   [`SearchError::TooFewSurvivors`] when fewer trials survive, rather
///   than letting ensemble selection degrade below a usable floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchLimits {
    /// Per-trial wall-clock budget (`None` = unbounded, run inline).
    pub max_trial_time: Option<Duration>,
    /// Minimum surviving trials required for the search to succeed.
    pub min_trials: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_trial_time: None,
            min_trials: 1,
        }
    }
}

/// A fitted candidate with its validation score.
pub struct TrainedCandidate {
    /// Stable trial id: the sequential sampling index of the config,
    /// assigned before any parallel work — the experiment ledger's join
    /// key across rungs and into the selected ensemble.
    pub trial: u64,
    /// The sampled configuration.
    pub config: CandidateConfig,
    /// Fitted pipeline (refit on the full training split at final rung).
    pub model: Arc<dyn Classifier>,
    /// Balanced accuracy on the validation split.
    pub val_score: f64,
    /// Validation probability matrix (row per validation sample) — cached
    /// for greedy ensemble selection so members aren't re-predicted.
    pub val_proba: Vec<Vec<f64>>,
}

/// SplitMix64 seed derivation (matches aml-models' forests).
pub(crate) fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Round-robin family assignment so every family appears in the candidate
/// pool even for small budgets.
pub(crate) fn assign_families(n: usize, families: &[ModelFamily]) -> Vec<ModelFamily> {
    (0..n).map(|i| families[i % families.len()]).collect()
}

/// What one sandboxed trial produced: a scored model, or a typed
/// failure reason destined for the `trial_failed` ledger line.
/// A fitted model, its validation score, and its validation probabilities.
type Fitted = (Arc<dyn Classifier>, f64, Vec<Vec<f64>>);

type TrialResult = std::result::Result<Fitted, &'static str>;

/// Run one trial inside the sandbox: `catch_unwind` absorbs panics
/// (`reason: panic`), and a non-finite validation score is rejected
/// (`reason: nonfinite`) before it can poison the leaderboard sort or
/// the ensemble. Fit/scoring errors stay `reason: error`.
fn run_sandboxed(
    trial: u64,
    config: &CandidateConfig,
    train: &Dataset,
    val: &Dataset,
) -> TrialResult {
    let armed = aml_telemetry::sandbox::arm();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        fit_and_score_with_faults(trial, config, train, val)
    }));
    drop(armed);
    match caught {
        Err(_) => Err("panic"),
        Ok(None) => Err("error"),
        Ok(Some((_, score, _))) if !score.is_finite() => Err("nonfinite"),
        Ok(Some(ok)) => Ok(ok),
    }
}

/// Record one trial outcome: `trial_finished`/`trial_failed` ledger line
/// plus live-progress tick, and package the survivor. Always called on
/// the supervising side, never from an abandonable worker thread.
fn settle_trial(
    trial: u64,
    rung: u64,
    config: CandidateConfig,
    outcome: TrialResult,
) -> Option<TrainedCandidate> {
    trial_fit_end();
    aml_telemetry::serve::note_trial_done();
    match outcome {
        Ok((model, val_score, val_proba)) => {
            ledger::emit_with(|| LedgerEvent::TrialFinished {
                trial,
                rung,
                family: config.family().name().to_string(),
                score: val_score,
            });
            Some(TrainedCandidate {
                trial,
                config,
                model,
                val_score,
                val_proba,
            })
        }
        Err(reason) => {
            ledger::emit_with(|| LedgerEvent::TrialFailed {
                trial,
                rung,
                family: config.family().name().to_string(),
                reason: reason.to_string(),
            });
            None
        }
    }
}

/// Train one candidate and score it on the validation split. Returns `None`
/// if this particular configuration failed (panic, error, or a
/// non-finite score) so the search can continue with the survivors.
///
/// Emits `trial_started` then `trial_finished`/`trial_failed` ledger
/// events (no wall time — the ledger must be thread-count invariant).
fn train_one(
    trial: u64,
    rung: u64,
    config: CandidateConfig,
    train: &Dataset,
    val: &Dataset,
) -> Option<TrainedCandidate> {
    ledger::emit_with(|| LedgerEvent::TrialStarted {
        trial,
        rung,
        family: config.family().name().to_string(),
        config: format!("{config:?}"),
        params: config.params(),
    });
    trial_fit_begin();
    let outcome = run_sandboxed(trial, &config, train, val);
    settle_trial(trial, rung, config, outcome)
}

/// Train one candidate on a dedicated worker thread with a wall-clock
/// budget. On overrun the worker is abandoned (it finishes eventually
/// and its result is dropped — threads cannot be killed) and the trial
/// is ledgered as `reason: timeout`. All ledger emission happens on the
/// supervising side so an abandoned worker can never write a late
/// `trial_finished` line.
fn train_one_budgeted(
    trial: u64,
    rung: u64,
    config: CandidateConfig,
    train: &Arc<Dataset>,
    val: &Arc<Dataset>,
    budget: Duration,
) -> Option<TrainedCandidate> {
    ledger::emit_with(|| LedgerEvent::TrialStarted {
        trial,
        rung,
        family: config.family().name().to_string(),
        config: format!("{config:?}"),
        params: config.params(),
    });
    trial_fit_begin();
    let (tx, rx) = mpsc::channel::<TrialResult>();
    let (w_config, w_train, w_val) = (config.clone(), Arc::clone(train), Arc::clone(val));
    std::thread::spawn(move || {
        let _ = tx.send(run_sandboxed(trial, &w_config, &w_train, &w_val));
    });
    let outcome = rx.recv_timeout(budget).unwrap_or(Err("timeout"));
    settle_trial(trial, rung, config, outcome)
}

/// The actual fit, with the deterministic fault-injection sites in
/// front (inert single branch unless a fault plan is installed): an
/// injected panic unwinds into the sandbox, an injected delay drives
/// the timeout path, and an injected NaN score drives the non-finite
/// guard.
fn fit_and_score_with_faults(
    trial: u64,
    config: &CandidateConfig,
    train: &Dataset,
    val: &Dataset,
) -> Option<Fitted> {
    match aml_faults::trial_fault(trial) {
        Some(TrialFault::Panic) => panic!("injected fault: trial_panic@{trial}"),
        Some(TrialFault::Slow(delay)) => std::thread::sleep(delay),
        Some(TrialFault::NanScore) => {
            let (model, _, proba) = fit_and_score(config, train, val)?;
            return Some((model, f64::NAN, proba));
        }
        None => {}
    }
    fit_and_score(config, train, val)
}

/// Fit + validation-score one config; `None` on any failure.
fn fit_and_score(config: &CandidateConfig, train: &Dataset, val: &Dataset) -> Option<Fitted> {
    let fit_start = aml_telemetry::maybe_now();
    let model = config.fit(train).ok()?;
    if let Some(start) = fit_start {
        aml_telemetry::histogram_record_labeled(
            "automl.fit_us",
            config.family().name(),
            start.elapsed().as_micros() as u64,
        );
        aml_telemetry::counter_add("automl.candidates_trained", 1);
    }
    let val_proba = model.predict_proba(val).ok()?;
    let preds: Vec<usize> = val_proba
        .iter()
        .map(|p| aml_models::model::argmax(p))
        .collect();
    let val_score = balanced_accuracy(val.labels(), &preds, val.n_classes()).ok()?;
    Some((model, val_score, val_proba))
}

/// [`train_one`] under an `automl.trial` span attached to the search's
/// [`aml_telemetry::TraceContext`], slotted by trial id — so the causal
/// trace tree is identical whatever the worker count.
fn traced_train_one(
    ctx: aml_telemetry::TraceContext,
    trial: u64,
    rung: u64,
    config: CandidateConfig,
    train: &Dataset,
    val: &Dataset,
) -> Option<TrainedCandidate> {
    let _handoff = ctx.attach(trial);
    let _span = aml_telemetry::span!("automl.trial");
    train_one(trial, rung, config, train, val)
}

/// Train `(trial, config)` jobs (in order) with up to `parallelism` worker
/// threads at halving rung `rung`. Output preserves input order; failed
/// candidates are dropped. A chunk worker dying *outside* the per-trial
/// sandbox is a harness bug and surfaces as
/// [`SearchError::WorkerPanicked`] instead of aborting the process.
fn train_all(
    jobs: Vec<(u64, CandidateConfig)>,
    rung: u64,
    train: &Dataset,
    val: &Dataset,
    parallelism: usize,
    budget: Option<Duration>,
) -> Result<Vec<TrainedCandidate>> {
    aml_telemetry::serve::add_planned_trials(jobs.len() as u64);
    // One span per rung call: besides timing the rung, this gives each
    // rung's `automl.trial` handoffs a distinct trace-tree parent (trial
    // ids repeat across rungs, attach slots must not).
    let _rung_span = aml_telemetry::span!("automl.rung");
    if let Some(budget) = budget {
        return train_all_budgeted(jobs, rung, train, val, parallelism, budget);
    }
    let ctx = aml_telemetry::TraceContext::current();
    if parallelism <= 1 || jobs.len() <= 1 {
        return Ok(jobs
            .into_iter()
            .filter_map(|(t, c)| traced_train_one(ctx, t, rung, c, train, val))
            .collect());
    }
    let n = jobs.len();
    let mut slots: Vec<Option<TrainedCandidate>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let jobs: Vec<(usize, u64, CandidateConfig)> = jobs
        .into_iter()
        .enumerate()
        .map(|(i, (t, c))| (i, t, c))
        .collect();
    let chunk = n.div_ceil(parallelism);

    let mut harness_panic: Option<String> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for piece in jobs.chunks(chunk) {
            let piece: Vec<(usize, u64, CandidateConfig)> = piece.to_vec();
            handles.push(scope.spawn(move || {
                piece
                    .into_iter()
                    .map(|(i, t, c)| (i, traced_train_one(ctx, t, rung, c, train, val)))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            match h.join() {
                Ok(results) => {
                    for (i, result) in results {
                        slots[i] = result;
                    }
                }
                Err(payload) => {
                    harness_panic.get_or_insert_with(|| panic_message(&payload));
                }
            }
        }
    });
    if let Some(message) = harness_panic {
        return Err(SearchError::WorkerPanicked(message).into());
    }

    Ok(slots.into_iter().flatten().collect())
}

/// Budgeted variant of [`train_all`]: every trial gets its own
/// abandonable worker thread (see [`train_one_budgeted`]), and the
/// datasets are promoted to `Arc` clones once per call so abandoned
/// workers cannot outlive borrowed data. Only engaged when
/// `--max-trial-time` is set — the unbudgeted path stays copy- and
/// thread-free.
fn train_all_budgeted(
    jobs: Vec<(u64, CandidateConfig)>,
    rung: u64,
    train: &Dataset,
    val: &Dataset,
    parallelism: usize,
    budget: Duration,
) -> Result<Vec<TrainedCandidate>> {
    let train = Arc::new(train.clone());
    let val = Arc::new(val.clone());
    let ctx = aml_telemetry::TraceContext::current();
    if parallelism <= 1 || jobs.len() <= 1 {
        return Ok(jobs
            .into_iter()
            .filter_map(|(t, c)| {
                let _handoff = ctx.attach(t);
                let _span = aml_telemetry::span!("automl.trial");
                train_one_budgeted(t, rung, c, &train, &val, budget)
            })
            .collect());
    }
    let n = jobs.len();
    let mut slots: Vec<Option<TrainedCandidate>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let jobs: Vec<(usize, u64, CandidateConfig)> = jobs
        .into_iter()
        .enumerate()
        .map(|(i, (t, c))| (i, t, c))
        .collect();
    let chunk = n.div_ceil(parallelism);

    let mut harness_panic: Option<String> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for piece in jobs.chunks(chunk) {
            let piece: Vec<(usize, u64, CandidateConfig)> = piece.to_vec();
            let (train, val) = (Arc::clone(&train), Arc::clone(&val));
            handles.push(scope.spawn(move || {
                piece
                    .into_iter()
                    .map(|(i, t, c)| {
                        let _handoff = ctx.attach(t);
                        let _span = aml_telemetry::span!("automl.trial");
                        (i, train_one_budgeted(t, rung, c, &train, &val, budget))
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            match h.join() {
                Ok(results) => {
                    for (i, result) in results {
                        slots[i] = result;
                    }
                }
                Err(payload) => {
                    harness_panic.get_or_insert_with(|| panic_message(&payload));
                }
            }
        }
    });
    if let Some(message) = harness_panic {
        return Err(SearchError::WorkerPanicked(message).into());
    }

    Ok(slots.into_iter().flatten().collect())
}

/// Best-effort human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run the search, returning candidates sorted by descending validation
/// score (ties broken by sampling order for determinism).
///
/// `train`/`val` are the inner split of the user's training data.
#[allow(clippy::too_many_arguments)]
pub fn run_search(
    strategy: SearchStrategy,
    n_candidates: usize,
    families: &[ModelFamily],
    train: &Dataset,
    val: &Dataset,
    seed: u64,
    parallelism: usize,
    limits: &SearchLimits,
) -> Result<Vec<TrainedCandidate>> {
    let _span = aml_telemetry::span!("automl.search.run");
    if n_candidates == 0 {
        return Err(AutoMlError::InvalidConfig(
            "n_candidates must be >= 1".into(),
        ));
    }
    if families.is_empty() {
        return Err(AutoMlError::InvalidConfig(
            "families must not be empty".into(),
        ));
    }
    if limits.min_trials == 0 {
        return Err(AutoMlError::InvalidConfig("min_trials must be >= 1".into()));
    }
    // Describe the declared space once per run, ahead of the first
    // trial. The claim is only made while a ledger sink listens —
    // otherwise an unarmed warm-up search would consume the armed run's
    // single descriptor line.
    if ledger::active() && ledger::claim_search_space_emission() {
        ledger::emit(&LedgerEvent::SearchSpace {
            families: crate::space::search_space(families),
        });
    }
    let assigned = assign_families(n_candidates, families);
    // The enumeration index is the trial id: assigned sequentially before
    // any parallel work, it is the ledger's stable join key.
    let jobs: Vec<(u64, CandidateConfig)> = assigned
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            (
                i as u64,
                CandidateConfig::sample(f, derive_seed(seed, i as u64)),
            )
        })
        .collect();

    let (mut survivors, final_rung): (Vec<(u64, CandidateConfig)>, u64) = match strategy {
        SearchStrategy::Random => (jobs, 0),
        SearchStrategy::SuccessiveHalving => {
            halving_survivors(jobs, train, val, seed, parallelism, limits)?
        }
    };

    // Final rung: full training data.
    let mut trained = train_all(
        std::mem::take(&mut survivors),
        final_rung,
        train,
        val,
        parallelism,
        limits.max_trial_time,
    )?;
    if trained.is_empty() {
        return Err(AutoMlError::AllCandidatesFailed(
            "no candidate produced a valid model".into(),
        ));
    }
    if trained.len() < limits.min_trials {
        return Err(SearchError::TooFewSurvivors {
            survived: trained.len(),
            required: limits.min_trials,
        }
        .into());
    }
    // Stable sort keeps sampling order among score ties. The sandbox
    // guarantees finite scores, but `total_cmp` is panic-free either way.
    trained.sort_by(|a, b| b.val_score.total_cmp(&a.val_score));
    Ok(trained)
}

/// Successive-halving rungs on growing data fractions; returns the surviving
/// `(trial, config)` jobs to be refit on the full training split, plus the
/// rung number that full-data refit runs at (for the ledger).
#[allow(clippy::type_complexity)]
fn halving_survivors(
    mut jobs: Vec<(u64, CandidateConfig)>,
    train: &Dataset,
    val: &Dataset,
    seed: u64,
    parallelism: usize,
    limits: &SearchLimits,
) -> Result<(Vec<(u64, CandidateConfig)>, u64)> {
    let mut fraction = 0.25f64;
    let mut rung = 0u64;
    while jobs.len() > 2 && fraction < 1.0 {
        let n_sub = ((train.n_rows() as f64 * fraction) as usize)
            .max(16)
            .min(train.n_rows());
        // Deterministic subsample for this rung.
        let idx = subsample_indices(train.n_rows(), n_sub, derive_seed(seed, 1000 + rung));
        let sub = train.subset(&idx)?;
        let trained = train_all(
            jobs.clone(),
            rung,
            &sub,
            val,
            parallelism,
            limits.max_trial_time,
        )?;
        if trained.is_empty() {
            // All failed at this rung (tiny subsample may be degenerate) —
            // skip the rung rather than aborting the search.
            fraction *= 2.0;
            rung += 1;
            continue;
        }
        let mut scored: Vec<(f64, u64, CandidateConfig)> = trained
            .into_iter()
            .map(|t| (t.val_score, t.trial, t.config))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let entered = jobs.len();
        let keep = (scored.len() / 2).max(2).min(entered);
        jobs = scored
            .into_iter()
            .take(keep)
            .map(|(_, t, c)| (t, c))
            .collect();
        // Per-rung funnel counters for /metrics (the ledger carries the
        // same story per trial; these are the cheap live aggregates).
        let label = rung.to_string();
        aml_telemetry::counter_add_labeled("search.rung_promotions", &label, jobs.len() as u64);
        aml_telemetry::counter_add_labeled(
            "search.rung_eliminations",
            &label,
            (entered - jobs.len()) as u64,
        );
        fraction *= 2.0;
        rung += 1;
    }
    Ok((jobs, rung))
}

fn subsample_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    use aml_rng::seq::SliceRandom;
    use aml_rng::SeedableRng;
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = aml_rng::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::{split::train_test_split, synth};

    fn splits() -> (Dataset, Dataset) {
        let ds = synth::two_moons(300, 0.2, 5).unwrap();
        train_test_split(&ds, 0.25, true, 1).unwrap()
    }

    #[test]
    fn random_search_returns_sorted_leaderboard() {
        let (train, val) = splits();
        let out = run_search(
            SearchStrategy::Random,
            8,
            &ModelFamily::ALL,
            &train,
            &val,
            3,
            1,
            &SearchLimits::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 8);
        for w in out.windows(2) {
            assert!(w[0].val_score >= w[1].val_score);
        }
        assert!(
            out[0].val_score > 0.8,
            "best candidate {}",
            out[0].val_score
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let (train, val) = splits();
        let seq = run_search(
            SearchStrategy::Random,
            6,
            &ModelFamily::ALL,
            &train,
            &val,
            9,
            1,
            &SearchLimits::default(),
        )
        .unwrap();
        let par = run_search(
            SearchStrategy::Random,
            6,
            &ModelFamily::ALL,
            &train,
            &val,
            9,
            4,
            &SearchLimits::default(),
        )
        .unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.val_score, b.val_score);
        }
    }

    #[test]
    fn halving_prunes_candidates() {
        let (train, val) = splits();
        let out = run_search(
            SearchStrategy::SuccessiveHalving,
            12,
            &ModelFamily::ALL,
            &train,
            &val,
            7,
            1,
            &SearchLimits::default(),
        )
        .unwrap();
        assert!(out.len() < 12, "halving should prune, kept {}", out.len());
        assert!(out.len() >= 2);
    }

    #[test]
    fn round_robin_covers_families() {
        let fams = assign_families(10, &ModelFamily::ALL);
        for f in &ModelFamily::ALL {
            assert!(fams.contains(f));
        }
    }

    #[test]
    fn zero_candidates_rejected() {
        let (train, val) = splits();
        assert!(run_search(
            SearchStrategy::Random,
            0,
            &ModelFamily::ALL,
            &train,
            &val,
            0,
            1,
            &SearchLimits::default()
        )
        .is_err());
    }

    #[test]
    fn restricted_family_list_respected() {
        let (train, val) = splits();
        let out = run_search(
            SearchStrategy::Random,
            4,
            &[ModelFamily::Knn],
            &train,
            &val,
            2,
            1,
            &SearchLimits::default(),
        )
        .unwrap();
        assert!(out.iter().all(|c| c.config.family() == ModelFamily::Knn));
    }

    /// Fault-plan installs mutate process-global state; serialize the
    /// sandbox tests through one lock.
    static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn hold_faults() -> std::sync::MutexGuard<'static, ()> {
        FAULT_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn injected_panic_is_sandboxed_and_search_survives() {
        let _guard = hold_faults();
        aml_faults::install(aml_faults::FaultPlan::parse("trial_panic@0,trial_panic@2").unwrap());
        let (train, val) = splits();
        let out = run_search(
            SearchStrategy::Random,
            6,
            &ModelFamily::ALL,
            &train,
            &val,
            3,
            1,
            &SearchLimits::default(),
        );
        aml_faults::clear();
        let out = out.unwrap();
        assert_eq!(out.len(), 4, "panicking trials 0 and 2 must be dropped");
        assert!(out.iter().all(|c| c.trial != 0 && c.trial != 2));
    }

    #[test]
    fn injected_panic_is_sandboxed_in_parallel_mode_too() {
        let _guard = hold_faults();
        aml_faults::install(aml_faults::FaultPlan::parse("trial_panic@1").unwrap());
        let (train, val) = splits();
        let out = run_search(
            SearchStrategy::Random,
            6,
            &ModelFamily::ALL,
            &train,
            &val,
            3,
            4,
            &SearchLimits::default(),
        );
        aml_faults::clear();
        let out = out.unwrap();
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|c| c.trial != 1));
    }

    #[test]
    fn injected_nan_score_is_rejected_as_nonfinite() {
        let _guard = hold_faults();
        aml_faults::install(aml_faults::FaultPlan::parse("trial_nan@3").unwrap());
        let (train, val) = splits();
        let out = run_search(
            SearchStrategy::Random,
            6,
            &ModelFamily::ALL,
            &train,
            &val,
            3,
            1,
            &SearchLimits::default(),
        );
        aml_faults::clear();
        let out = out.unwrap();
        assert_eq!(out.len(), 5, "NaN-scoring trial 3 must be dropped");
        assert!(out.iter().all(|c| c.trial != 3));
        assert!(out.iter().all(|c| c.val_score.is_finite()));
    }

    #[test]
    fn slow_trial_times_out_under_budget() {
        let _guard = hold_faults();
        aml_faults::install(aml_faults::FaultPlan::parse("trial_slow@2:30000ms").unwrap());
        let (train, val) = splits();
        let limits = SearchLimits {
            max_trial_time: Some(Duration::from_millis(300)),
            min_trials: 1,
        };
        let out = run_search(
            SearchStrategy::Random,
            4,
            &ModelFamily::ALL,
            &train,
            &val,
            3,
            1,
            &limits,
        );
        aml_faults::clear();
        let out = out.unwrap();
        assert_eq!(out.len(), 3, "the hung trial must be abandoned");
        assert!(out.iter().all(|c| c.trial != 2));
    }

    #[test]
    fn budgeted_path_matches_unbudgeted_results() {
        let (train, val) = splits();
        let plain = run_search(
            SearchStrategy::Random,
            6,
            &ModelFamily::ALL,
            &train,
            &val,
            9,
            1,
            &SearchLimits::default(),
        )
        .unwrap();
        let budgeted = run_search(
            SearchStrategy::Random,
            6,
            &ModelFamily::ALL,
            &train,
            &val,
            9,
            2,
            &SearchLimits {
                max_trial_time: Some(Duration::from_secs(120)),
                min_trials: 1,
            },
        )
        .unwrap();
        assert_eq!(plain.len(), budgeted.len());
        for (a, b) in plain.iter().zip(&budgeted) {
            assert_eq!(a.config, b.config);
            assert_eq!(a.val_score, b.val_score);
        }
    }

    #[test]
    fn min_trials_floor_is_enforced() {
        let _guard = hold_faults();
        // Panic every trial but one; require two survivors.
        aml_faults::install(
            aml_faults::FaultPlan::parse("trial_panic@0,trial_panic@1,trial_panic@2").unwrap(),
        );
        let (train, val) = splits();
        let out = run_search(
            SearchStrategy::Random,
            4,
            &ModelFamily::ALL,
            &train,
            &val,
            3,
            1,
            &SearchLimits {
                max_trial_time: None,
                min_trials: 2,
            },
        );
        aml_faults::clear();
        match out {
            Err(AutoMlError::Search(SearchError::TooFewSurvivors { survived, required })) => {
                assert_eq!((survived, required), (1, 2));
            }
            other => panic!("expected TooFewSurvivors, got {:?}", other.map(|v| v.len())),
        }
    }

    #[test]
    fn zero_min_trials_rejected() {
        let (train, val) = splits();
        assert!(matches!(
            run_search(
                SearchStrategy::Random,
                4,
                &ModelFamily::ALL,
                &train,
                &val,
                0,
                1,
                &SearchLimits {
                    max_trial_time: None,
                    min_trials: 0,
                },
            ),
            Err(AutoMlError::InvalidConfig(_))
        ));
    }
}
