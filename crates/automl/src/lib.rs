//! # aml-automl
//!
//! A from-scratch mini-AutoML system standing in for auto-sklearn
//! (the paper's AutoML of choice). The pipeline is:
//!
//! 1. **Search** ([`search`]): sample candidate configurations (model
//!    family, hyperparameters, scaler) from the search space ([`space`]),
//!    fit each on a training split, and score on a held-out validation
//!    split — random search by default, successive halving optionally.
//! 2. **Ensemble selection** ([`selection`]): Caruana-style greedy forward
//!    selection *with replacement* over the validation predictions, the same
//!    algorithm auto-sklearn uses to build its final ensemble.
//! 3. The result ([`automl::FittedAutoMl`]) exposes
//!    both the combined [`SoftVotingEnsemble`](aml_models::SoftVotingEnsemble) and
//!    the individual members — the paper's feedback algorithms need the
//!    members ("for each model in ℳ we apply a model-agnostic
//!    interpretation algorithm").
//!
//! Runs are **deterministic given a seed** but intentionally seed-sensitive:
//! the paper's Cross-ALE variant relies on independent AutoML runs producing
//! different model bags, which different seeds provide.
//!
//! ## Example
//!
//! ```
//! use aml_automl::{AutoMl, AutoMlConfig};
//! use aml_dataset::synth;
//! use aml_models::Classifier;
//!
//! let ds = synth::two_moons(300, 0.2, 7).unwrap();
//! let cfg = AutoMlConfig { n_candidates: 8, seed: 1, ..Default::default() };
//! let fitted = AutoMl::new(cfg).fit(&ds).unwrap();
//! assert!(fitted.ensemble().len() >= 1);
//! let acc = fitted.validation_score();
//! assert!(acc > 0.8, "validation balanced accuracy {acc}");
//! ```

pub mod automl;
pub mod search;
pub mod selection;
pub mod space;

pub use automl::{AutoMl, AutoMlConfig, FittedAutoMl};
pub use search::{SearchLimits, SearchStrategy, TrainedCandidate};
pub use space::{CandidateConfig, ModelFamily};

/// Typed failures of the candidate search itself (as opposed to
/// individual trial failures, which are ledgered and survived).
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// A training worker thread died outside the per-trial sandbox —
    /// a harness bug, not a trial failure.
    WorkerPanicked(String),
    /// Fewer trials survived the search than the configured
    /// `min_trials` floor: the leaderboard is too thin to trust
    /// ensemble selection or ALE feedback.
    TooFewSurvivors {
        /// Trials that produced a usable model.
        survived: usize,
        /// The configured floor.
        required: usize,
    },
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::WorkerPanicked(m) => {
                write!(f, "candidate training worker panicked: {m}")
            }
            SearchError::TooFewSurvivors { survived, required } => write!(
                f,
                "only {survived} trial(s) survived the search, below the min_trials floor of {required}"
            ),
        }
    }
}

impl std::error::Error for SearchError {}

/// Errors from the AutoML layer.
#[derive(Debug, Clone, PartialEq)]
pub enum AutoMlError {
    /// Invalid configuration value.
    InvalidConfig(String),
    /// Every sampled candidate failed to train.
    AllCandidatesFailed(String),
    /// The search aborted (worker harness failure or too few survivors).
    Search(SearchError),
    /// Error from the model layer.
    Model(aml_models::ModelError),
    /// Error from the dataset layer.
    Data(aml_dataset::DataError),
}

impl std::fmt::Display for AutoMlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutoMlError::InvalidConfig(m) => write!(f, "invalid AutoML config: {m}"),
            AutoMlError::AllCandidatesFailed(m) => {
                write!(f, "every AutoML candidate failed to train: {m}")
            }
            AutoMlError::Search(e) => write!(f, "search error: {e}"),
            AutoMlError::Model(e) => write!(f, "model error: {e}"),
            AutoMlError::Data(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for AutoMlError {}

impl From<SearchError> for AutoMlError {
    fn from(e: SearchError) -> Self {
        AutoMlError::Search(e)
    }
}

impl From<aml_models::ModelError> for AutoMlError {
    fn from(e: aml_models::ModelError) -> Self {
        AutoMlError::Model(e)
    }
}

impl From<aml_dataset::DataError> for AutoMlError {
    fn from(e: aml_dataset::DataError) -> Self {
        AutoMlError::Data(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AutoMlError>;
