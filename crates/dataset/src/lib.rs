//! # aml-dataset
//!
//! Tabular dataset representation shared by every crate in the workspace:
//! a dense row-major feature matrix with integer class labels, per-feature
//! metadata (name + value domain `R(X_s)` — the feedback algorithm needs
//! the domain of every feature to suggest sampling regions), train/test
//! splitting utilities implementing the paper's evaluation protocols
//! (stratified splits, the "divide the test data into 20 test sets"
//! scheme, repeated resplits), CSV I/O, and synthetic toy generators used
//! by tests and the quickstart example.
//!
//! ## Example
//!
//! ```
//! use aml_dataset::{synth, split::train_test_split};
//!
//! let ds = synth::gaussian_blobs(200, 2, 3, 1.5, 42).unwrap();
//! let (train, test) = train_test_split(&ds, 0.25, true, 7).unwrap();
//! assert_eq!(train.n_rows() + test.n_rows(), 200);
//! assert_eq!(train.n_features(), 2);
//! ```

pub mod csv;
pub mod dataset;
pub mod feature;
pub mod split;
pub mod synth;

pub use dataset::Dataset;
pub use feature::{FeatureDomain, FeatureMeta};
pub use split::{train_test_split, KFold};

/// Errors produced by dataset manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A row had the wrong number of features.
    DimensionMismatch {
        /// Expected number of features.
        expected: usize,
        /// Number of features actually provided.
        got: usize,
    },
    /// The dataset (or a requested subset) is empty.
    Empty,
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Exclusive bound.
        bound: usize,
    },
    /// A fraction/probability argument was outside its valid range.
    InvalidFraction(f64),
    /// Label value exceeds the declared number of classes.
    InvalidLabel {
        /// Offending label.
        label: usize,
        /// Declared class count.
        n_classes: usize,
    },
    /// CSV parsing failed before any row was read (empty input, bad
    /// header shape). Row-level failures use [`DataError::Csv`].
    Parse(String),
    /// CSV parsing failed at a specific line. `line` is 1-based and
    /// counts the header, so it matches what an editor or `sed -n`
    /// shows for the offending row.
    Csv {
        /// 1-based line number in the input text.
        line: usize,
        /// What went wrong on that line.
        message: String,
    },
    /// Underlying I/O failure (file read/write).
    Io(String),
    /// A feature value was NaN or infinite.
    NonFinite,
    /// Stratified splitting needs every class present in sufficient count.
    InsufficientClassCount {
        /// The class that was too rare.
        class: usize,
        /// How many samples of it existed.
        have: usize,
        /// How many were needed.
        need: usize,
    },
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::DimensionMismatch { expected, got } => {
                write!(f, "row has {got} features, dataset expects {expected}")
            }
            DataError::Empty => write!(f, "dataset is empty"),
            DataError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (< {bound})")
            }
            DataError::InvalidFraction(x) => write!(f, "fraction {x} outside (0, 1)"),
            DataError::InvalidLabel { label, n_classes } => {
                write!(f, "label {label} >= n_classes {n_classes}")
            }
            DataError::Parse(m) => write!(f, "CSV parse error: {m}"),
            DataError::Csv { line, message } => {
                write!(f, "CSV parse error at line {line}: {message}")
            }
            DataError::Io(m) => write!(f, "I/O error: {m}"),
            DataError::NonFinite => write!(f, "feature value is NaN or infinite"),
            DataError::InsufficientClassCount { class, have, need } => {
                write!(f, "class {class} has {have} samples, need at least {need}")
            }
        }
    }
}

impl std::error::Error for DataError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
