//! Synthetic toy datasets for tests, docs, and the quickstart example.
//!
//! These are deliberately simple, deterministic generators: Gaussian blobs
//! (linearly separable-ish multiclass), two interleaved moons (nonlinear
//! binary), and noisy XOR (a problem that defeats linear models — handy for
//! checking that the AutoML search actually prefers trees there).

use crate::dataset::Dataset;
use crate::{DataError, Result};
use aml_rng::rngs::StdRng;
use aml_rng::{Rng, SeedableRng};

/// Sample from a standard normal via Box–Muller (keeps us off rand_distr;
/// the basic `rand` crate only gives uniform draws).
pub(crate) fn normal(rng: &mut StdRng) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// `n` points in `dim` dimensions from `n_classes` Gaussian blobs with the
/// given per-axis standard deviation. Blob centers are placed deterministically
/// on a scaled lattice so classes are separable when `std` is small.
///
/// Rows are generated class-round-robin so class counts differ by at most 1.
pub fn gaussian_blobs(
    n: usize,
    dim: usize,
    n_classes: usize,
    std: f64,
    seed: u64,
) -> Result<Dataset> {
    if n == 0 || dim == 0 || n_classes == 0 {
        return Err(DataError::Empty);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Deterministic, well-separated centers.
    let centers: Vec<Vec<f64>> = (0..n_classes)
        .map(|c| {
            (0..dim)
                .map(|d| (((c * 7 + d * 3) % (n_classes * 2)) as f64) * 4.0)
                .collect()
        })
        .collect();
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % n_classes;
        let row: Vec<f64> = centers[c]
            .iter()
            .map(|&m| m + std * normal(&mut rng))
            .collect();
        rows.push(row);
        labels.push(c);
    }
    Dataset::from_rows(&rows, &labels, n_classes)
}

/// Two interleaved half-circles ("moons") with Gaussian noise — a binary
/// nonlinear benchmark.
pub fn two_moons(n: usize, noise: f64, seed: u64) -> Result<Dataset> {
    if n < 2 {
        return Err(DataError::Empty);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let t = std::f64::consts::PI * rng.gen::<f64>();
        let (x, y, label) = if i % 2 == 0 {
            (t.cos(), t.sin(), 0usize)
        } else {
            (1.0 - t.cos(), 0.5 - t.sin(), 1usize)
        };
        rows.push(vec![
            x + noise * normal(&mut rng),
            y + noise * normal(&mut rng),
        ]);
        labels.push(label);
    }
    Dataset::from_rows(&rows, &labels, 2)
}

/// Noisy XOR in the unit square: label = (x > 0.5) ⊕ (y > 0.5), with a
/// fraction `flip` of labels flipped at random. Linear models score ~50%
/// here while trees/forests approach `1 - flip`.
pub fn noisy_xor(n: usize, flip: f64, seed: u64) -> Result<Dataset> {
    if n < 2 {
        return Err(DataError::Empty);
    }
    if !(0.0..=0.5).contains(&flip) {
        return Err(DataError::InvalidFraction(flip));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let x: f64 = rng.gen();
        let y: f64 = rng.gen();
        let mut label = usize::from((x > 0.5) != (y > 0.5));
        if rng.gen::<f64>() < flip {
            label = 1 - label;
        }
        rows.push(vec![x, y]);
        labels.push(label);
    }
    Dataset::from_rows(&rows, &labels, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_have_balanced_classes() {
        let ds = gaussian_blobs(90, 2, 3, 0.5, 1).unwrap();
        assert_eq!(ds.class_counts(), vec![30, 30, 30]);
        assert_eq!(ds.n_features(), 2);
    }

    #[test]
    fn blobs_deterministic() {
        let a = gaussian_blobs(50, 3, 2, 1.0, 42).unwrap();
        let b = gaussian_blobs(50, 3, 2, 1.0, 42).unwrap();
        assert_eq!(a, b);
        let c = gaussian_blobs(50, 3, 2, 1.0, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn blobs_separable_when_tight() {
        // With tiny std the nearest center classifies perfectly.
        let ds = gaussian_blobs(60, 2, 2, 0.01, 7).unwrap();
        // Class 0 center: (0,12)*... just check classes have distinct means.
        let mut means = vec![vec![0.0; 2]; 2];
        let counts = ds.class_counts();
        for i in 0..ds.n_rows() {
            let c = ds.label(i);
            for (j, m) in means[c].iter_mut().enumerate() {
                *m += ds.row(i)[j] / counts[c] as f64;
            }
        }
        let dist: f64 = means[0]
            .iter()
            .zip(&means[1])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 1.0, "centers must be separated, got {dist}");
    }

    #[test]
    fn moons_binary() {
        let ds = two_moons(100, 0.05, 3).unwrap();
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.class_counts(), vec![50, 50]);
    }

    #[test]
    fn xor_rejects_large_flip() {
        assert!(noisy_xor(10, 0.9, 0).is_err());
    }

    #[test]
    fn xor_labels_match_quadrants_when_noise_free() {
        let ds = noisy_xor(200, 0.0, 5).unwrap();
        for i in 0..ds.n_rows() {
            let r = ds.row(i);
            let expect = usize::from((r[0] > 0.5) != (r[1] > 0.5));
            assert_eq!(ds.label(i), expect);
        }
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_var() {
        let mut rng = StdRng::seed_from_u64(123);
        let xs: Vec<f64> = (0..20000).map(|_| normal(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!(m.abs() < 0.05, "mean {m}");
        assert!((v - 1.0).abs() < 0.1, "var {v}");
    }
}
