//! Minimal CSV I/O for datasets.
//!
//! Format: a header row with feature names followed by a `label` column;
//! each data row holds the feature values and the class *name*. This is the
//! interchange format the bench harness uses to dump generated datasets so
//! experiments can be re-run on identical data.
//!
//! The parser is intentionally strict (no quoting, no embedded commas) —
//! every file it reads is produced by [`write_csv`]/[`to_csv_string`].

use crate::dataset::Dataset;
use crate::feature::FeatureMeta;
use crate::{DataError, Result};
use std::io::Write;
use std::path::Path;

/// Serialize a dataset to CSV text.
pub fn to_csv_string(ds: &Dataset) -> String {
    let mut out = String::new();
    let names: Vec<&str> = ds.features().iter().map(|f| f.name.as_str()).collect();
    out.push_str(&names.join(","));
    if !names.is_empty() {
        out.push(',');
    }
    out.push_str("label\n");
    for i in 0..ds.n_rows() {
        let row = ds.row(i);
        for v in row {
            // 17 significant digits round-trips f64 exactly.
            out.push_str(&format!("{v:.17e},"));
        }
        out.push_str(&ds.class_names()[ds.label(i)]);
        out.push('\n');
    }
    out
}

/// Write a dataset to a CSV file at `path`.
pub fn write_csv(ds: &Dataset, path: &Path) -> Result<()> {
    let mut f = std::fs::File::create(path).map_err(|e| DataError::Io(e.to_string()))?;
    f.write_all(to_csv_string(ds).as_bytes())
        .map_err(|e| DataError::Io(e.to_string()))
}

/// Parse a dataset from CSV text produced by [`to_csv_string`].
///
/// Feature domains are inferred from the data (as in
/// [`Dataset::from_rows`]) but feature *names* come from the header, and
/// class names/indices from the label column (first-appearance order).
pub fn from_csv_string(text: &str) -> Result<Dataset> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(DataError::Parse("empty file".into()))?;
    let cols: Vec<&str> = header.split(',').collect();
    if cols.last() != Some(&"label") {
        return Err(DataError::Csv {
            line: 1,
            message: "last header column must be `label`".into(),
        });
    }
    let feat_names: Vec<String> = cols[..cols.len() - 1]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let n_features = feat_names.len();

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut label_names: Vec<String> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != n_features + 1 {
            return Err(DataError::Csv {
                line: lineno + 2,
                message: format!("expected {} columns, got {}", n_features + 1, parts.len()),
            });
        }
        let mut row = Vec::with_capacity(n_features);
        for (col, p) in parts[..n_features].iter().enumerate() {
            row.push(p.parse::<f64>().map_err(|e| DataError::Csv {
                line: lineno + 2,
                message: format!("column {} ('{p}'): {e}", col + 1),
            })?);
        }
        let label_name = parts[n_features].to_string();
        let label = match label_names.iter().position(|l| l == &label_name) {
            Some(i) => i,
            None => {
                label_names.push(label_name);
                label_names.len() - 1
            }
        };
        rows.push(row);
        labels.push(label);
    }
    if rows.is_empty() {
        return Err(DataError::Empty);
    }
    let mut ds = Dataset::from_rows(&rows, &labels, label_names.len())?;
    // Restore the original feature names (domains stay inferred).
    let metas: Vec<FeatureMeta> = ds
        .features()
        .iter()
        .zip(&feat_names)
        .map(|(m, name)| FeatureMeta {
            name: name.clone(),
            domain: m.domain,
        })
        .collect();
    ds.set_features(metas)?;
    // Restore class names by rebuilding with explicit names.
    let mut out = Dataset::new(ds.features().to_vec(), label_names)?;
    for i in 0..ds.n_rows() {
        out.push_row(ds.row(i), ds.label(i))?;
    }
    Ok(out)
}

/// Read a dataset from a CSV file.
pub fn read_csv(path: &Path) -> Result<Dataset> {
    let text = std::fs::read_to_string(path).map_err(|e| DataError::Io(e.to_string()))?;
    from_csv_string(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn round_trip_preserves_everything_observable() {
        let ds = synth::gaussian_blobs(40, 3, 2, 1.0, 9).unwrap();
        let text = to_csv_string(&ds);
        let back = from_csv_string(&text).unwrap();
        assert_eq!(back.n_rows(), ds.n_rows());
        assert_eq!(back.n_features(), ds.n_features());
        assert_eq!(back.labels(), ds.labels());
        for i in 0..ds.n_rows() {
            for j in 0..ds.n_features() {
                assert!(
                    (back.row(i)[j] - ds.row(i)[j]).abs() < 1e-12,
                    "value mismatch at ({i},{j})"
                );
            }
        }
        let names: Vec<&str> = back.features().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["x0", "x1", "x2"]);
    }

    #[test]
    fn file_round_trip() {
        let ds = synth::two_moons(20, 0.1, 4).unwrap();
        let dir = std::env::temp_dir().join("aml_dataset_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("moons.csv");
        write_csv(&ds, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.n_rows(), 20);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_missing_label_header() {
        assert!(matches!(
            from_csv_string("a,b\n1,2\n"),
            Err(DataError::Csv { line: 1, .. })
        ));
    }

    #[test]
    fn ragged_row_reports_its_line_number() {
        // The ragged row is the 3rd line of the file (header + 2 rows).
        let e = from_csv_string("a,label\n1.0,x\n1.0,2.0,x\n").unwrap_err();
        match &e {
            DataError::Csv { line, message } => {
                assert_eq!(*line, 3);
                assert!(message.contains("expected 2 columns, got 3"), "{message}");
            }
            other => panic!("expected DataError::Csv, got {other:?}"),
        }
        assert_eq!(
            e.to_string(),
            "CSV parse error at line 3: expected 2 columns, got 3"
        );
    }

    #[test]
    fn unparseable_number_reports_line_and_column() {
        let e = from_csv_string("a,b,label\n1.0,2.0,x\n1.0,foo,x\n").unwrap_err();
        match &e {
            DataError::Csv { line, message } => {
                assert_eq!(*line, 3);
                assert!(message.contains("column 2"), "{message}");
                assert!(message.contains("'foo'"), "{message}");
            }
            other => panic!("expected DataError::Csv, got {other:?}"),
        }
    }

    #[test]
    fn blank_lines_do_not_shift_reported_line_numbers() {
        // Line 4 is the bad one; line 3 is blank and skipped.
        let e = from_csv_string("a,label\n1.0,x\n\nbad,x\n").unwrap_err();
        assert!(
            matches!(e, DataError::Csv { line: 4, .. }),
            "got {e:?} instead of a line-4 error"
        );
    }

    #[test]
    fn class_name_order_is_first_appearance() {
        let ds = from_csv_string("a,label\n1.0,zebra\n2.0,ant\n3.0,zebra\n").unwrap();
        assert_eq!(ds.class_names(), &["zebra".to_string(), "ant".to_string()]);
        assert_eq!(ds.labels(), &[0, 1, 0]);
    }

    #[test]
    fn empty_body_is_error() {
        assert!(from_csv_string("a,label\n").is_err());
    }
}
