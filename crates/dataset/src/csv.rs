//! Minimal CSV I/O for datasets.
//!
//! Format: a header row with feature names followed by a `label` column;
//! each data row holds the feature values and the class *name*. This is the
//! interchange format the bench harness uses to dump generated datasets so
//! experiments can be re-run on identical data.
//!
//! Each feature's declared domain rides along in its header cell as a
//! `{c:lo:hi}` (continuous) or `{i:lo:hi}` (integer) suffix — e.g.
//! `pkt_size{c:0:1500}` — so a cached dataset reloads with exactly the
//! domains it was generated with. This matters for resume: ALE grids and
//! Uniform sampling draw from the declared domain `R(X_s)`, and a domain
//! re-inferred from data min/max would silently shift them. The label
//! column likewise declares the class order, `label{rest:scream}`, so
//! class *indices* survive the round trip (first-appearance order would
//! flip class 0/1 whenever the first row isn't class 0). Plain `name` /
//! `label` headers (older files, hand-written fixtures) still parse,
//! falling back to inference and first-appearance order.
//!
//! The parser is intentionally strict (no quoting, no embedded commas) —
//! every file it reads is produced by [`write_csv`]/[`to_csv_string`].

use crate::dataset::Dataset;
use crate::feature::{FeatureDomain, FeatureMeta};
use crate::{DataError, Result};
use std::io::Write;
use std::path::Path;

/// Render a header cell: feature name plus its domain suffix. `{}` on f64
/// is the shortest representation that round-trips exactly, so the suffix
/// never loses precision.
fn header_cell(meta: &FeatureMeta) -> String {
    match meta.domain {
        FeatureDomain::Continuous { lo, hi } => format!("{}{{c:{lo}:{hi}}}", meta.name),
        FeatureDomain::Integer { lo, hi } => format!("{}{{i:{lo}:{hi}}}", meta.name),
    }
}

/// Split a header cell into the feature name and, when a `{...}` suffix is
/// present, its declared domain. A cell with no suffix is just a name.
fn parse_header_cell(cell: &str) -> Result<(String, Option<FeatureDomain>)> {
    let Some(open) = cell.find('{') else {
        return Ok((cell.to_string(), None));
    };
    let bad = |why: &str| DataError::Csv {
        line: 1,
        message: format!("malformed domain suffix in header cell '{cell}': {why}"),
    };
    if !cell.ends_with('}') {
        return Err(bad("expected trailing '}'"));
    }
    let name = cell[..open].to_string();
    let body = &cell[open + 1..cell.len() - 1];
    let parts: Vec<&str> = body.split(':').collect();
    let [kind, lo, hi] = parts[..] else {
        return Err(bad("expected {c:lo:hi} or {i:lo:hi}"));
    };
    let domain = match kind {
        "c" => FeatureDomain::continuous(
            lo.parse::<f64>().map_err(|e| bad(&format!("lo: {e}")))?,
            hi.parse::<f64>().map_err(|e| bad(&format!("hi: {e}")))?,
        ),
        "i" => FeatureDomain::integer(
            lo.parse::<i64>().map_err(|e| bad(&format!("lo: {e}")))?,
            hi.parse::<i64>().map_err(|e| bad(&format!("hi: {e}")))?,
        ),
        other => return Err(bad(&format!("unknown domain kind '{other}'"))),
    };
    Ok((name, Some(domain)))
}

/// Parse the label header cell: `label` (first-appearance class order) or
/// `label{c0:c1:...}` (declared class order).
fn parse_label_cell(cell: &str) -> Result<Option<Vec<String>>> {
    if cell == "label" {
        return Ok(None);
    }
    let bad = |why: &str| DataError::Csv {
        line: 1,
        message: format!("malformed label header cell '{cell}': {why}"),
    };
    let body = cell
        .strip_prefix("label{")
        .and_then(|rest| rest.strip_suffix('}'))
        .ok_or_else(|| bad("expected `label` or `label{c0:c1:...}`"))?;
    let names: Vec<String> = body.split(':').map(String::from).collect();
    if names.iter().any(String::is_empty) {
        return Err(bad("empty class name"));
    }
    Ok(Some(names))
}

/// Serialize a dataset to CSV text.
pub fn to_csv_string(ds: &Dataset) -> String {
    let mut out = String::new();
    let cells: Vec<String> = ds.features().iter().map(header_cell).collect();
    out.push_str(&cells.join(","));
    if !cells.is_empty() {
        out.push(',');
    }
    out.push_str(&format!("label{{{}}}\n", ds.class_names().join(":")));
    for i in 0..ds.n_rows() {
        let row = ds.row(i);
        for v in row {
            // 17 significant digits round-trips f64 exactly.
            out.push_str(&format!("{v:.17e},"));
        }
        out.push_str(&ds.class_names()[ds.label(i)]);
        out.push('\n');
    }
    out
}

/// Write a dataset to a CSV file at `path`.
pub fn write_csv(ds: &Dataset, path: &Path) -> Result<()> {
    let mut f = std::fs::File::create(path).map_err(|e| DataError::Io(e.to_string()))?;
    f.write_all(to_csv_string(ds).as_bytes())
        .map_err(|e| DataError::Io(e.to_string()))
}

/// Parse a dataset from CSV text produced by [`to_csv_string`].
///
/// Feature names come from the header, and class names/indices from the
/// label column (first-appearance order). Domains come from `{c:lo:hi}` /
/// `{i:lo:hi}` header suffixes when present; a plain `name` header falls
/// back to inference from the data (as in [`Dataset::from_rows`]).
pub fn from_csv_string(text: &str) -> Result<Dataset> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(DataError::Parse("empty file".into()))?;
    let cols: Vec<&str> = header.split(',').collect();
    let label_cell = *cols.last().unwrap_or(&"");
    if label_cell != "label" && !label_cell.starts_with("label{") {
        return Err(DataError::Csv {
            line: 1,
            message: "last header column must be `label`".into(),
        });
    }
    let declared_classes = parse_label_cell(label_cell)?;
    let mut feat_names: Vec<String> = Vec::with_capacity(cols.len() - 1);
    let mut feat_domains: Vec<Option<FeatureDomain>> = Vec::with_capacity(cols.len() - 1);
    for cell in &cols[..cols.len() - 1] {
        let (name, domain) = parse_header_cell(cell)?;
        feat_names.push(name);
        feat_domains.push(domain);
    }
    let n_features = feat_names.len();

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let declared = declared_classes.is_some();
    let mut label_names: Vec<String> = declared_classes.unwrap_or_default();
    let mut labels: Vec<usize> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != n_features + 1 {
            return Err(DataError::Csv {
                line: lineno + 2,
                message: format!("expected {} columns, got {}", n_features + 1, parts.len()),
            });
        }
        let mut row = Vec::with_capacity(n_features);
        for (col, p) in parts[..n_features].iter().enumerate() {
            row.push(p.parse::<f64>().map_err(|e| DataError::Csv {
                line: lineno + 2,
                message: format!("column {} ('{p}'): {e}", col + 1),
            })?);
        }
        let label_name = parts[n_features].to_string();
        let label = match label_names.iter().position(|l| l == &label_name) {
            Some(i) => i,
            None if declared => {
                return Err(DataError::Csv {
                    line: lineno + 2,
                    message: format!(
                        "label '{label_name}' is not in the declared class list {label_names:?}"
                    ),
                });
            }
            None => {
                label_names.push(label_name);
                label_names.len() - 1
            }
        };
        rows.push(row);
        labels.push(label);
    }
    if rows.is_empty() {
        return Err(DataError::Empty);
    }
    let mut ds = Dataset::from_rows(&rows, &labels, label_names.len())?;
    // Restore the original feature names and any declared domains
    // (plain-name headers keep the inferred domain).
    let metas: Vec<FeatureMeta> = ds
        .features()
        .iter()
        .zip(feat_names.iter().zip(&feat_domains))
        .map(|(m, (name, declared))| FeatureMeta {
            name: name.clone(),
            domain: declared.unwrap_or(m.domain),
        })
        .collect();
    ds.set_features(metas)?;
    // Restore class names by rebuilding with explicit names.
    let mut out = Dataset::new(ds.features().to_vec(), label_names)?;
    for i in 0..ds.n_rows() {
        out.push_row(ds.row(i), ds.label(i))?;
    }
    Ok(out)
}

/// Read a dataset from a CSV file.
pub fn read_csv(path: &Path) -> Result<Dataset> {
    let text = std::fs::read_to_string(path).map_err(|e| DataError::Io(e.to_string()))?;
    from_csv_string(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn round_trip_preserves_everything_observable() {
        let ds = synth::gaussian_blobs(40, 3, 2, 1.0, 9).unwrap();
        let text = to_csv_string(&ds);
        let back = from_csv_string(&text).unwrap();
        assert_eq!(back.n_rows(), ds.n_rows());
        assert_eq!(back.n_features(), ds.n_features());
        assert_eq!(back.labels(), ds.labels());
        for i in 0..ds.n_rows() {
            for j in 0..ds.n_features() {
                assert!(
                    (back.row(i)[j] - ds.row(i)[j]).abs() < 1e-12,
                    "value mismatch at ({i},{j})"
                );
            }
        }
        let names: Vec<&str> = back.features().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["x0", "x1", "x2"]);
        // Declared domains survive the round trip exactly — the cache
        // loader must not fall back to narrower data-inferred bounds.
        assert_eq!(back.features(), ds.features());
    }

    #[test]
    fn declared_domains_round_trip_exactly() {
        let features = vec![
            FeatureMeta::continuous("pkt_size", -0.125, 1500.0),
            FeatureMeta::integer("ttl", 1, 255),
            FeatureMeta::continuous("jitter", 1.0e-9, 0.1 + 0.2),
        ];
        let mut ds = Dataset::new(features.clone(), vec!["a".into(), "b".into()]).unwrap();
        ds.push_row(&[700.0, 64.0, 0.05], 0).unwrap();
        ds.push_row(&[800.0, 63.0, 0.06], 1).unwrap();
        let back = from_csv_string(&to_csv_string(&ds)).unwrap();
        // The data spans a tiny fraction of each declared domain; the
        // declared bounds must win over inference regardless.
        assert_eq!(back.features(), &features[..]);
    }

    #[test]
    fn plain_name_header_still_infers_domains() {
        let ds = from_csv_string("a,label\n1.0,x\n3.0,y\n").unwrap();
        assert_eq!(ds.features()[0].name, "a");
        // Inferred (data min/max with margin), not declared.
        let d = ds.features()[0].domain;
        assert!(
            d.lo() < 1.0 && d.hi() > 3.0,
            "expected margined bounds, got {d:?}"
        );
    }

    #[test]
    fn declared_class_order_beats_first_appearance() {
        // class 0 ("rest") never appears first in the data — a
        // first-appearance loader would flip the label indices, which is
        // exactly the divergence that broke checkpoint resume.
        let ds = from_csv_string("a,label{rest:scream}\n1.0,scream\n2.0,rest\n").unwrap();
        assert_eq!(
            ds.class_names(),
            &["rest".to_string(), "scream".to_string()]
        );
        assert_eq!(ds.labels(), &[1, 0]);
        let back = from_csv_string(&to_csv_string(&ds)).unwrap();
        assert_eq!(back.class_names(), ds.class_names());
        assert_eq!(back.labels(), ds.labels());
    }

    #[test]
    fn declared_classes_preserve_a_class_with_no_rows() {
        let ds = from_csv_string("a,label{x:y:z}\n1.0,x\n2.0,z\n").unwrap();
        assert_eq!(ds.class_names().len(), 3);
        assert_eq!(ds.labels(), &[0, 2]);
    }

    #[test]
    fn undeclared_label_in_a_row_is_a_typed_error() {
        let e = from_csv_string("a,label{x:y}\n1.0,x\n2.0,wolf\n").unwrap_err();
        match &e {
            DataError::Csv { line, message } => {
                assert_eq!(*line, 3);
                assert!(message.contains("'wolf'"), "{message}");
            }
            other => panic!("expected DataError::Csv, got {other:?}"),
        }
    }

    #[test]
    fn malformed_label_suffix_is_a_header_error() {
        for header in ["label{", "label{}", "label{a::b}", "labels"] {
            let text = format!("a,{header}\n1.0,x\n");
            let e = from_csv_string(&text).unwrap_err();
            assert!(
                matches!(e, DataError::Csv { line: 1, .. }),
                "label header '{header}' should fail at line 1, got {e:?}"
            );
        }
    }

    #[test]
    fn malformed_domain_suffix_is_a_header_error() {
        for header in [
            "a{c:0}",      // too few fields
            "a{c:0:1:2}",  // too many fields
            "a{q:0:1}",    // unknown kind
            "a{c:zero:1}", // unparseable bound
            "a{i:0.5:1}",  // non-integer bound for an integer domain
            "a{c:0:1",     // unterminated
        ] {
            let text = format!("{header},label\n1.0,x\n");
            let e = from_csv_string(&text).unwrap_err();
            assert!(
                matches!(e, DataError::Csv { line: 1, .. }),
                "header '{header}' should fail at line 1, got {e:?}"
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let ds = synth::two_moons(20, 0.1, 4).unwrap();
        let dir = std::env::temp_dir().join("aml_dataset_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("moons.csv");
        write_csv(&ds, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.n_rows(), 20);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_missing_label_header() {
        assert!(matches!(
            from_csv_string("a,b\n1,2\n"),
            Err(DataError::Csv { line: 1, .. })
        ));
    }

    #[test]
    fn ragged_row_reports_its_line_number() {
        // The ragged row is the 3rd line of the file (header + 2 rows).
        let e = from_csv_string("a,label\n1.0,x\n1.0,2.0,x\n").unwrap_err();
        match &e {
            DataError::Csv { line, message } => {
                assert_eq!(*line, 3);
                assert!(message.contains("expected 2 columns, got 3"), "{message}");
            }
            other => panic!("expected DataError::Csv, got {other:?}"),
        }
        assert_eq!(
            e.to_string(),
            "CSV parse error at line 3: expected 2 columns, got 3"
        );
    }

    #[test]
    fn unparseable_number_reports_line_and_column() {
        let e = from_csv_string("a,b,label\n1.0,2.0,x\n1.0,foo,x\n").unwrap_err();
        match &e {
            DataError::Csv { line, message } => {
                assert_eq!(*line, 3);
                assert!(message.contains("column 2"), "{message}");
                assert!(message.contains("'foo'"), "{message}");
            }
            other => panic!("expected DataError::Csv, got {other:?}"),
        }
    }

    #[test]
    fn blank_lines_do_not_shift_reported_line_numbers() {
        // Line 4 is the bad one; line 3 is blank and skipped.
        let e = from_csv_string("a,label\n1.0,x\n\nbad,x\n").unwrap_err();
        assert!(
            matches!(e, DataError::Csv { line: 4, .. }),
            "got {e:?} instead of a line-4 error"
        );
    }

    #[test]
    fn class_name_order_is_first_appearance() {
        let ds = from_csv_string("a,label\n1.0,zebra\n2.0,ant\n3.0,zebra\n").unwrap();
        assert_eq!(ds.class_names(), &["zebra".to_string(), "ant".to_string()]);
        assert_eq!(ds.labels(), &[0, 1, 0]);
    }

    #[test]
    fn empty_body_is_error() {
        assert!(from_csv_string("a,label\n").is_err());
    }
}
