//! Dense, row-major tabular dataset with integer class labels.
//!
//! Rows are samples, columns are features. Labels are class indices in
//! `0..n_classes`. The representation is deliberately simple — a flat
//! `Vec<f64>` — because every consumer (trees, kNN, ALE grids, SMOTE)
//! iterates rows or columns linearly and cache-friendliness beats
//! abstraction here.

use crate::feature::{FeatureDomain, FeatureMeta};
use crate::{DataError, Result};

/// A labelled tabular dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Flat row-major feature matrix, `n_rows * n_features` entries.
    data: Vec<f64>,
    /// Class label per row, values in `0..n_classes`.
    labels: Vec<usize>,
    /// Number of feature columns.
    n_features: usize,
    /// Number of classes (fixed at construction; may exceed the number of
    /// classes actually present in a subset).
    n_classes: usize,
    /// Per-feature metadata.
    features: Vec<FeatureMeta>,
    /// Human-readable class names, `n_classes` entries.
    class_names: Vec<String>,
}

impl Dataset {
    /// Create an empty dataset with the given schema.
    ///
    /// # Errors
    /// [`DataError::DimensionMismatch`] if `class_names.len() != n_classes`
    /// is violated (class names must cover every class).
    pub fn new(features: Vec<FeatureMeta>, class_names: Vec<String>) -> Result<Self> {
        if class_names.is_empty() {
            return Err(DataError::Empty);
        }
        Ok(Dataset {
            data: Vec::new(),
            labels: Vec::new(),
            n_features: features.len(),
            n_classes: class_names.len(),
            features,
            class_names,
        })
    }

    /// Convenience constructor with auto-named features (`x0`, `x1`, …) and
    /// classes (`class0`, …), inferring domains from the provided rows
    /// (with a 5% margin so the domain is not degenerate at the extremes).
    pub fn from_rows(rows: &[Vec<f64>], labels: &[usize], n_classes: usize) -> Result<Self> {
        if rows.is_empty() {
            return Err(DataError::Empty);
        }
        if rows.len() != labels.len() {
            return Err(DataError::DimensionMismatch {
                expected: rows.len(),
                got: labels.len(),
            });
        }
        let n_features = rows[0].len();
        let mut lo = vec![f64::INFINITY; n_features];
        let mut hi = vec![f64::NEG_INFINITY; n_features];
        for row in rows {
            if row.len() != n_features {
                return Err(DataError::DimensionMismatch {
                    expected: n_features,
                    got: row.len(),
                });
            }
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(DataError::NonFinite);
                }
                lo[j] = lo[j].min(v);
                hi[j] = hi[j].max(v);
            }
        }
        let features = (0..n_features)
            .map(|j| {
                let margin = 0.05 * (hi[j] - lo[j]).max(1e-9);
                FeatureMeta::continuous(format!("x{j}"), lo[j] - margin, hi[j] + margin)
            })
            .collect();
        let class_names = (0..n_classes).map(|c| format!("class{c}")).collect();
        let mut ds = Dataset::new(features, class_names)?;
        for (row, &label) in rows.iter().zip(labels) {
            ds.push_row(row, label)?;
        }
        Ok(ds)
    }

    /// Append one sample.
    ///
    /// # Errors
    /// Dimension mismatch, non-finite values, or an out-of-range label.
    pub fn push_row(&mut self, row: &[f64], label: usize) -> Result<()> {
        if row.len() != self.n_features {
            return Err(DataError::DimensionMismatch {
                expected: self.n_features,
                got: row.len(),
            });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(DataError::NonFinite);
        }
        if label >= self.n_classes {
            return Err(DataError::InvalidLabel {
                label,
                n_classes: self.n_classes,
            });
        }
        self.data.extend_from_slice(row);
        self.labels.push(label);
        Ok(())
    }

    /// Append every row of `other` (schemas must be dimension-compatible).
    pub fn extend(&mut self, other: &Dataset) -> Result<()> {
        if other.n_features != self.n_features {
            return Err(DataError::DimensionMismatch {
                expected: self.n_features,
                got: other.n_features,
            });
        }
        for i in 0..other.n_rows() {
            self.push_row(other.row(i), other.label(i))?;
        }
        Ok(())
    }

    /// Number of samples.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes declared at construction.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Borrow row `i` as a feature slice.
    ///
    /// # Panics
    /// If `i >= n_rows()` — row indices are internal invariants; use
    /// [`Dataset::try_row`] for untrusted indices.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Checked row access.
    pub fn try_row(&self, i: usize) -> Result<&[f64]> {
        if i >= self.n_rows() {
            return Err(DataError::IndexOutOfBounds {
                index: i,
                bound: self.n_rows(),
            });
        }
        Ok(self.row(i))
    }

    /// Label of row `i`.
    ///
    /// # Panics
    /// If `i >= n_rows()`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Copy column `j` into a vector.
    pub fn column(&self, j: usize) -> Result<Vec<f64>> {
        if j >= self.n_features {
            return Err(DataError::IndexOutOfBounds {
                index: j,
                bound: self.n_features,
            });
        }
        Ok((0..self.n_rows()).map(|i| self.row(i)[j]).collect())
    }

    /// Feature metadata.
    pub fn features(&self) -> &[FeatureMeta] {
        &self.features
    }

    /// Domain of feature `j`.
    pub fn domain(&self, j: usize) -> Result<FeatureDomain> {
        self.features
            .get(j)
            .map(|f| f.domain)
            .ok_or(DataError::IndexOutOfBounds {
                index: j,
                bound: self.n_features,
            })
    }

    /// Index of the feature named `name`, if any.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.features.iter().position(|f| f.name == name)
    }

    /// Class names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Count of samples per class (length `n_classes`).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// A new dataset containing the rows at `indices` (in that order),
    /// sharing this dataset's schema. Duplicate indices are allowed (used by
    /// upsampling).
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        let mut out = self.empty_like();
        for &i in indices {
            out.push_row(self.try_row(i)?, self.labels[i])?;
        }
        Ok(out)
    }

    /// An empty dataset with the same schema.
    pub fn empty_like(&self) -> Dataset {
        Dataset {
            data: Vec::new(),
            labels: Vec::new(),
            n_features: self.n_features,
            n_classes: self.n_classes,
            features: self.features.clone(),
            class_names: self.class_names.clone(),
        }
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Replace the feature metadata (names/domains), keeping the data. Used
    /// by generators that know tighter domains than the observed min/max.
    pub fn set_features(&mut self, features: Vec<FeatureMeta>) -> Result<()> {
        if features.len() != self.n_features {
            return Err(DataError::DimensionMismatch {
                expected: self.n_features,
                got: features.len(),
            });
        }
        self.features = features;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_feature_ds() -> Dataset {
        let mut ds = Dataset::new(
            vec![
                FeatureMeta::continuous("a", 0.0, 10.0),
                FeatureMeta::continuous("b", -1.0, 1.0),
            ],
            vec!["neg".into(), "pos".into()],
        )
        .unwrap();
        ds.push_row(&[1.0, 0.5], 0).unwrap();
        ds.push_row(&[2.0, -0.5], 1).unwrap();
        ds.push_row(&[3.0, 0.0], 1).unwrap();
        ds
    }

    #[test]
    fn push_and_access() {
        let ds = two_feature_ds();
        assert_eq!(ds.n_rows(), 3);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.row(1), &[2.0, -0.5]);
        assert_eq!(ds.label(2), 1);
        assert_eq!(ds.column(0).unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut ds = two_feature_ds();
        assert!(matches!(
            ds.push_row(&[1.0], 0),
            Err(DataError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn bad_label_rejected() {
        let mut ds = two_feature_ds();
        assert!(matches!(
            ds.push_row(&[0.0, 0.0], 5),
            Err(DataError::InvalidLabel { .. })
        ));
    }

    #[test]
    fn nan_rejected() {
        let mut ds = two_feature_ds();
        assert_eq!(ds.push_row(&[f64::NAN, 0.0], 0), Err(DataError::NonFinite));
    }

    #[test]
    fn class_counts() {
        let ds = two_feature_ds();
        assert_eq!(ds.class_counts(), vec![1, 2]);
    }

    #[test]
    fn subset_preserves_order_and_allows_duplicates() {
        let ds = two_feature_ds();
        let sub = ds.subset(&[2, 0, 2]).unwrap();
        assert_eq!(sub.n_rows(), 3);
        assert_eq!(sub.row(0), &[3.0, 0.0]);
        assert_eq!(sub.row(1), &[1.0, 0.5]);
        assert_eq!(sub.row(2), &[3.0, 0.0]);
        assert_eq!(sub.labels(), &[1, 0, 1]);
    }

    #[test]
    fn subset_out_of_bounds() {
        let ds = two_feature_ds();
        assert!(matches!(
            ds.subset(&[9]),
            Err(DataError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn from_rows_infers_domains_with_margin() {
        let rows = vec![vec![0.0, 10.0], vec![4.0, 20.0]];
        let ds = Dataset::from_rows(&rows, &[0, 1], 2).unwrap();
        let d0 = ds.domain(0).unwrap();
        assert!(d0.lo() < 0.0 && d0.hi() > 4.0);
        assert_eq!(ds.feature_index("x1"), Some(1));
    }

    #[test]
    fn extend_appends_rows() {
        let mut a = two_feature_ds();
        let b = two_feature_ds();
        a.extend(&b).unwrap();
        assert_eq!(a.n_rows(), 6);
    }

    #[test]
    fn empty_like_shares_schema() {
        let ds = two_feature_ds();
        let e = ds.empty_like();
        assert!(e.is_empty());
        assert_eq!(e.n_features(), 2);
        assert_eq!(e.class_names(), ds.class_names());
    }

    #[test]
    fn ragged_from_rows_rejected() {
        let rows = vec![vec![0.0, 1.0], vec![2.0]];
        assert!(Dataset::from_rows(&rows, &[0, 0], 1).is_err());
    }
}
