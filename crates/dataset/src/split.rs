//! Train/test splitting utilities implementing the paper's protocols.
//!
//! The evaluation splits data three ways: an initial training set, a test
//! portion that is *further divided into 20 test sets* (for paired Wilcoxon
//! testing), and — for the UCL/firewall experiments — a 40% unlabeled
//! *candidate feedback pool*. [`three_way_split`] and [`split_into_k`]
//! implement exactly that. All shuffles are seeded and deterministic.

use crate::dataset::Dataset;
use crate::{DataError, Result};
use aml_rng::rngs::StdRng;
use aml_rng::seq::SliceRandom;
use aml_rng::SeedableRng;

/// Deterministically shuffle `0..n` with the given seed.
fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx
}

/// Split into train and test with `test_fraction` of the rows in the test
/// set. With `stratify = true` the split preserves per-class proportions
/// (each class is shuffled and split independently).
///
/// # Errors
/// Empty dataset, `test_fraction` outside `(0, 1)`, or (stratified) a class
/// with fewer than 2 samples of a represented class.
pub fn train_test_split(
    ds: &Dataset,
    test_fraction: f64,
    stratify: bool,
    seed: u64,
) -> Result<(Dataset, Dataset)> {
    if ds.is_empty() {
        return Err(DataError::Empty);
    }
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(DataError::InvalidFraction(test_fraction));
    }
    let (train_idx, test_idx) = if stratify {
        stratified_two_way(ds, test_fraction, seed)?
    } else {
        let idx = shuffled_indices(ds.n_rows(), seed);
        let n_test = ((ds.n_rows() as f64) * test_fraction).round().max(1.0) as usize;
        let n_test = n_test.min(ds.n_rows() - 1);
        (idx[n_test..].to_vec(), idx[..n_test].to_vec())
    };
    Ok((ds.subset(&train_idx)?, ds.subset(&test_idx)?))
}

fn stratified_two_way(
    ds: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Vec<usize>, Vec<usize>)> {
    let mut train = Vec::new();
    let mut test = Vec::new();
    for class in 0..ds.n_classes() {
        let mut members: Vec<usize> = (0..ds.n_rows()).filter(|&i| ds.label(i) == class).collect();
        if members.is_empty() {
            continue;
        }
        if members.len() < 2 {
            return Err(DataError::InsufficientClassCount {
                class,
                have: members.len(),
                need: 2,
            });
        }
        let mut rng =
            StdRng::seed_from_u64(seed ^ (class as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        members.shuffle(&mut rng);
        let n_test = ((members.len() as f64) * test_fraction).round().max(1.0) as usize;
        let n_test = n_test.min(members.len() - 1);
        test.extend_from_slice(&members[..n_test]);
        train.extend_from_slice(&members[n_test..]);
    }
    Ok((train, test))
}

/// The paper's three-way protocol for the firewall dataset: 40% train,
/// 20% test, 40% candidate pool (fractions are parameters). Stratified.
///
/// Returns `(train, test, pool)`.
pub fn three_way_split(
    ds: &Dataset,
    train_fraction: f64,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset, Dataset)> {
    if ds.is_empty() {
        return Err(DataError::Empty);
    }
    if !(train_fraction > 0.0 && test_fraction > 0.0 && train_fraction + test_fraction < 1.0) {
        return Err(DataError::InvalidFraction(train_fraction + test_fraction));
    }
    // First carve off the train portion, then split the remainder into
    // test and pool. Each split is stratified.
    let rest_fraction = 1.0 - train_fraction;
    let (train, rest) = train_test_split(ds, rest_fraction, true, seed)?;
    let test_within_rest = test_fraction / rest_fraction;
    let (pool, test) = train_test_split(&rest, test_within_rest, true, seed ^ 0xABCD_EF01)?;
    Ok((train, test, pool))
}

/// Divide a dataset into `k` (roughly equally sized) disjoint pieces at
/// random — the paper's "divide into 20 test sets" protocol for measuring
/// statistical significance with paired tests.
///
/// # Errors
/// `k == 0` or `k > n_rows`.
pub fn split_into_k(ds: &Dataset, k: usize, seed: u64) -> Result<Vec<Dataset>> {
    if k == 0 || k > ds.n_rows() {
        return Err(DataError::IndexOutOfBounds {
            index: k,
            bound: ds.n_rows() + 1,
        });
    }
    let idx = shuffled_indices(ds.n_rows(), seed);
    let mut out = Vec::with_capacity(k);
    // Distribute remainder one-per-chunk so sizes differ by at most 1.
    let base = ds.n_rows() / k;
    let extra = ds.n_rows() % k;
    let mut start = 0;
    for piece in 0..k {
        let len = base + usize::from(piece < extra);
        out.push(ds.subset(&idx[start..start + len])?);
        start += len;
    }
    Ok(out)
}

/// K-fold cross-validation index generator (used by AutoML's validation).
#[derive(Debug, Clone)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

impl KFold {
    /// Build `k` shuffled folds over `n` samples.
    ///
    /// # Errors
    /// `k < 2` or `k > n`.
    pub fn new(n: usize, k: usize, seed: u64) -> Result<Self> {
        if k < 2 || k > n {
            return Err(DataError::IndexOutOfBounds {
                index: k,
                bound: n + 1,
            });
        }
        let idx = shuffled_indices(n, seed);
        let base = n / k;
        let extra = n % k;
        let mut folds = Vec::with_capacity(k);
        let mut start = 0;
        for f in 0..k {
            let len = base + usize::from(f < extra);
            folds.push(idx[start..start + len].to_vec());
            start += len;
        }
        Ok(KFold { folds })
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// `(train_indices, validation_indices)` for fold `f`.
    pub fn fold(&self, f: usize) -> Result<(Vec<usize>, Vec<usize>)> {
        if f >= self.folds.len() {
            return Err(DataError::IndexOutOfBounds {
                index: f,
                bound: self.folds.len(),
            });
        }
        let val = self.folds[f].clone();
        let train = self
            .folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != f)
            .flat_map(|(_, fold)| fold.iter().copied())
            .collect();
        Ok((train, val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    fn ds() -> Dataset {
        synth::gaussian_blobs(120, 3, 3, 1.0, 99).unwrap()
    }

    #[test]
    fn split_sizes_add_up() {
        let d = ds();
        let (train, test) = train_test_split(&d, 0.25, false, 1).unwrap();
        assert_eq!(train.n_rows() + test.n_rows(), d.n_rows());
        assert_eq!(test.n_rows(), 30);
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        let d = ds();
        let (a, _) = train_test_split(&d, 0.3, false, 5).unwrap();
        let (b, _) = train_test_split(&d, 0.3, false, 5).unwrap();
        let (c, _) = train_test_split(&d, 0.3, false, 6).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stratified_split_preserves_proportions() {
        let d = ds(); // 3 balanced classes
        let (train, test) = train_test_split(&d, 0.25, true, 2).unwrap();
        let tc = test.class_counts();
        // 120 rows, 3 classes of 40, 25% test → 10 per class.
        assert_eq!(tc, vec![10, 10, 10]);
        assert_eq!(train.class_counts(), vec![30, 30, 30]);
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let d = ds();
        assert!(train_test_split(&d, 0.0, false, 0).is_err());
        assert!(train_test_split(&d, 1.0, false, 0).is_err());
    }

    #[test]
    fn three_way_matches_paper_fractions() {
        let d = ds();
        let (train, test, pool) = three_way_split(&d, 0.4, 0.2, 3).unwrap();
        assert_eq!(train.n_rows() + test.n_rows() + pool.n_rows(), d.n_rows());
        // 40/20/40 on 120 rows
        assert!((train.n_rows() as i64 - 48).abs() <= 3);
        assert!((test.n_rows() as i64 - 24).abs() <= 3);
        assert!((pool.n_rows() as i64 - 48).abs() <= 3);
    }

    #[test]
    fn split_into_k_is_a_partition() {
        let d = ds();
        let pieces = split_into_k(&d, 7, 11).unwrap();
        assert_eq!(pieces.len(), 7);
        let total: usize = pieces.iter().map(|p| p.n_rows()).sum();
        assert_eq!(total, d.n_rows());
        let sizes: Vec<usize> = pieces.iter().map(|p| p.n_rows()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes must be balanced: {sizes:?}");
    }

    #[test]
    fn kfold_covers_everything_once() {
        let kf = KFold::new(25, 4, 17).unwrap();
        let mut seen = [0usize; 25];
        for f in 0..kf.k() {
            let (train, val) = kf.fold(f).unwrap();
            assert_eq!(train.len() + val.len(), 25);
            for &i in &val {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each index in exactly one fold"
        );
    }

    #[test]
    fn kfold_rejects_degenerate_k() {
        assert!(KFold::new(10, 1, 0).is_err());
        assert!(KFold::new(10, 11, 0).is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::synth;
    use aml_propcheck::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any split partitions the rows: no loss, no duplication (checked
        /// by total count and by per-class counts).
        #[test]
        fn prop_split_partitions(
            n in 10usize..200,
            frac in 0.1f64..0.9,
            seed in 0u64..1000,
            stratify in aml_propcheck::bool::ANY,
        ) {
            let d = synth::gaussian_blobs(n, 2, 2, 1.0, seed).unwrap();
            prop_assume!(d.class_counts().iter().all(|&c| c >= 2));
            let (train, test) = train_test_split(&d, frac, stratify, seed).unwrap();
            prop_assert_eq!(train.n_rows() + test.n_rows(), d.n_rows());
            let tc = train.class_counts();
            let sc = test.class_counts();
            let dc = d.class_counts();
            for c in 0..d.n_classes() {
                prop_assert_eq!(tc[c] + sc[c], dc[c]);
            }
        }

        /// split_into_k always balances piece sizes within 1.
        #[test]
        fn prop_k_split_balanced(n in 20usize..150, k in 2usize..15, seed in 0u64..100) {
            let d = synth::gaussian_blobs(n, 2, 2, 1.0, seed).unwrap();
            let pieces = split_into_k(&d, k, seed).unwrap();
            let sizes: Vec<usize> = pieces.iter().map(|p| p.n_rows()).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            prop_assert!(max - min <= 1);
            prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        }
    }
}
