//! Feature metadata: names and value domains.
//!
//! The paper's feedback algorithm takes "the feature-set X and the domain of
//! each feature in that set: `R(X_s)` for each `X_s ∈ X` (the range of
//! values each feature can take in ℝ)" as input — the suggested sampling
//! regions are sub-intervals of those domains, and free-sampling strategies
//! (Uniform, ALE-region sampling) draw from them directly.

/// The domain `R(X_s)` of a feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureDomain {
    /// A real-valued interval `[lo, hi]`.
    Continuous {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// An integer-valued interval `[lo, hi]` (e.g. port numbers, flow
    /// counts). Stored as f64 in the matrix but sampled on integers.
    Integer {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
}

impl FeatureDomain {
    /// Continuous domain constructor; `lo`/`hi` are swapped if reversed.
    pub fn continuous(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            FeatureDomain::Continuous { lo, hi }
        } else {
            FeatureDomain::Continuous { lo: hi, hi: lo }
        }
    }

    /// Integer domain constructor; `lo`/`hi` are swapped if reversed.
    pub fn integer(lo: i64, hi: i64) -> Self {
        if lo <= hi {
            FeatureDomain::Integer { lo, hi }
        } else {
            FeatureDomain::Integer { lo: hi, hi: lo }
        }
    }

    /// Lower bound as f64.
    pub fn lo(&self) -> f64 {
        match self {
            FeatureDomain::Continuous { lo, .. } => *lo,
            FeatureDomain::Integer { lo, .. } => *lo as f64,
        }
    }

    /// Upper bound as f64.
    pub fn hi(&self) -> f64 {
        match self {
            FeatureDomain::Continuous { hi, .. } => *hi,
            FeatureDomain::Integer { hi, .. } => *hi as f64,
        }
    }

    /// Width of the domain.
    pub fn width(&self) -> f64 {
        self.hi() - self.lo()
    }

    /// Whether `x` lies inside the domain (integer domains also require
    /// integrality up to 1e-9).
    pub fn contains(&self, x: f64) -> bool {
        match self {
            FeatureDomain::Continuous { lo, hi } => x >= *lo && x <= *hi,
            FeatureDomain::Integer { lo, hi } => {
                x >= *lo as f64 && x <= *hi as f64 && (x - x.round()).abs() < 1e-9
            }
        }
    }

    /// Clamp `x` into the domain (and round for integer domains).
    pub fn clamp(&self, x: f64) -> f64 {
        match self {
            FeatureDomain::Continuous { lo, hi } => x.clamp(*lo, *hi),
            FeatureDomain::Integer { lo, hi } => x.round().clamp(*lo as f64, *hi as f64),
        }
    }
}

/// Name + domain of one feature column.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMeta {
    /// Human-readable column name (e.g. `config.link_rate`).
    pub name: String,
    /// Value domain `R(X_s)`.
    pub domain: FeatureDomain,
}

impl FeatureMeta {
    /// Continuous feature metadata.
    pub fn continuous(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        FeatureMeta {
            name: name.into(),
            domain: FeatureDomain::continuous(lo, hi),
        }
    }

    /// Integer feature metadata.
    pub fn integer(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        FeatureMeta {
            name: name.into(),
            domain: FeatureDomain::integer(lo, hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversed_bounds_are_normalized() {
        let d = FeatureDomain::continuous(5.0, 1.0);
        assert_eq!(d.lo(), 1.0);
        assert_eq!(d.hi(), 5.0);
        let di = FeatureDomain::integer(10, -2);
        assert_eq!(di.lo(), -2.0);
        assert_eq!(di.hi(), 10.0);
    }

    #[test]
    fn contains_checks_integrality() {
        let d = FeatureDomain::integer(0, 10);
        assert!(d.contains(3.0));
        assert!(!d.contains(3.5));
        assert!(!d.contains(11.0));
        let c = FeatureDomain::continuous(0.0, 1.0);
        assert!(c.contains(0.5));
        assert!(!c.contains(1.01));
    }

    #[test]
    fn clamp_rounds_integer_domains() {
        let d = FeatureDomain::integer(0, 10);
        assert_eq!(d.clamp(3.7), 4.0);
        assert_eq!(d.clamp(-5.0), 0.0);
        assert_eq!(d.clamp(99.0), 10.0);
        let c = FeatureDomain::continuous(0.0, 1.0);
        assert_eq!(c.clamp(0.37), 0.37);
        assert_eq!(c.clamp(9.0), 1.0);
    }

    #[test]
    fn width() {
        assert_eq!(FeatureDomain::continuous(2.0, 5.0).width(), 3.0);
        assert_eq!(FeatureDomain::integer(0, 65535).width(), 65535.0);
    }

    #[test]
    fn meta_constructors() {
        let m = FeatureMeta::continuous("rtt_ms", 1.0, 500.0);
        assert_eq!(m.name, "rtt_ms");
        assert_eq!(m.domain.hi(), 500.0);
        let i = FeatureMeta::integer("dst_port", 0, 65535);
        assert!(i.domain.contains(443.0));
    }
}
