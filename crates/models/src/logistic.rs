//! Multinomial logistic regression (softmax regression).
//!
//! Full-batch gradient descent on the L2-regularized multiclass log-loss.
//! Inputs are expected to be standardized (the AutoML search always pairs
//! this model with a scaler in a [`crate::pipeline::Pipeline`]); with
//! z-scored features a fixed learning rate converges reliably.

use crate::gbdt::softmax;
use crate::model::{check_row, check_training, Classifier};
use crate::{ModelError, Result};
use aml_dataset::Dataset;

/// Hyperparameters for [`LogisticRegression`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogRegParams {
    /// L2 regularization strength (λ, applied to weights, not intercepts).
    pub l2: f64,
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Number of full-batch iterations.
    pub max_iter: usize,
    /// Stop early when the max absolute gradient entry falls below this.
    pub tol: f64,
}

impl Default for LogRegParams {
    fn default() -> Self {
        LogRegParams {
            l2: 1e-4,
            learning_rate: 0.5,
            max_iter: 300,
            tol: 1e-5,
        }
    }
}

/// A fitted multinomial logistic regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    /// `weights[class][feature]`.
    weights: Vec<Vec<f64>>,
    /// Per-class intercept.
    intercepts: Vec<f64>,
    n_features: usize,
}

impl LogisticRegression {
    /// Fit by full-batch gradient descent.
    pub fn fit(ds: &Dataset, params: LogRegParams) -> Result<Self> {
        check_training(ds)?;
        if params.max_iter == 0 {
            return Err(ModelError::InvalidHyperparameter(
                "max_iter must be >= 1".into(),
            ));
        }
        if params.learning_rate.is_nan()
            || params.learning_rate <= 0.0
            || params.l2.is_nan()
            || params.l2 < 0.0
        {
            return Err(ModelError::InvalidHyperparameter(
                "learning_rate must be > 0 and l2 >= 0".into(),
            ));
        }
        let k = ds.n_classes();
        let d = ds.n_features();
        let n = ds.n_rows();
        let inv_n = 1.0 / n as f64;

        let mut w = vec![vec![0.0; d]; k];
        let mut b = vec![0.0; k];

        for _iter in 0..params.max_iter {
            let mut gw = vec![vec![0.0; d]; k];
            let mut gb = vec![0.0; k];
            for i in 0..n {
                let row = ds.row(i);
                let scores: Vec<f64> = (0..k).map(|c| b[c] + dot(&w[c], row)).collect();
                let p = softmax(&scores);
                let y = ds.label(i);
                for c in 0..k {
                    let err = p[c] - if c == y { 1.0 } else { 0.0 };
                    gb[c] += err * inv_n;
                    for (j, &x) in row.iter().enumerate() {
                        gw[c][j] += err * x * inv_n;
                    }
                }
            }
            let mut max_grad: f64 = 0.0;
            for c in 0..k {
                for j in 0..d {
                    gw[c][j] += params.l2 * w[c][j];
                    w[c][j] -= params.learning_rate * gw[c][j];
                    max_grad = max_grad.max(gw[c][j].abs());
                    if !w[c][j].is_finite() {
                        return Err(ModelError::NumericalFailure(
                            "weights diverged; lower the learning rate or scale features".into(),
                        ));
                    }
                }
                b[c] -= params.learning_rate * gb[c];
                max_grad = max_grad.max(gb[c].abs());
            }
            if max_grad < params.tol {
                break;
            }
        }

        Ok(LogisticRegression {
            weights: w,
            intercepts: b,
            n_features: d,
        })
    }

    /// Fitted weight matrix (`[class][feature]`).
    pub fn weights(&self) -> &[Vec<f64>] {
        &self.weights
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Classifier for LogisticRegression {
    fn n_classes(&self) -> usize {
        self.weights.len()
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        check_row(row, self.n_features)?;
        let scores: Vec<f64> = self
            .weights
            .iter()
            .zip(&self.intercepts)
            .map(|(w, b)| b + dot(w, row))
            .collect();
        Ok(softmax(&scores))
    }

    fn name(&self) -> &'static str {
        "logistic_regression"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::preprocess::{Standardizer, Transformer};
    use aml_dataset::synth;

    #[test]
    fn linearly_separable_blobs_fit_well() {
        let raw = synth::gaussian_blobs(200, 2, 2, 1.0, 1).unwrap();
        let scaler = Standardizer::fit(&raw).unwrap();
        let ds = scaler.transform(&raw).unwrap();
        let m = LogisticRegression::fit(&ds, LogRegParams::default()).unwrap();
        let acc = accuracy(ds.labels(), &m.predict(&ds).unwrap()).unwrap();
        assert!(acc > 0.95, "logreg blob accuracy {acc}");
    }

    #[test]
    fn multiclass_works() {
        let raw = synth::gaussian_blobs(300, 3, 4, 1.0, 2).unwrap();
        let scaler = Standardizer::fit(&raw).unwrap();
        let ds = scaler.transform(&raw).unwrap();
        let m = LogisticRegression::fit(&ds, LogRegParams::default()).unwrap();
        let acc = accuracy(ds.labels(), &m.predict(&ds).unwrap()).unwrap();
        assert!(acc > 0.9, "multiclass accuracy {acc}");
    }

    #[test]
    fn xor_defeats_linear_model() {
        let ds = synth::noisy_xor(600, 0.0, 4).unwrap();
        let m = LogisticRegression::fit(&ds, LogRegParams::default()).unwrap();
        let acc = accuracy(ds.labels(), &m.predict(&ds).unwrap()).unwrap();
        assert!(acc < 0.65, "linear model should fail on XOR, got {acc}");
    }

    #[test]
    fn strong_l2_shrinks_weights() {
        let raw = synth::gaussian_blobs(100, 2, 2, 1.0, 3).unwrap();
        let scaler = Standardizer::fit(&raw).unwrap();
        let ds = scaler.transform(&raw).unwrap();
        let loose = LogisticRegression::fit(
            &ds,
            LogRegParams {
                l2: 0.0,
                learning_rate: 0.2,
                ..Default::default()
            },
        )
        .unwrap();
        let tight = LogisticRegression::fit(
            &ds,
            LogRegParams {
                l2: 1.0,
                learning_rate: 0.2,
                ..Default::default()
            },
        )
        .unwrap();
        let norm = |m: &LogisticRegression| -> f64 {
            m.weights()
                .iter()
                .flatten()
                .map(|w| w * w)
                .sum::<f64>()
                .sqrt()
        };
        assert!(norm(&tight) < norm(&loose));
    }

    #[test]
    fn proba_is_distribution() {
        let ds = synth::gaussian_blobs(60, 2, 3, 1.0, 5).unwrap();
        let m = LogisticRegression::fit(&ds, LogRegParams::default()).unwrap();
        let p = m.predict_proba_row(ds.row(0)).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_params_rejected() {
        let ds = synth::two_moons(40, 0.1, 0).unwrap();
        assert!(LogisticRegression::fit(
            &ds,
            LogRegParams {
                max_iter: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(LogisticRegression::fit(
            &ds,
            LogRegParams {
                learning_rate: 0.0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic() {
        let ds = synth::two_moons(80, 0.2, 7).unwrap();
        let a = LogisticRegression::fit(&ds, LogRegParams::default()).unwrap();
        let b = LogisticRegression::fit(&ds, LogRegParams::default()).unwrap();
        assert_eq!(a, b);
    }
}
