//! Gradient-boosted decision trees for classification.
//!
//! One-vs-rest logistic boosting: for each class `c` we maintain an additive
//! score `F_c(x)` and at every round fit a [`RegressionTree`] to the negative
//! gradient of the logistic loss (`y − p`), then install Newton-step leaf
//! values `Σ(y−p) / Σ p(1−p)` (standard LogitBoost/L2-TreeBoost leaf update).
//! Class probabilities come from a softmax over the K scores.

use crate::model::{check_row, check_training, Classifier};
use crate::regression::{RegTreeParams, RegressionTree};
use crate::{ModelError, Result};
use aml_dataset::Dataset;

/// Hyperparameters for [`GradientBoosting`].
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtParams {
    /// Boosting rounds (trees per class).
    pub n_rounds: usize,
    /// Shrinkage applied to every leaf value.
    pub learning_rate: f64,
    /// Maximum depth of each weak tree.
    pub max_depth: usize,
    /// Minimum samples per leaf of each weak tree.
    pub min_samples_leaf: usize,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_rounds: 50,
            learning_rate: 0.1,
            max_depth: 3,
            min_samples_leaf: 5,
        }
    }
}

/// A fitted boosted-trees classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoosting {
    /// `stages[round][class]` regression trees.
    stages: Vec<Vec<RegressionTree>>,
    /// Initial per-class score (log prior odds).
    base_score: Vec<f64>,
    learning_rate: f64,
    n_classes: usize,
    n_features: usize,
}

impl GradientBoosting {
    /// Fit the boosted model.
    pub fn fit(ds: &Dataset, params: GbdtParams) -> Result<Self> {
        let counts = check_training(ds)?;
        if params.n_rounds == 0 {
            return Err(ModelError::InvalidHyperparameter(
                "n_rounds must be >= 1".into(),
            ));
        }
        if !(params.learning_rate > 0.0 && params.learning_rate <= 1.0) {
            return Err(ModelError::InvalidHyperparameter(format!(
                "learning_rate {} outside (0, 1]",
                params.learning_rate
            )));
        }
        let n = ds.n_rows();
        let k = ds.n_classes();
        let total = n as f64;
        // Initialize scores at the log-odds of the class priors (clamped so
        // empty classes don't produce -inf).
        let base_score: Vec<f64> = counts
            .iter()
            .map(|&c| {
                let p = (c as f64 / total).clamp(1e-6, 1.0 - 1e-6);
                (p / (1.0 - p)).ln()
            })
            .collect();

        let mut scores: Vec<Vec<f64>> = (0..k).map(|c| vec![base_score[c]; n]).collect();
        let tree_params = RegTreeParams {
            max_depth: params.max_depth,
            min_samples_leaf: params.min_samples_leaf,
        };
        let mut stages = Vec::with_capacity(params.n_rounds);

        for _round in 0..params.n_rounds {
            // Softmax probabilities per sample (shared across the K trees of
            // this round, as in standard multiclass gradient boosting).
            let proba = softmax_columns(&scores, n, k);
            let mut round_trees = Vec::with_capacity(k);
            for c in 0..k {
                // Negative gradient of multiclass log-loss wrt F_c: y_c − p_c.
                let grad: Vec<f64> = (0..n)
                    .map(|i| {
                        let y = if ds.label(i) == c { 1.0 } else { 0.0 };
                        y - proba[i][c]
                    })
                    .collect();
                let mut tree = RegressionTree::fit(ds, &grad, &tree_params)?;
                // Newton leaf values: Σg / Σ|h| with h = p(1−p), damped by
                // the usual (k−1)/k multiclass factor.
                let factor = (k as f64 - 1.0) / k as f64;
                tree.relabel_leaves(|members| {
                    let g: f64 = members.iter().map(|&i| grad[i]).sum();
                    let h: f64 = members
                        .iter()
                        .map(|&i| proba[i][c] * (1.0 - proba[i][c]))
                        .sum();
                    if h.abs() < 1e-12 {
                        0.0
                    } else {
                        factor * g / h
                    }
                });
                for (i, s) in scores[c].iter_mut().enumerate().take(n) {
                    *s += params.learning_rate * tree.predict_row(ds.row(i))?;
                }
                round_trees.push(tree);
            }
            stages.push(round_trees);
        }

        Ok(GradientBoosting {
            stages,
            base_score,
            learning_rate: params.learning_rate,
            n_classes: k,
            n_features: ds.n_features(),
        })
    }

    /// Number of boosting rounds actually stored.
    pub fn n_rounds(&self) -> usize {
        self.stages.len()
    }

    fn raw_scores(&self, row: &[f64]) -> Result<Vec<f64>> {
        let mut scores = self.base_score.clone();
        for round in &self.stages {
            for (c, tree) in round.iter().enumerate() {
                scores[c] += self.learning_rate * tree.predict_row(row)?;
            }
        }
        Ok(scores)
    }
}

/// Row-wise softmax of per-class score columns.
fn softmax_columns(scores: &[Vec<f64>], n: usize, k: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let row: Vec<f64> = (0..k).map(|c| scores[c][i]).collect();
            softmax(&row)
        })
        .collect()
}

/// Numerically stable softmax.
pub(crate) fn softmax(xs: &[f64]) -> Vec<f64> {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|x| (x - m).exp()).collect();
    let s: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / s).collect()
}

impl Classifier for GradientBoosting {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        check_row(row, self.n_features)?;
        Ok(softmax(&self.raw_scores(row)?))
    }

    fn name(&self) -> &'static str {
        "gradient_boosting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, log_loss};
    use aml_dataset::synth;

    #[test]
    fn learns_xor() {
        let ds = synth::noisy_xor(400, 0.0, 1).unwrap();
        let m = GradientBoosting::fit(
            &ds,
            GbdtParams {
                n_rounds: 30,
                ..Default::default()
            },
        )
        .unwrap();
        let acc = accuracy(ds.labels(), &m.predict(&ds).unwrap()).unwrap();
        assert!(acc > 0.97, "GBDT accuracy on XOR: {acc}");
    }

    #[test]
    fn learns_multiclass_blobs() {
        let train = synth::gaussian_blobs(240, 2, 3, 1.0, 2).unwrap();
        let test = synth::gaussian_blobs(120, 2, 3, 1.0, 3).unwrap();
        let m = GradientBoosting::fit(&train, GbdtParams::default()).unwrap();
        let acc = accuracy(test.labels(), &m.predict(&test).unwrap()).unwrap();
        assert!(acc > 0.9, "GBDT accuracy on blobs: {acc}");
    }

    #[test]
    fn more_rounds_reduce_training_loss() {
        let ds = synth::two_moons(200, 0.25, 7).unwrap();
        let small = GradientBoosting::fit(
            &ds,
            GbdtParams {
                n_rounds: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let big = GradientBoosting::fit(
            &ds,
            GbdtParams {
                n_rounds: 60,
                ..Default::default()
            },
        )
        .unwrap();
        let l_small = log_loss(ds.labels(), &small.predict_proba(&ds).unwrap()).unwrap();
        let l_big = log_loss(ds.labels(), &big.predict_proba(&ds).unwrap()).unwrap();
        assert!(
            l_big < l_small,
            "training loss should fall: {l_big} vs {l_small}"
        );
    }

    #[test]
    fn probabilities_are_distributions() {
        let ds = synth::gaussian_blobs(60, 3, 4, 2.0, 4).unwrap();
        let m = GradientBoosting::fit(
            &ds,
            GbdtParams {
                n_rounds: 5,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..ds.n_rows() {
            let p = m.predict_proba_row(ds.row(i)).unwrap();
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn invalid_hyperparameters_rejected() {
        let ds = synth::two_moons(40, 0.1, 0).unwrap();
        assert!(GradientBoosting::fit(
            &ds,
            GbdtParams {
                n_rounds: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(GradientBoosting::fit(
            &ds,
            GbdtParams {
                learning_rate: 0.0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic() {
        let ds = synth::two_moons(100, 0.2, 5).unwrap();
        let a = GradientBoosting::fit(
            &ds,
            GbdtParams {
                n_rounds: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let b = GradientBoosting::fit(
            &ds,
            GbdtParams {
                n_rounds: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
