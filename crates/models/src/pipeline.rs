//! Scaler + model pipelines.
//!
//! A [`Pipeline`] binds a fitted scaler to a fitted model so that callers
//! (AutoML, the feedback algorithms, ALE) can treat "standardize then
//! kNN" as a single [`Classifier`] and never worry about leaking unscaled
//! rows into a scale-sensitive model.

use crate::model::Classifier;
use crate::preprocess::{FittedScaler, ScalerKind, Transformer};
use crate::Result;
use aml_dataset::Dataset;
use std::sync::Arc;

/// A fitted preprocessing + model pipeline.
pub struct Pipeline {
    scaler: FittedScaler,
    model: Arc<dyn Classifier>,
}

impl Pipeline {
    /// Wrap an already-fitted scaler and model.
    pub fn new(scaler: FittedScaler, model: Arc<dyn Classifier>) -> Self {
        Pipeline { scaler, model }
    }

    /// Fit the scaler of `kind` on `ds`, transform, then fit a model via
    /// `fit_model` on the transformed data.
    pub fn fit_with(
        ds: &Dataset,
        kind: ScalerKind,
        fit_model: impl FnOnce(&Dataset) -> Result<Arc<dyn Classifier>>,
    ) -> Result<Self> {
        let scaler = FittedScaler::fit(kind, ds)?;
        let transformed = scaler.transform(ds)?;
        let model = fit_model(&transformed)?;
        Ok(Pipeline { scaler, model })
    }

    /// The inner model.
    pub fn model(&self) -> &Arc<dyn Classifier> {
        &self.model
    }
}

impl Classifier for Pipeline {
    fn n_classes(&self) -> usize {
        self.model.n_classes()
    }

    fn n_features(&self) -> usize {
        self.model.n_features()
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        let mut scaled = row.to_vec();
        self.scaler.transform_row(&mut scaled)?;
        self.model.predict_proba_row(&scaled)
    }

    fn name(&self) -> &'static str {
        self.model.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{KNearestNeighbors, KnnParams};
    use crate::metrics::accuracy;
    use crate::preprocess::ScalerKind;
    use aml_dataset::synth;

    /// Data where the informative feature is tiny-scale and a pure-noise
    /// feature spans [0, 1e5] — unscaled kNN is dominated by the noise
    /// axis; the pipeline's standardizer fixes that.
    fn skewed_blobs(seed: u64) -> Dataset {
        use aml_rng::rngs::StdRng;
        use aml_rng::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..300 {
            let class = i % 2;
            let informative = class as f64 * 3.0 + rng.gen::<f64>() - 0.5;
            let noise = rng.gen::<f64>() * 1e5;
            rows.push(vec![informative, noise]);
            labels.push(class);
        }
        Dataset::from_rows(&rows, &labels, 2).unwrap()
    }

    #[test]
    fn pipeline_scaling_beats_raw_knn_on_skewed_data() {
        let train = skewed_blobs(1);
        let test = skewed_blobs(2);
        let raw = KNearestNeighbors::fit(&train, KnnParams::default()).unwrap();
        let raw_acc = accuracy(test.labels(), &raw.predict(&test).unwrap()).unwrap();

        let piped = Pipeline::fit_with(&train, ScalerKind::Standard, |d| {
            Ok(Arc::new(
                KNearestNeighbors::fit(d, KnnParams::default()).unwrap(),
            ))
        })
        .unwrap();
        let piped_acc = accuracy(test.labels(), &piped.predict(&test).unwrap()).unwrap();
        assert!(
            piped_acc > raw_acc + 0.1,
            "scaled kNN {piped_acc} should beat raw {raw_acc} on skewed features"
        );
    }

    #[test]
    fn pipeline_none_scaler_is_transparent() {
        let ds = synth::two_moons(100, 0.2, 2).unwrap();
        let direct = KNearestNeighbors::fit(&ds, KnnParams::default()).unwrap();
        let piped = Pipeline::fit_with(&ds, ScalerKind::None, |d| {
            Ok(Arc::new(
                KNearestNeighbors::fit(d, KnnParams::default()).unwrap(),
            ))
        })
        .unwrap();
        for i in 0..ds.n_rows() {
            assert_eq!(
                direct.predict_proba_row(ds.row(i)).unwrap(),
                piped.predict_proba_row(ds.row(i)).unwrap()
            );
        }
    }

    #[test]
    fn pipeline_reports_inner_name() {
        let ds = synth::two_moons(50, 0.2, 3).unwrap();
        let piped = Pipeline::fit_with(&ds, ScalerKind::MinMax, |d| {
            Ok(Arc::new(
                KNearestNeighbors::fit(d, KnnParams::default()).unwrap(),
            ))
        })
        .unwrap();
        assert_eq!(piped.name(), "knn");
    }
}
