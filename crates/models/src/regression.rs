//! Variance-reduction regression tree — the weak learner inside
//! [`crate::gbdt::GradientBoosting`].
//!
//! Fits real-valued targets by greedily minimizing within-node sum of
//! squared errors. Only what boosting needs is implemented: depth/leaf-size
//! controls and a leaf-value override hook (boosting replaces leaf means
//! with Newton-step values).

use crate::{ModelError, Result};
use aml_dataset::Dataset;

/// Hyperparameters for [`RegressionTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegTreeParams {
    /// Maximum depth (0 = single leaf).
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
}

impl Default for RegTreeParams {
    fn default() -> Self {
        RegTreeParams {
            max_depth: 3,
            min_samples_leaf: 5,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum RNode {
    Leaf {
        value: f64,
        /// Row indices that landed in this leaf at fit time; kept so
        /// boosting can recompute leaf values from gradients/hessians.
        members: Vec<usize>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<RNode>,
    n_features: usize,
}

impl RegressionTree {
    /// Fit on the features of `ds` against real targets `y`.
    ///
    /// # Errors
    /// Empty data, length mismatch, or non-finite targets.
    pub fn fit(ds: &Dataset, y: &[f64], params: &RegTreeParams) -> Result<Self> {
        if ds.is_empty() {
            return Err(ModelError::EmptyTrainingSet);
        }
        if y.len() != ds.n_rows() {
            return Err(ModelError::DimensionMismatch {
                expected: ds.n_rows(),
                got: y.len(),
            });
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::NumericalFailure(
                "non-finite regression target".into(),
            ));
        }
        if params.min_samples_leaf == 0 {
            return Err(ModelError::InvalidHyperparameter(
                "min_samples_leaf must be >= 1".into(),
            ));
        }
        let mut nodes = Vec::new();
        let indices: Vec<usize> = (0..ds.n_rows()).collect();
        grow(ds, y, params, &mut nodes, indices, 0);
        Ok(RegressionTree {
            nodes,
            n_features: ds.n_features(),
        })
    }

    /// Predicted value for one row.
    pub fn predict_row(&self, row: &[f64]) -> Result<f64> {
        if row.len() != self.n_features {
            return Err(ModelError::DimensionMismatch {
                expected: self.n_features,
                got: row.len(),
            });
        }
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                RNode::Leaf { value, .. } => return Ok(*value),
                RNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    }
                }
            }
        }
    }

    /// Replace each leaf's value with `f(member_rows)`. Boosting uses this to
    /// install Newton-step leaf values `Σg / (Σh + λ)` computed from the
    /// per-sample gradients/hessians of the rows in each leaf.
    pub fn relabel_leaves(&mut self, f: impl Fn(&[usize]) -> f64) {
        for node in &mut self.nodes {
            if let RNode::Leaf { value, members } = node {
                *value = f(members);
            }
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, RNode::Leaf { .. }))
            .count()
    }
}

fn grow(
    ds: &Dataset,
    y: &[f64],
    params: &RegTreeParams,
    nodes: &mut Vec<RNode>,
    indices: Vec<usize>,
    depth: usize,
) -> usize {
    let n = indices.len() as f64;
    let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / n;
    let sse: f64 = indices.iter().map(|&i| (y[i] - mean) * (y[i] - mean)).sum();

    if depth >= params.max_depth || indices.len() < 2 * params.min_samples_leaf || sse <= 1e-12 {
        nodes.push(RNode::Leaf {
            value: mean,
            members: indices,
        });
        return nodes.len() - 1;
    }

    // Best split by SSE reduction using running sums.
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    for f in 0..ds.n_features() {
        let mut sorted = indices.clone();
        sorted.sort_by(|&a, &b| {
            ds.row(a)[f]
                .partial_cmp(&ds.row(b)[f])
                .expect("dataset rejects non-finite values")
        });
        let total_sum: f64 = sorted.iter().map(|&i| y[i]).sum();
        let mut left_sum = 0.0;
        for pos in 0..sorted.len() - 1 {
            left_sum += y[sorted[pos]];
            let v_here = ds.row(sorted[pos])[f];
            let v_next = ds.row(sorted[pos + 1])[f];
            if v_here == v_next {
                continue;
            }
            let n_left = pos + 1;
            let n_right = sorted.len() - n_left;
            if n_left < params.min_samples_leaf || n_right < params.min_samples_leaf {
                continue;
            }
            // SSE reduction = sum²_L/n_L + sum²_R/n_R − sum²/n (constant
            // term dropped; maximizing the first two maximizes the gain).
            let right_sum = total_sum - left_sum;
            let score =
                left_sum * left_sum / n_left as f64 + right_sum * right_sum / n_right as f64;
            if score > best.map_or(f64::NEG_INFINITY, |(s, _, _)| s) {
                best = Some((score, f, 0.5 * (v_here + v_next)));
            }
        }
    }

    match best {
        Some((_, feature, threshold)) => {
            let (l, r): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| ds.row(i)[feature] <= threshold);
            let id = nodes.len();
            nodes.push(RNode::Leaf {
                value: 0.0,
                members: Vec::new(),
            }); // placeholder
            let left = grow(ds, y, params, nodes, l, depth + 1);
            let right = grow(ds, y, params, nodes, r, depth + 1);
            nodes[id] = RNode::Split {
                feature,
                threshold,
                left,
                right,
            };
            id
        }
        None => {
            nodes.push(RNode::Leaf {
                value: mean,
                members: indices,
            });
            nodes.len() - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::Dataset;

    fn step_data() -> (Dataset, Vec<f64>) {
        // y = 0 for x < 0.5, y = 10 for x >= 0.5
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] < 0.5 { 0.0 } else { 10.0 })
            .collect();
        let labels = vec![0usize; 40];
        (Dataset::from_rows(&rows, &labels, 1).unwrap(), y)
    }

    #[test]
    fn learns_step_function() {
        let (ds, y) = step_data();
        let t = RegressionTree::fit(
            &ds,
            &y,
            &RegTreeParams {
                max_depth: 2,
                min_samples_leaf: 1,
            },
        )
        .unwrap();
        assert!((t.predict_row(&[0.2]).unwrap() - 0.0).abs() < 1e-9);
        assert!((t.predict_row(&[0.8]).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_predicts_mean() {
        let (ds, y) = step_data();
        let t = RegressionTree::fit(
            &ds,
            &y,
            &RegTreeParams {
                max_depth: 0,
                min_samples_leaf: 1,
            },
        )
        .unwrap();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((t.predict_row(&[0.3]).unwrap() - mean).abs() < 1e-9);
        assert_eq!(t.n_leaves(), 1);
    }

    #[test]
    fn relabel_leaves_overrides_values() {
        let (ds, y) = step_data();
        let mut t = RegressionTree::fit(&ds, &y, &RegTreeParams::default()).unwrap();
        t.relabel_leaves(|_| 42.0);
        assert_eq!(t.predict_row(&[0.1]).unwrap(), 42.0);
        assert_eq!(t.predict_row(&[0.9]).unwrap(), 42.0);
    }

    #[test]
    fn rejects_mismatched_targets() {
        let (ds, _) = step_data();
        assert!(RegressionTree::fit(&ds, &[1.0], &RegTreeParams::default()).is_err());
    }

    #[test]
    fn rejects_nan_target() {
        let (ds, mut y) = step_data();
        y[0] = f64::NAN;
        assert!(RegressionTree::fit(&ds, &y, &RegTreeParams::default()).is_err());
    }

    #[test]
    fn min_samples_leaf_respected() {
        let (ds, y) = step_data();
        let t = RegressionTree::fit(
            &ds,
            &y,
            &RegTreeParams {
                max_depth: 10,
                min_samples_leaf: 10,
            },
        )
        .unwrap();
        assert!(t.n_leaves() <= 4);
    }
}
