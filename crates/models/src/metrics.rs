//! Classification metrics.
//!
//! The paper's headline metric is **balanced accuracy** — "we use this
//! metric to avoid biases due to label imbalance" — i.e. the unweighted mean
//! of per-class recalls. We also provide plain accuracy, confusion matrices,
//! macro precision/recall/F1, log-loss and the Brier score (the latter two
//! are used as AutoML validation objectives and in ablations).

use crate::{ModelError, Result};

/// Fraction of predictions equal to the true label.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> Result<f64> {
    check_paired(y_true, y_pred)?;
    let hits = y_true.iter().zip(y_pred).filter(|(a, b)| a == b).count();
    Ok(hits as f64 / y_true.len() as f64)
}

/// Balanced accuracy: mean recall over classes that appear in `y_true`.
///
/// Matches `sklearn.metrics.balanced_accuracy_score`: classes absent from
/// `y_true` are ignored rather than contributing zero.
pub fn balanced_accuracy(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Result<f64> {
    check_paired(y_true, y_pred)?;
    let cm = confusion_matrix(y_true, y_pred, n_classes)?;
    let mut recall_sum = 0.0;
    let mut present = 0usize;
    for (c, row) in cm.iter().enumerate() {
        let support: usize = row.iter().sum();
        if support > 0 {
            recall_sum += row[c] as f64 / support as f64;
            present += 1;
        }
    }
    if present == 0 {
        return Err(ModelError::EmptyTrainingSet);
    }
    Ok(recall_sum / present as f64)
}

/// Confusion matrix `cm[true][pred]`.
pub fn confusion_matrix(
    y_true: &[usize],
    y_pred: &[usize],
    n_classes: usize,
) -> Result<Vec<Vec<usize>>> {
    check_paired(y_true, y_pred)?;
    let mut cm = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        if t >= n_classes || p >= n_classes {
            return Err(ModelError::InvalidHyperparameter(format!(
                "label {} exceeds n_classes {}",
                t.max(p),
                n_classes
            )));
        }
        cm[t][p] += 1;
    }
    Ok(cm)
}

/// Per-class precision, recall and F1 plus macro averages.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionRecall {
    /// Precision per class (0 when the class was never predicted).
    pub precision: Vec<f64>,
    /// Recall per class (0 when the class has no support).
    pub recall: Vec<f64>,
    /// F1 per class.
    pub f1: Vec<f64>,
    /// Unweighted mean precision over classes with support.
    pub macro_precision: f64,
    /// Unweighted mean recall over classes with support.
    pub macro_recall: f64,
    /// Unweighted mean F1 over classes with support.
    pub macro_f1: f64,
}

/// Compute precision/recall/F1 from predictions.
pub fn precision_recall_f1(
    y_true: &[usize],
    y_pred: &[usize],
    n_classes: usize,
) -> Result<PrecisionRecall> {
    let cm = confusion_matrix(y_true, y_pred, n_classes)?;
    let mut precision = vec![0.0; n_classes];
    let mut recall = vec![0.0; n_classes];
    let mut f1 = vec![0.0; n_classes];
    let mut macro_p = 0.0;
    let mut macro_r = 0.0;
    let mut macro_f = 0.0;
    let mut present = 0usize;
    for c in 0..n_classes {
        let tp = cm[c][c] as f64;
        let support: usize = cm[c].iter().sum();
        let predicted: usize = (0..n_classes).map(|t| cm[t][c]).sum();
        precision[c] = if predicted > 0 {
            tp / predicted as f64
        } else {
            0.0
        };
        recall[c] = if support > 0 {
            tp / support as f64
        } else {
            0.0
        };
        f1[c] = if precision[c] + recall[c] > 0.0 {
            2.0 * precision[c] * recall[c] / (precision[c] + recall[c])
        } else {
            0.0
        };
        if support > 0 {
            macro_p += precision[c];
            macro_r += recall[c];
            macro_f += f1[c];
            present += 1;
        }
    }
    if present == 0 {
        return Err(ModelError::EmptyTrainingSet);
    }
    Ok(PrecisionRecall {
        precision,
        recall,
        f1,
        macro_precision: macro_p / present as f64,
        macro_recall: macro_r / present as f64,
        macro_f1: macro_f / present as f64,
    })
}

/// Multiclass logarithmic loss, probabilities clipped to `[1e-15, 1-1e-15]`.
pub fn log_loss(y_true: &[usize], proba: &[Vec<f64>]) -> Result<f64> {
    if y_true.len() != proba.len() {
        return Err(ModelError::DimensionMismatch {
            expected: y_true.len(),
            got: proba.len(),
        });
    }
    if y_true.is_empty() {
        return Err(ModelError::EmptyTrainingSet);
    }
    let mut total = 0.0;
    for (&t, p) in y_true.iter().zip(proba) {
        if t >= p.len() {
            return Err(ModelError::InvalidHyperparameter(format!(
                "label {t} exceeds probability vector length {}",
                p.len()
            )));
        }
        total -= p[t].clamp(1e-15, 1.0 - 1e-15).ln();
    }
    Ok(total / y_true.len() as f64)
}

/// Multiclass Brier score: mean squared distance between the probability
/// vector and the one-hot truth.
pub fn brier_score(y_true: &[usize], proba: &[Vec<f64>]) -> Result<f64> {
    if y_true.len() != proba.len() {
        return Err(ModelError::DimensionMismatch {
            expected: y_true.len(),
            got: proba.len(),
        });
    }
    if y_true.is_empty() {
        return Err(ModelError::EmptyTrainingSet);
    }
    let mut total = 0.0;
    for (&t, p) in y_true.iter().zip(proba) {
        for (c, &pc) in p.iter().enumerate() {
            let target = if c == t { 1.0 } else { 0.0 };
            total += (pc - target) * (pc - target);
        }
    }
    Ok(total / y_true.len() as f64)
}

fn check_paired(a: &[usize], b: &[usize]) -> Result<()> {
    if a.len() != b.len() {
        return Err(ModelError::DimensionMismatch {
            expected: a.len(),
            got: b.len(),
        });
    }
    if a.is_empty() {
        return Err(ModelError::EmptyTrainingSet);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]).unwrap(), 0.75);
    }

    #[test]
    fn balanced_accuracy_corrects_for_imbalance() {
        // 9 of class 0, 1 of class 1; predicting all-zero gives 90% accuracy
        // but only 50% balanced accuracy.
        let y_true = [0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let y_pred = [0; 10];
        assert_eq!(accuracy(&y_true, &y_pred).unwrap(), 0.9);
        assert_eq!(balanced_accuracy(&y_true, &y_pred, 2).unwrap(), 0.5);
    }

    #[test]
    fn balanced_accuracy_ignores_absent_classes() {
        // 3 classes declared, only 2 present in y_true.
        let y_true = [0, 0, 1, 1];
        let y_pred = [0, 1, 1, 1];
        let ba = balanced_accuracy(&y_true, &y_pred, 3).unwrap();
        assert!((ba - 0.75).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_layout() {
        let cm = confusion_matrix(&[0, 1, 1], &[1, 1, 0], 2).unwrap();
        assert_eq!(cm, vec![vec![0, 1], vec![1, 1]]);
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let y = [0, 1, 2, 1, 0];
        assert_eq!(accuracy(&y, &y).unwrap(), 1.0);
        assert_eq!(balanced_accuracy(&y, &y, 3).unwrap(), 1.0);
        let pr = precision_recall_f1(&y, &y, 3).unwrap();
        assert_eq!(pr.macro_f1, 1.0);
    }

    #[test]
    fn f1_handles_never_predicted_class() {
        let pr = precision_recall_f1(&[0, 1], &[0, 0], 2).unwrap();
        assert_eq!(pr.precision[1], 0.0);
        assert_eq!(pr.recall[1], 0.0);
        assert_eq!(pr.f1[1], 0.0);
    }

    #[test]
    fn log_loss_of_confident_correct_is_small() {
        let l = log_loss(&[0, 1], &[vec![0.99, 0.01], vec![0.01, 0.99]]).unwrap();
        assert!(l < 0.02);
        let bad = log_loss(&[0], &[vec![0.0, 1.0]]).unwrap();
        assert!(bad > 30.0, "clipped log loss is large but finite: {bad}");
    }

    #[test]
    fn brier_score_bounds() {
        let perfect = brier_score(&[0], &[vec![1.0, 0.0]]).unwrap();
        assert_eq!(perfect, 0.0);
        let worst = brier_score(&[0], &[vec![0.0, 1.0]]).unwrap();
        assert_eq!(worst, 2.0);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(accuracy(&[0], &[0, 1]).is_err());
        assert!(log_loss(&[0, 1], &[vec![1.0, 0.0]]).is_err());
    }

    #[test]
    fn out_of_range_label_rejected() {
        assert!(confusion_matrix(&[5], &[0], 2).is_err());
        assert!(log_loss(&[3], &[vec![0.5, 0.5]]).is_err());
    }

    #[test]
    fn empty_eval_split_is_a_typed_error_not_nan() {
        // The quality plane feeds eval predictions straight into these;
        // an empty split must surface as an error the caller can guard,
        // never as a silent NaN that would poison quality.json.
        assert!(matches!(
            accuracy(&[], &[]),
            Err(ModelError::EmptyTrainingSet)
        ));
        assert!(matches!(
            confusion_matrix(&[], &[], 2),
            Err(ModelError::EmptyTrainingSet)
        ));
        assert!(matches!(
            balanced_accuracy(&[], &[], 2),
            Err(ModelError::EmptyTrainingSet)
        ));
        assert!(matches!(
            precision_recall_f1(&[], &[], 2),
            Err(ModelError::EmptyTrainingSet)
        ));
        assert!(matches!(
            brier_score(&[], &[]),
            Err(ModelError::EmptyTrainingSet)
        ));
        assert!(matches!(
            log_loss(&[], &[]),
            Err(ModelError::EmptyTrainingSet)
        ));
    }

    #[test]
    fn absent_class_yields_finite_zeros_and_is_excluded_from_macros() {
        // Class 2 is declared but absent from eval and never predicted:
        // its per-class values are exactly 0 (not NaN from 0/0), and the
        // macro averages only span the present classes.
        let pr = precision_recall_f1(&[0, 0, 1, 1], &[0, 1, 1, 1], 3).unwrap();
        assert_eq!(pr.precision[2], 0.0);
        assert_eq!(pr.recall[2], 0.0);
        assert_eq!(pr.f1[2], 0.0);
        assert!(pr.precision.iter().all(|v| v.is_finite()));
        assert!(pr.recall.iter().all(|v| v.is_finite()));
        assert!(pr.f1.iter().all(|v| v.is_finite()));
        assert!(pr.macro_precision.is_finite() && pr.macro_precision > 0.0);
        assert!(pr.macro_f1.is_finite() && pr.macro_f1 > 0.0);
        // All declared classes absent (only out-of-range impossible, so:
        // predictions exist but every class row is empty) cannot happen
        // with paired inputs; the present == 0 guard still errs rather
        // than dividing by zero when n_classes is 0.
        assert!(precision_recall_f1(&[0], &[0], 0).is_err());
    }
}
