//! AdaBoost.SAMME — multiclass adaptive boosting over depth-limited trees.
//!
//! Each round fits a weighted decision stump/short tree, upweights the
//! samples it misclassified, and earns a say `α = ln((1−ε)/ε) + ln(K−1)`
//! proportional to how much better than chance it did. Yet another
//! differently-biased committee member for the AutoML ensemble — boosting
//! with reweighting (vs. gradient fitting in [`crate::gbdt`]) fails in
//! different places, which is exactly the diversity QBC and the ALE
//! feedback feed on.

use crate::model::{check_row, check_training, normalize, Classifier};
use crate::tree::{DecisionTree, TreeParams};
use crate::{ModelError, Result};
use aml_dataset::Dataset;

/// Hyperparameters for [`AdaBoost`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdaBoostParams {
    /// Boosting rounds (weak learners).
    pub n_rounds: usize,
    /// Depth of each weak tree (1 = decision stumps).
    pub max_depth: usize,
    /// Learning rate shrinking each learner's say.
    pub learning_rate: f64,
}

impl Default for AdaBoostParams {
    fn default() -> Self {
        AdaBoostParams {
            n_rounds: 40,
            max_depth: 2,
            learning_rate: 1.0,
        }
    }
}

/// A fitted AdaBoost.SAMME classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaBoost {
    learners: Vec<(f64, DecisionTree)>,
    n_classes: usize,
    n_features: usize,
}

impl AdaBoost {
    /// Fit by SAMME reweighting.
    pub fn fit(ds: &Dataset, params: AdaBoostParams) -> Result<Self> {
        check_training(ds)?;
        if params.n_rounds == 0 {
            return Err(ModelError::InvalidHyperparameter(
                "n_rounds must be >= 1".into(),
            ));
        }
        if !(params.learning_rate > 0.0 && params.learning_rate <= 2.0) {
            return Err(ModelError::InvalidHyperparameter(format!(
                "learning_rate {} outside (0, 2]",
                params.learning_rate
            )));
        }
        let n = ds.n_rows();
        let k = ds.n_classes() as f64;
        let mut weights = vec![1.0 / n as f64; n];
        let mut learners = Vec::with_capacity(params.n_rounds);

        for round in 0..params.n_rounds {
            let tree = DecisionTree::fit_weighted(
                ds,
                TreeParams {
                    max_depth: params.max_depth,
                    seed: round as u64,
                    ..Default::default()
                },
                &weights,
            )?;
            // Weighted training error of this learner.
            let mut err = 0.0;
            let mut wrong = vec![false; n];
            for i in 0..n {
                let pred = tree.predict_row(ds.row(i))?;
                if pred != ds.label(i) {
                    err += weights[i];
                    wrong[i] = true;
                }
            }
            // SAMME requires better-than-chance: err < 1 − 1/K.
            let chance = 1.0 - 1.0 / k;
            if err >= chance {
                // No better than chance — stop boosting (keep what we have;
                // if nothing was kept, fall back to this single learner
                // with a tiny say so predictions remain defined).
                if learners.is_empty() {
                    learners.push((1e-3, tree));
                }
                break;
            }
            let err = err.clamp(1e-10, chance - 1e-10);
            let alpha = params.learning_rate * ((1.0 - err) / err).ln() + (k - 1.0).ln();
            // Upweight mistakes, renormalize.
            for i in 0..n {
                if wrong[i] {
                    weights[i] *= alpha.exp().min(1e12);
                }
            }
            let total: f64 = weights.iter().sum();
            if total <= 0.0 || !total.is_finite() {
                return Err(ModelError::NumericalFailure(
                    "AdaBoost weights degenerated".into(),
                ));
            }
            for w in &mut weights {
                *w /= total;
            }
            learners.push((alpha, tree));
            // Perfect fit: no point boosting further.
            if err <= 1e-9 {
                break;
            }
        }

        Ok(AdaBoost {
            learners,
            n_classes: ds.n_classes(),
            n_features: ds.n_features(),
        })
    }

    /// Number of weak learners actually kept.
    pub fn n_learners(&self) -> usize {
        self.learners.len()
    }
}

impl Classifier for AdaBoost {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        check_row(row, self.n_features)?;
        // Weighted vote mass per class, normalized — standard SAMME
        // aggregation (votes, not margins, keep this calibrated enough for
        // soft voting).
        let mut votes = vec![0.0; self.n_classes];
        for (alpha, tree) in &self.learners {
            votes[tree.predict_row(row)?] += alpha;
        }
        Ok(normalize(votes))
    }

    fn name(&self) -> &'static str {
        "adaboost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use aml_dataset::synth;

    #[test]
    fn stumps_cannot_start_on_xor() {
        // A depth-1 stump on XOR is exactly chance, so SAMME stops after
        // round 1 (this is the textbook AdaBoost failure mode) — the model
        // must still predict sanely.
        let ds = synth::noisy_xor(400, 0.0, 1).unwrap();
        let boosted = AdaBoost::fit(
            &ds,
            AdaBoostParams {
                n_rounds: 60,
                max_depth: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // Either boosting stops early (stump exactly at chance) or it limps
        // along with near-zero says; in both cases XOR stays unlearnable
        // for axis-aligned stumps and predictions remain valid.
        let acc = accuracy(ds.labels(), &boosted.predict(&ds).unwrap()).unwrap();
        assert!(acc < 0.8, "stumps should not crack XOR, got {acc}");
        let p = boosted.predict_proba_row(ds.row(0)).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn depth_two_learners_boost_past_a_single_tree_on_xor() {
        let ds = synth::noisy_xor(400, 0.0, 1).unwrap();
        let single = DecisionTree::fit(
            &ds,
            TreeParams {
                max_depth: 2,
                min_samples_leaf: 40,
                ..Default::default()
            },
        )
        .unwrap();
        let single_acc = accuracy(ds.labels(), &single.predict(&ds).unwrap()).unwrap();
        let boosted = AdaBoost::fit(
            &ds,
            AdaBoostParams {
                n_rounds: 60,
                max_depth: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let boosted_acc = accuracy(ds.labels(), &boosted.predict(&ds).unwrap()).unwrap();
        assert!(
            boosted_acc > 0.9 && boosted_acc > single_acc,
            "boosted {boosted_acc} vs single depth-2 tree {single_acc}"
        );
    }

    #[test]
    fn multiclass_blobs_learned() {
        let train = synth::gaussian_blobs(240, 2, 3, 1.0, 2).unwrap();
        let test = synth::gaussian_blobs(120, 2, 3, 1.0, 3).unwrap();
        let m = AdaBoost::fit(&train, AdaBoostParams::default()).unwrap();
        let acc = accuracy(test.labels(), &m.predict(&test).unwrap()).unwrap();
        assert!(acc > 0.85, "AdaBoost 3-class accuracy {acc}");
    }

    #[test]
    fn early_stop_on_perfect_fit() {
        // Trivially separable: the first deep-enough learner is perfect and
        // boosting stops early.
        let ds = synth::gaussian_blobs(100, 2, 2, 0.01, 4).unwrap();
        let m = AdaBoost::fit(
            &ds,
            AdaBoostParams {
                n_rounds: 50,
                max_depth: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.n_learners() < 50, "kept {} learners", m.n_learners());
        let acc = accuracy(ds.labels(), &m.predict(&ds).unwrap()).unwrap();
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn proba_is_distribution() {
        let ds = synth::two_moons(150, 0.2, 5).unwrap();
        let m = AdaBoost::fit(&ds, AdaBoostParams::default()).unwrap();
        for i in 0..10 {
            let p = m.predict_proba_row(ds.row(i)).unwrap();
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let ds = synth::two_moons(50, 0.1, 0).unwrap();
        assert!(AdaBoost::fit(
            &ds,
            AdaBoostParams {
                n_rounds: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(AdaBoost::fit(
            &ds,
            AdaBoostParams {
                learning_rate: 0.0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic() {
        let ds = synth::two_moons(100, 0.2, 7).unwrap();
        let a = AdaBoost::fit(&ds, AdaBoostParams::default()).unwrap();
        let b = AdaBoost::fit(&ds, AdaBoostParams::default()).unwrap();
        assert_eq!(a, b);
    }
}
