//! # aml-models
//!
//! From-scratch classical ML classifiers, the building blocks of the
//! mini-AutoML system (`aml-automl`). The paper relies on auto-sklearn,
//! whose accuracy comes from "ensembles which contain a set of diverse ML
//! models with uncorrelated errors" — so this crate provides the diversity:
//!
//! * [`tree::DecisionTree`] — CART with gini/entropy, best or random splits
//! * [`forest::RandomForest`] — bagged trees with feature subsampling
//! * [`forest::ExtraTrees`] — extremely randomized trees
//! * [`gbdt::GradientBoosting`] — one-vs-rest boosted regression trees on
//!   logistic loss
//! * [`adaboost::AdaBoost`] — AdaBoost.SAMME over shallow trees
//! * [`knn::KNearestNeighbors`] — brute-force kNN with optional distance
//!   weighting
//! * [`naive_bayes::GaussianNaiveBayes`]
//! * [`logistic::LogisticRegression`] — multinomial softmax, L2, full-batch
//!   gradient descent
//! * [`linear_svm::LinearSvm`] — one-vs-rest hinge loss via SGD with
//!   softmax-over-margins probability calibration
//!
//! plus preprocessing ([`preprocess`]), pipelines ([`pipeline`]), soft-voting
//! ensembles ([`ensemble`]) and the evaluation metrics the paper reports
//! ([`metrics::balanced_accuracy`] et al.).
//!
//! Every classifier implements the object-safe [`Classifier`] trait
//! (`predict_proba_row` is the only required prediction method), takes an
//! explicit seed where stochastic, and returns `Result` rather than
//! panicking on malformed input.

pub mod adaboost;
pub mod ensemble;
pub mod forest;
pub mod gbdt;
pub mod knn;
pub mod linear_svm;
pub mod logistic;
pub mod metrics;
pub mod model;
pub mod naive_bayes;
pub mod pipeline;
pub mod preprocess;
pub mod regression;
pub mod tree;

pub use adaboost::AdaBoost;
pub use ensemble::SoftVotingEnsemble;
pub use forest::{ExtraTrees, RandomForest};
pub use gbdt::GradientBoosting;
pub use knn::KNearestNeighbors;
pub use linear_svm::LinearSvm;
pub use logistic::LogisticRegression;
pub use model::Classifier;
pub use naive_bayes::GaussianNaiveBayes;
pub use pipeline::Pipeline;
pub use tree::DecisionTree;

/// Errors produced while fitting or evaluating models.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Training data was empty.
    EmptyTrainingSet,
    /// A hyperparameter had an invalid value.
    InvalidHyperparameter(String),
    /// Prediction input had the wrong number of features.
    DimensionMismatch {
        /// Expected number of features.
        expected: usize,
        /// Provided number of features.
        got: usize,
    },
    /// The model has not been fitted (internal misuse).
    NotFitted,
    /// Training data contained fewer than two classes with samples.
    SingleClass,
    /// Numerical failure (non-finite loss/weights) during optimization.
    NumericalFailure(String),
    /// Error bubbled up from the dataset layer.
    Data(aml_dataset::DataError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::EmptyTrainingSet => write!(f, "training set is empty"),
            ModelError::InvalidHyperparameter(m) => write!(f, "invalid hyperparameter: {m}"),
            ModelError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
            ModelError::NotFitted => write!(f, "model is not fitted"),
            ModelError::SingleClass => write!(f, "training data contains a single class"),
            ModelError::NumericalFailure(m) => write!(f, "numerical failure: {m}"),
            ModelError::Data(e) => write!(f, "dataset error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<aml_dataset::DataError> for ModelError {
    fn from(e: aml_dataset::DataError) -> Self {
        ModelError::Data(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;
