//! Gaussian naive Bayes.
//!
//! Models each feature as an independent per-class Gaussian. Exactly the
//! kind of "prior-encoding" model the paper's §1 discusses (independence
//! assumptions across features), and a cheap, very differently-biased
//! committee member for the AutoML ensemble.

use crate::model::{check_row, check_training, Classifier};
use crate::{ModelError, Result};
use aml_dataset::Dataset;

/// Hyperparameters for [`GaussianNaiveBayes`].
#[derive(Debug, Clone, PartialEq)]
pub struct NbParams {
    /// Additive variance smoothing as a fraction of the largest feature
    /// variance (sklearn's `var_smoothing`, default 1e-9).
    pub var_smoothing: f64,
}

impl Default for NbParams {
    fn default() -> Self {
        NbParams {
            var_smoothing: 1e-9,
        }
    }
}

/// A fitted Gaussian naive Bayes classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianNaiveBayes {
    /// Log class priors.
    log_prior: Vec<f64>,
    /// `means[class][feature]`.
    means: Vec<Vec<f64>>,
    /// `vars[class][feature]` (smoothed, strictly positive).
    vars: Vec<Vec<f64>>,
    /// Classes with zero training samples get `-inf` posterior via prior.
    n_features: usize,
}

impl GaussianNaiveBayes {
    /// Fit per-class feature Gaussians.
    pub fn fit(ds: &Dataset, params: NbParams) -> Result<Self> {
        let counts = check_training(ds)?;
        if params.var_smoothing.is_nan() || params.var_smoothing < 0.0 {
            return Err(ModelError::InvalidHyperparameter(
                "var_smoothing must be >= 0".into(),
            ));
        }
        let k = ds.n_classes();
        let d = ds.n_features();
        let n = ds.n_rows() as f64;

        let mut means = vec![vec![0.0; d]; k];
        for i in 0..ds.n_rows() {
            let c = ds.label(i);
            for (j, &v) in ds.row(i).iter().enumerate() {
                means[c][j] += v;
            }
        }
        for (mean_row, &count) in means.iter_mut().zip(&counts) {
            if count > 0 {
                for m in mean_row.iter_mut() {
                    *m /= count as f64;
                }
            }
        }

        let mut vars = vec![vec![0.0; d]; k];
        for i in 0..ds.n_rows() {
            let c = ds.label(i);
            for (j, &v) in ds.row(i).iter().enumerate() {
                let diff = v - means[c][j];
                vars[c][j] += diff * diff;
            }
        }
        // Global max variance for the smoothing scale.
        let mut global_max_var: f64 = 0.0;
        for j in 0..d {
            let col_mean: f64 = (0..ds.n_rows()).map(|i| ds.row(i)[j]).sum::<f64>() / n;
            let col_var: f64 = (0..ds.n_rows())
                .map(|i| {
                    let x = ds.row(i)[j] - col_mean;
                    x * x
                })
                .sum::<f64>()
                / n;
            global_max_var = global_max_var.max(col_var);
        }
        let eps = (params.var_smoothing * global_max_var).max(1e-12);
        for (var_row, &count) in vars.iter_mut().zip(&counts) {
            for v in var_row.iter_mut() {
                *v = if count > 0 {
                    *v / count as f64 + eps
                } else {
                    eps
                };
            }
        }

        let log_prior = counts
            .iter()
            .map(|&c| {
                if c > 0 {
                    (c as f64 / n).ln()
                } else {
                    f64::NEG_INFINITY
                }
            })
            .collect();

        Ok(GaussianNaiveBayes {
            log_prior,
            means,
            vars,
            n_features: d,
        })
    }
}

impl Classifier for GaussianNaiveBayes {
    fn n_classes(&self) -> usize {
        self.log_prior.len()
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        check_row(row, self.n_features)?;
        let k = self.log_prior.len();
        let mut log_post = vec![0.0; k];
        for (c, post) in log_post.iter_mut().enumerate() {
            let mut lp = self.log_prior[c];
            if lp.is_finite() {
                for (j, &x) in row.iter().enumerate() {
                    let var = self.vars[c][j];
                    let diff = x - self.means[c][j];
                    lp += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
                }
            }
            *post = lp;
        }
        Ok(crate::gbdt::softmax(&log_post))
    }

    fn name(&self) -> &'static str {
        "gaussian_nb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use aml_dataset::synth;

    #[test]
    fn separable_blobs_classified_well() {
        let train = synth::gaussian_blobs(200, 2, 2, 1.0, 1).unwrap();
        let test = synth::gaussian_blobs(100, 2, 2, 1.0, 2).unwrap();
        let nb = GaussianNaiveBayes::fit(&train, NbParams::default()).unwrap();
        let acc = accuracy(test.labels(), &nb.predict(&test).unwrap()).unwrap();
        assert!(acc > 0.95, "NB blob accuracy {acc}");
    }

    #[test]
    fn xor_defeats_naive_bayes() {
        // Marginal feature distributions are identical across XOR classes,
        // so NB cannot beat chance by much — this is the diversity property
        // the ensemble exploits.
        let ds = synth::noisy_xor(1000, 0.0, 3).unwrap();
        let nb = GaussianNaiveBayes::fit(&ds, NbParams::default()).unwrap();
        let acc = accuracy(ds.labels(), &nb.predict(&ds).unwrap()).unwrap();
        assert!(acc < 0.65, "NB should fail on XOR, got {acc}");
    }

    #[test]
    fn proba_sums_to_one() {
        let ds = synth::gaussian_blobs(60, 3, 3, 1.5, 5).unwrap();
        let nb = GaussianNaiveBayes::fit(&ds, NbParams::default()).unwrap();
        let p = nb.predict_proba_row(ds.row(0)).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prior_dominates_far_from_data() {
        // Heavily imbalanced classes: far from both means the likelihoods
        // cancel and the prior should decide.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            rows.push(vec![i as f64 * 0.01]);
            labels.push(0usize);
        }
        for i in 0..10 {
            rows.push(vec![1.0 + i as f64 * 0.01]);
            labels.push(1usize);
        }
        let ds = aml_dataset::Dataset::from_rows(&rows, &labels, 2).unwrap();
        let nb = GaussianNaiveBayes::fit(&ds, NbParams::default()).unwrap();
        let p = nb.predict_proba_row(&[0.45]).unwrap();
        assert!(p[0] > 0.5);
    }

    #[test]
    fn negative_smoothing_rejected() {
        let ds = synth::two_moons(40, 0.1, 0).unwrap();
        assert!(GaussianNaiveBayes::fit(
            &ds,
            NbParams {
                var_smoothing: -1.0
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic() {
        let ds = synth::two_moons(80, 0.2, 7).unwrap();
        let a = GaussianNaiveBayes::fit(&ds, NbParams::default()).unwrap();
        let b = GaussianNaiveBayes::fit(&ds, NbParams::default()).unwrap();
        assert_eq!(a, b);
    }
}
