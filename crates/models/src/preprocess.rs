//! Feature preprocessing: standardization and min-max scaling.
//!
//! Distance- and gradient-based models (kNN, logistic regression, linear
//! SVM) need comparable feature scales; tree models do not. The AutoML
//! search space pairs each model family with an appropriate scaler through
//! [`crate::pipeline::Pipeline`].

use crate::{ModelError, Result};
use aml_dataset::Dataset;

/// A fitted feature transformer.
pub trait Transformer: Send + Sync {
    /// Transform one row in place.
    fn transform_row(&self, row: &mut [f64]) -> Result<()>;

    /// Transform every row of a dataset into a new dataset.
    fn transform(&self, ds: &Dataset) -> Result<Dataset> {
        let mut out = ds.empty_like();
        for i in 0..ds.n_rows() {
            let mut row = ds.row(i).to_vec();
            self.transform_row(&mut row)?;
            out.push_row(&row, ds.label(i))?;
        }
        Ok(out)
    }
}

/// Z-score standardization: `x ← (x − mean) / std`, with constant columns
/// mapped to 0 (std clamped away from zero).
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fit per-column mean and standard deviation on `ds`.
    pub fn fit(ds: &Dataset) -> Result<Self> {
        if ds.is_empty() {
            return Err(ModelError::EmptyTrainingSet);
        }
        let n = ds.n_rows() as f64;
        let d = ds.n_features();
        let mut means = vec![0.0; d];
        for i in 0..ds.n_rows() {
            for (j, &v) in ds.row(i).iter().enumerate() {
                means[j] += v / n;
            }
        }
        let mut vars = vec![0.0; d];
        for i in 0..ds.n_rows() {
            for (j, &v) in ds.row(i).iter().enumerate() {
                vars[j] += (v - means[j]) * (v - means[j]) / n;
            }
        }
        let stds = vars.iter().map(|v| v.sqrt().max(1e-12)).collect();
        Ok(Standardizer { means, stds })
    }

    /// Per-column means learned at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column standard deviations learned at fit time.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

impl Transformer for Standardizer {
    fn transform_row(&self, row: &mut [f64]) -> Result<()> {
        if row.len() != self.means.len() {
            return Err(ModelError::DimensionMismatch {
                expected: self.means.len(),
                got: row.len(),
            });
        }
        for (j, v) in row.iter_mut().enumerate() {
            *v = (*v - self.means[j]) / self.stds[j];
        }
        Ok(())
    }
}

/// Min-max scaling to `[0, 1]`; constant columns map to 0.5.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Fit per-column min and range on `ds`.
    pub fn fit(ds: &Dataset) -> Result<Self> {
        if ds.is_empty() {
            return Err(ModelError::EmptyTrainingSet);
        }
        let d = ds.n_features();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for i in 0..ds.n_rows() {
            for (j, &v) in ds.row(i).iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        let ranges = mins.iter().zip(&maxs).map(|(lo, hi)| hi - lo).collect();
        Ok(MinMaxScaler { mins, ranges })
    }
}

impl Transformer for MinMaxScaler {
    fn transform_row(&self, row: &mut [f64]) -> Result<()> {
        if row.len() != self.mins.len() {
            return Err(ModelError::DimensionMismatch {
                expected: self.mins.len(),
                got: row.len(),
            });
        }
        for (j, v) in row.iter_mut().enumerate() {
            *v = if self.ranges[j] > 0.0 {
                (*v - self.mins[j]) / self.ranges[j]
            } else {
                0.5
            };
        }
        Ok(())
    }
}

/// Which scaler (if any) a pipeline applies before its model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalerKind {
    /// No preprocessing (tree models).
    None,
    /// [`Standardizer`].
    Standard,
    /// [`MinMaxScaler`].
    MinMax,
}

/// A fitted scaler matching [`ScalerKind`].
#[derive(Debug, Clone, PartialEq)]
pub enum FittedScaler {
    /// Identity.
    None,
    /// Fitted standardizer.
    Standard(Standardizer),
    /// Fitted min-max scaler.
    MinMax(MinMaxScaler),
}

impl FittedScaler {
    /// Fit the scaler of the given kind on `ds`.
    pub fn fit(kind: ScalerKind, ds: &Dataset) -> Result<Self> {
        Ok(match kind {
            ScalerKind::None => FittedScaler::None,
            ScalerKind::Standard => FittedScaler::Standard(Standardizer::fit(ds)?),
            ScalerKind::MinMax => FittedScaler::MinMax(MinMaxScaler::fit(ds)?),
        })
    }
}

impl Transformer for FittedScaler {
    fn transform_row(&self, row: &mut [f64]) -> Result<()> {
        match self {
            FittedScaler::None => Ok(()),
            FittedScaler::Standard(s) => s.transform_row(row),
            FittedScaler::MinMax(s) => s.transform_row(row),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aml_dataset::Dataset;

    fn ds() -> Dataset {
        Dataset::from_rows(
            &[
                vec![0.0, 100.0],
                vec![10.0, 100.0],
                vec![20.0, 100.0],
                vec![30.0, 100.0],
            ],
            &[0, 0, 1, 1],
            2,
        )
        .unwrap()
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let s = Standardizer::fit(&ds()).unwrap();
        let t = s.transform(&ds()).unwrap();
        let col = t.column(0).unwrap();
        let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
        let var: f64 = col.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / col.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn standardizer_constant_column_maps_to_zero() {
        let s = Standardizer::fit(&ds()).unwrap();
        let t = s.transform(&ds()).unwrap();
        assert!(t.column(1).unwrap().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let s = MinMaxScaler::fit(&ds()).unwrap();
        let t = s.transform(&ds()).unwrap();
        let col = t.column(0).unwrap();
        assert_eq!(col[0], 0.0);
        assert_eq!(col[3], 1.0);
        // Constant column → 0.5.
        assert!(t.column(1).unwrap().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn transform_checks_dimensions() {
        let s = Standardizer::fit(&ds()).unwrap();
        let mut bad = vec![1.0];
        assert!(s.transform_row(&mut bad).is_err());
    }

    #[test]
    fn fitted_scaler_none_is_identity() {
        let f = FittedScaler::fit(ScalerKind::None, &ds()).unwrap();
        let mut row = vec![3.0, 7.0];
        f.transform_row(&mut row).unwrap();
        assert_eq!(row, vec![3.0, 7.0]);
    }

    #[test]
    fn empty_fit_rejected() {
        let empty = ds().empty_like();
        assert!(Standardizer::fit(&empty).is_err());
        assert!(MinMaxScaler::fit(&empty).is_err());
    }
}
