//! Brute-force k-nearest-neighbours classifier.
//!
//! Stores the (typically scaled — see [`crate::pipeline::Pipeline`])
//! training set and classifies by majority/distance-weighted vote over the
//! `k` nearest rows in Euclidean distance. Brute force is fine at the
//! dataset sizes of the paper's experiments (~thousands of rows) and keeps
//! the implementation obviously correct.

use crate::model::{check_row, check_training, normalize, Classifier};
use crate::{ModelError, Result};
use aml_dataset::Dataset;

/// Vote weighting scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnWeights {
    /// Each neighbour contributes 1.
    Uniform,
    /// Each neighbour contributes `1 / (distance + ε)`.
    Distance,
}

/// Hyperparameters for [`KNearestNeighbors`].
#[derive(Debug, Clone, PartialEq)]
pub struct KnnParams {
    /// Number of neighbours.
    pub k: usize,
    /// Vote weighting.
    pub weights: KnnWeights,
}

impl Default for KnnParams {
    fn default() -> Self {
        KnnParams {
            k: 5,
            weights: KnnWeights::Uniform,
        }
    }
}

/// A fitted (memorized) kNN classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct KNearestNeighbors {
    train: Dataset,
    params: KnnParams,
}

impl KNearestNeighbors {
    /// "Fit" = store the training set. `k` is clamped to the training size
    /// at prediction time, but `k == 0` is rejected here.
    pub fn fit(ds: &Dataset, params: KnnParams) -> Result<Self> {
        check_training(ds)?;
        if params.k == 0 {
            return Err(ModelError::InvalidHyperparameter("k must be >= 1".into()));
        }
        Ok(KNearestNeighbors {
            train: ds.clone(),
            params,
        })
    }

    /// The effective `k` used for votes.
    pub fn effective_k(&self) -> usize {
        self.params.k.min(self.train.n_rows())
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Classifier for KNearestNeighbors {
    fn n_classes(&self) -> usize {
        self.train.n_classes()
    }

    fn n_features(&self) -> usize {
        self.train.n_features()
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        check_row(row, self.train.n_features())?;
        let k = self.effective_k();
        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, usize)> = (0..self.train.n_rows())
            .map(|i| (sq_dist(row, self.train.row(i)), self.train.label(i)))
            .collect();
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("squared distances are finite")
        });
        let mut votes = vec![0.0; self.train.n_classes()];
        for &(d, label) in &dists[..k] {
            let w = match self.params.weights {
                KnnWeights::Uniform => 1.0,
                KnnWeights::Distance => 1.0 / (d.sqrt() + 1e-9),
            };
            votes[label] += w;
        }
        Ok(normalize(votes))
    }

    fn name(&self) -> &'static str {
        "knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use aml_dataset::synth;

    #[test]
    fn one_nn_memorizes_training_set() {
        let ds = synth::gaussian_blobs(60, 2, 3, 1.0, 1).unwrap();
        let knn = KNearestNeighbors::fit(
            &ds,
            KnnParams {
                k: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let pred = knn.predict(&ds).unwrap();
        assert_eq!(accuracy(ds.labels(), &pred).unwrap(), 1.0);
    }

    #[test]
    fn generalizes_on_blobs() {
        let train = synth::gaussian_blobs(200, 2, 2, 1.0, 2).unwrap();
        let test = synth::gaussian_blobs(100, 2, 2, 1.0, 3).unwrap();
        let knn = KNearestNeighbors::fit(&train, KnnParams::default()).unwrap();
        let acc = accuracy(test.labels(), &knn.predict(&test).unwrap()).unwrap();
        assert!(acc > 0.9, "kNN blob accuracy {acc}");
    }

    #[test]
    fn distance_weighting_prefers_closer_neighbour() {
        // Two classes: one point at 0 (class 0), two points far away at 10
        // and 10.1 (class 1). With k=3 uniform, class 1 wins 2:1; with
        // distance weights, the query at 0.1 sides with class 0.
        let ds =
            aml_dataset::Dataset::from_rows(&[vec![0.0], vec![10.0], vec![10.1]], &[0, 1, 1], 2)
                .unwrap();
        let uniform = KNearestNeighbors::fit(
            &ds,
            KnnParams {
                k: 3,
                weights: KnnWeights::Uniform,
            },
        )
        .unwrap();
        let weighted = KNearestNeighbors::fit(
            &ds,
            KnnParams {
                k: 3,
                weights: KnnWeights::Distance,
            },
        )
        .unwrap();
        assert_eq!(uniform.predict_row(&[0.1]).unwrap(), 1);
        assert_eq!(weighted.predict_row(&[0.1]).unwrap(), 0);
    }

    #[test]
    fn k_larger_than_training_set_is_clamped() {
        let ds = aml_dataset::Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0]], &[0, 1, 1], 2)
            .unwrap();
        let knn = KNearestNeighbors::fit(
            &ds,
            KnnParams {
                k: 50,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(knn.effective_k(), 3);
        // Majority of the whole set is class 1.
        assert_eq!(knn.predict_row(&[0.0]).unwrap(), 1);
    }

    #[test]
    fn k_zero_rejected() {
        let ds = synth::two_moons(20, 0.1, 0).unwrap();
        assert!(KNearestNeighbors::fit(
            &ds,
            KnnParams {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn proba_is_vote_fraction() {
        let ds = aml_dataset::Dataset::from_rows(&[vec![0.0], vec![0.2], vec![5.0]], &[0, 0, 1], 2)
            .unwrap();
        let knn = KNearestNeighbors::fit(
            &ds,
            KnnParams {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let p = knn.predict_proba_row(&[0.1]).unwrap();
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-9);
    }
}
