//! Linear support-vector machine (one-vs-rest hinge loss, SGD).
//!
//! Each class gets a binary max-margin separator trained by stochastic
//! subgradient descent on the L2-regularized hinge loss (Pegasos-style
//! `1/(λ t)` step size). Probabilities are a softmax over the per-class
//! margins scaled by a temperature fitted crudely from the training margins
//! — not a full Platt calibration, but monotone in the margins, which is all
//! the ensemble's soft voting and QBC's vote entropy require.

use crate::gbdt::softmax;
use crate::model::{check_row, check_training, Classifier};
use crate::{ModelError, Result};
use aml_dataset::Dataset;
use aml_rng::rngs::StdRng;
use aml_rng::{Rng, SeedableRng};

/// Hyperparameters for [`LinearSvm`].
#[derive(Debug, Clone, PartialEq)]
pub struct SvmParams {
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Number of SGD epochs over the data.
    pub epochs: usize,
    /// RNG seed for sample ordering.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            lambda: 1e-3,
            epochs: 30,
            seed: 0,
        }
    }
}

/// A fitted one-vs-rest linear SVM.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    /// `weights[class][feature]`.
    weights: Vec<Vec<f64>>,
    /// Per-class bias.
    biases: Vec<f64>,
    /// Softmax temperature fitted from training margin scale.
    temperature: f64,
    n_features: usize,
}

impl LinearSvm {
    /// Fit one binary Pegasos SVM per class.
    pub fn fit(ds: &Dataset, params: SvmParams) -> Result<Self> {
        check_training(ds)?;
        if params.lambda.is_nan() || params.lambda <= 0.0 {
            return Err(ModelError::InvalidHyperparameter(
                "lambda must be > 0".into(),
            ));
        }
        if params.epochs == 0 {
            return Err(ModelError::InvalidHyperparameter(
                "epochs must be >= 1".into(),
            ));
        }
        let k = ds.n_classes();
        let d = ds.n_features();
        let n = ds.n_rows();

        let mut weights = vec![vec![0.0; d]; k];
        let mut biases = vec![0.0; k];
        let mut rng = StdRng::seed_from_u64(params.seed);

        for c in 0..k {
            let w = &mut weights[c];
            let b = &mut biases[c];
            let mut t = 0u64;
            for _epoch in 0..params.epochs {
                for _step in 0..n {
                    t += 1;
                    let i = rng.gen_range(0..n);
                    let row = ds.row(i);
                    let y = if ds.label(i) == c { 1.0 } else { -1.0 };
                    let eta = 1.0 / (params.lambda * t as f64);
                    let margin = y * (dot(w, row) + *b);
                    // Subgradient of λ/2‖w‖² + max(0, 1 − margin).
                    for wj in w.iter_mut() {
                        *wj *= 1.0 - eta * params.lambda;
                    }
                    if margin < 1.0 {
                        for (wj, &x) in w.iter_mut().zip(row) {
                            *wj += eta * y * x;
                        }
                        *b += eta * y;
                    }
                    if w.iter().any(|v| !v.is_finite()) {
                        return Err(ModelError::NumericalFailure(
                            "SVM weights diverged; scale features first".into(),
                        ));
                    }
                }
            }
        }

        // Temperature: inverse of the mean absolute margin, so softmax inputs
        // land in a reasonable range regardless of feature scaling.
        let mut total_margin = 0.0;
        for i in 0..n {
            let row = ds.row(i);
            for c in 0..k {
                total_margin += (dot(&weights[c], row) + biases[c]).abs();
            }
        }
        let mean_margin = total_margin / (n * k) as f64;
        let temperature = if mean_margin > 1e-9 {
            2.0 / mean_margin
        } else {
            1.0
        };

        Ok(LinearSvm {
            weights,
            biases,
            temperature,
            n_features: d,
        })
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Classifier for LinearSvm {
    fn n_classes(&self) -> usize {
        self.weights.len()
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        check_row(row, self.n_features)?;
        let scores: Vec<f64> = self
            .weights
            .iter()
            .zip(&self.biases)
            .map(|(w, b)| self.temperature * (b + dot(w, row)))
            .collect();
        Ok(softmax(&scores))
    }

    fn name(&self) -> &'static str {
        "linear_svm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::preprocess::{Standardizer, Transformer};
    use aml_dataset::synth;

    #[test]
    fn separable_blobs_fit_well() {
        let raw = synth::gaussian_blobs(200, 2, 2, 1.0, 1).unwrap();
        let scaler = Standardizer::fit(&raw).unwrap();
        let ds = scaler.transform(&raw).unwrap();
        let m = LinearSvm::fit(&ds, SvmParams::default()).unwrap();
        let acc = accuracy(ds.labels(), &m.predict(&ds).unwrap()).unwrap();
        assert!(acc > 0.95, "svm accuracy {acc}");
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let raw = synth::gaussian_blobs(300, 2, 3, 1.0, 2).unwrap();
        let scaler = Standardizer::fit(&raw).unwrap();
        let ds = scaler.transform(&raw).unwrap();
        let m = LinearSvm::fit(&ds, SvmParams::default()).unwrap();
        let acc = accuracy(ds.labels(), &m.predict(&ds).unwrap()).unwrap();
        assert!(acc > 0.85, "multiclass svm accuracy {acc}");
    }

    #[test]
    fn proba_is_distribution_and_monotone_in_margin() {
        let raw = synth::gaussian_blobs(100, 2, 2, 0.5, 3).unwrap();
        let scaler = Standardizer::fit(&raw).unwrap();
        let ds = scaler.transform(&raw).unwrap();
        let m = LinearSvm::fit(&ds, SvmParams::default()).unwrap();
        let p = m.predict_proba_row(ds.row(0)).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The training points should mostly be confidently classified.
        let confident = (0..ds.n_rows())
            .filter(|&i| {
                let p = m.predict_proba_row(ds.row(i)).unwrap();
                p.iter().cloned().fold(f64::MIN, f64::max) > 0.6
            })
            .count();
        assert!(confident > ds.n_rows() / 2);
    }

    #[test]
    fn invalid_params_rejected() {
        let ds = synth::two_moons(40, 0.1, 0).unwrap();
        assert!(LinearSvm::fit(
            &ds,
            SvmParams {
                lambda: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(LinearSvm::fit(
            &ds,
            SvmParams {
                epochs: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = synth::two_moons(80, 0.2, 7).unwrap();
        let a = LinearSvm::fit(
            &ds,
            SvmParams {
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let b = LinearSvm::fit(
            &ds,
            SvmParams {
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a, b);
        let c = LinearSvm::fit(
            &ds,
            SvmParams {
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a, c);
    }
}
