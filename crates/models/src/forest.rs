//! Random forests and extremely randomized trees.
//!
//! Both aggregate the leaf class distributions of many decorrelated
//! [`DecisionTree`]s by probability averaging. They differ in where the
//! randomness comes from: forests bootstrap-resample rows and subsample
//! features per split; extra-trees keep all rows but draw random thresholds.

use crate::model::{check_row, check_training, Classifier};
use crate::tree::{Criterion, DecisionTree, Splitter, TreeParams};
use crate::{ModelError, Result};
use aml_dataset::Dataset;
use aml_rng::rngs::StdRng;
use aml_rng::{Rng, SeedableRng};

/// Hyperparameters shared by [`RandomForest`] and [`ExtraTrees`].
#[derive(Debug, Clone, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split (`None` = `sqrt(n_features)`).
    pub max_features: Option<usize>,
    /// Impurity criterion.
    pub criterion: Criterion,
    /// Master seed; per-tree seeds are derived deterministically.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 50,
            max_depth: 12,
            min_samples_leaf: 1,
            max_features: None,
            criterion: Criterion::Gini,
            seed: 0,
        }
    }
}

impl ForestParams {
    fn validate(&self) -> Result<()> {
        if self.n_trees == 0 {
            return Err(ModelError::InvalidHyperparameter(
                "n_trees must be >= 1".into(),
            ));
        }
        Ok(())
    }

    fn tree_params(&self, ds: &Dataset, splitter: Splitter, tree_seed: u64) -> TreeParams {
        let default_mf = (ds.n_features() as f64).sqrt().round().max(1.0) as usize;
        TreeParams {
            max_depth: self.max_depth,
            min_samples_split: (2 * self.min_samples_leaf).max(2),
            min_samples_leaf: self.min_samples_leaf,
            criterion: self.criterion,
            splitter,
            max_features: Some(self.max_features.unwrap_or(default_mf).min(ds.n_features())),
            seed: tree_seed,
        }
    }
}

/// Deterministic per-member seed derivation (SplitMix64 step).
pub(crate) fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Bagged forest of best-split trees.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    n_features: usize,
}

impl RandomForest {
    /// Fit `params.n_trees` trees on bootstrap resamples of `ds`.
    pub fn fit(ds: &Dataset, params: ForestParams) -> Result<Self> {
        check_training(ds)?;
        params.validate()?;
        let mut trees = Vec::with_capacity(params.n_trees);
        for t in 0..params.n_trees {
            let seed = derive_seed(params.seed, t as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            // Bootstrap sample; retry a few times if the resample lost all
            // but one class (possible on small or imbalanced data).
            let mut tree = None;
            for attempt in 0..8 {
                let idx: Vec<usize> = (0..ds.n_rows())
                    .map(|_| rng.gen_range(0..ds.n_rows()))
                    .collect();
                let sample = ds.subset(&idx)?;
                match DecisionTree::fit(
                    &sample,
                    params.tree_params(ds, Splitter::Best, derive_seed(seed, attempt)),
                ) {
                    Ok(t) => {
                        tree = Some(t);
                        break;
                    }
                    Err(ModelError::SingleClass) => continue,
                    Err(e) => return Err(e),
                }
            }
            // Fall back to fitting on the full data if bootstrapping kept
            // collapsing to one class.
            let tree = match tree {
                Some(t) => t,
                None => DecisionTree::fit(ds, params.tree_params(ds, Splitter::Best, seed))?,
            };
            trees.push(tree);
        }
        Ok(RandomForest {
            trees,
            n_classes: ds.n_classes(),
            n_features: ds.n_features(),
        })
    }

    /// Number of trees in the forest.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        check_row(row, self.n_features)?;
        let mut acc = vec![0.0; self.n_classes];
        for tree in &self.trees {
            let p = tree.predict_proba_row(row)?;
            for (a, v) in acc.iter_mut().zip(p) {
                *a += v;
            }
        }
        let n = self.trees.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        Ok(acc)
    }

    fn name(&self) -> &'static str {
        "random_forest"
    }
}

/// Extremely randomized trees: no bootstrap, random thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtraTrees {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    n_features: usize,
}

impl ExtraTrees {
    /// Fit `params.n_trees` random-split trees on the full data.
    pub fn fit(ds: &Dataset, params: ForestParams) -> Result<Self> {
        check_training(ds)?;
        params.validate()?;
        let mut trees = Vec::with_capacity(params.n_trees);
        for t in 0..params.n_trees {
            let seed = derive_seed(params.seed ^ 0xE57A, t as u64);
            trees.push(DecisionTree::fit(
                ds,
                params.tree_params(ds, Splitter::Random, seed),
            )?);
        }
        Ok(ExtraTrees {
            trees,
            n_classes: ds.n_classes(),
            n_features: ds.n_features(),
        })
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for ExtraTrees {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        check_row(row, self.n_features)?;
        let mut acc = vec![0.0; self.n_classes];
        for tree in &self.trees {
            let p = tree.predict_proba_row(row)?;
            for (a, v) in acc.iter_mut().zip(p) {
                *a += v;
            }
        }
        let n = self.trees.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        Ok(acc)
    }

    fn name(&self) -> &'static str {
        "extra_trees"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use aml_dataset::synth;

    #[test]
    fn forest_beats_chance_on_moons() {
        let train = synth::two_moons(300, 0.2, 1).unwrap();
        let test = synth::two_moons(200, 0.2, 2).unwrap();
        let f = RandomForest::fit(
            &train,
            ForestParams {
                n_trees: 30,
                ..Default::default()
            },
        )
        .unwrap();
        let acc = accuracy(test.labels(), &f.predict(&test).unwrap()).unwrap();
        assert!(acc > 0.9, "forest accuracy {acc}");
    }

    #[test]
    fn extra_trees_beats_chance_on_moons() {
        let train = synth::two_moons(300, 0.2, 3).unwrap();
        let test = synth::two_moons(200, 0.2, 4).unwrap();
        let f = ExtraTrees::fit(
            &train,
            ForestParams {
                n_trees: 30,
                ..Default::default()
            },
        )
        .unwrap();
        let acc = accuracy(test.labels(), &f.predict(&test).unwrap()).unwrap();
        assert!(acc > 0.85, "extra-trees accuracy {acc}");
    }

    #[test]
    fn probabilities_average_to_distribution() {
        let ds = synth::gaussian_blobs(90, 2, 3, 1.0, 5).unwrap();
        let f = RandomForest::fit(
            &ds,
            ForestParams {
                n_trees: 7,
                ..Default::default()
            },
        )
        .unwrap();
        let p = f.predict_proba_row(ds.row(0)).unwrap();
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = synth::two_moons(100, 0.2, 9).unwrap();
        let a = RandomForest::fit(
            &ds,
            ForestParams {
                n_trees: 5,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let b = RandomForest::fit(
            &ds,
            ForestParams {
                n_trees: 5,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_model() {
        let ds = synth::two_moons(100, 0.2, 9).unwrap();
        let a = RandomForest::fit(
            &ds,
            ForestParams {
                n_trees: 5,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let c = RandomForest::fit(
            &ds,
            ForestParams {
                n_trees: 5,
                seed: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn zero_trees_rejected() {
        let ds = synth::two_moons(40, 0.1, 0).unwrap();
        assert!(RandomForest::fit(
            &ds,
            ForestParams {
                n_trees: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn trees_in_forest_differ() {
        // Bootstrap + feature subsampling should decorrelate trees: their
        // individual predictions on some point should not all be identical
        // probabilities.
        let ds = synth::two_moons(200, 0.3, 21).unwrap();
        let f = RandomForest::fit(
            &ds,
            ForestParams {
                n_trees: 10,
                max_depth: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let probes: Vec<Vec<f64>> = (0..10)
            .map(|i| f.trees[i].predict_proba_row(&[0.5, 0.25]).unwrap())
            .collect();
        let first = &probes[0];
        assert!(
            probes.iter().any(|p| (p[0] - first[0]).abs() > 1e-9),
            "all trees produced identical probabilities — no diversity"
        );
    }
}
