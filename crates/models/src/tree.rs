//! CART decision-tree classifier with best-split and random-split
//! ("extra tree") modes.
//!
//! The tree is grown depth-first; at each node the best (feature, threshold)
//! pair is chosen by impurity decrease (gini or entropy) over an optionally
//! subsampled feature set. Leaves store the class distribution of their
//! training samples so `predict_proba_row` is naturally calibrated to the
//! training frequencies.

use crate::model::{check_row, check_training, normalize, Classifier};
use crate::{ModelError, Result};
use aml_dataset::Dataset;
use aml_rng::rngs::StdRng;
use aml_rng::seq::SliceRandom;
use aml_rng::{Rng, SeedableRng};

/// Node-impurity criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Gini impurity `1 − Σ pᵢ²`.
    Gini,
    /// Shannon entropy `−Σ pᵢ log₂ pᵢ`.
    Entropy,
}

impl Criterion {
    fn impurity(&self, counts: &[f64], total: f64) -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        match self {
            Criterion::Gini => {
                1.0 - counts
                    .iter()
                    .map(|&c| (c / total) * (c / total))
                    .sum::<f64>()
            }
            Criterion::Entropy => counts
                .iter()
                .filter(|&&c| c > 0.0)
                .map(|&c| {
                    let p = c / total;
                    -p * p.log2()
                })
                .sum(),
        }
    }
}

/// How thresholds are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Splitter {
    /// Exhaustive sweep over sorted values (classic CART).
    Best,
    /// One uniform-random threshold per candidate feature (extra-trees).
    Random,
}

/// Hyperparameters for [`DecisionTree`].
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (root has depth 0). `0` means a single leaf.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must retain.
    pub min_samples_leaf: usize,
    /// Impurity criterion.
    pub criterion: Criterion,
    /// Threshold selection strategy.
    pub splitter: Splitter,
    /// Number of features to consider per split (`None` = all).
    pub max_features: Option<usize>,
    /// Seed for feature subsampling / random thresholds.
    pub seed: u64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            criterion: Criterion::Gini,
            splitter: Splitter::Best,
            max_features: None,
            seed: 0,
        }
    }
}

impl TreeParams {
    fn validate(&self, n_features: usize) -> Result<()> {
        if self.min_samples_split < 2 {
            return Err(ModelError::InvalidHyperparameter(
                "min_samples_split must be >= 2".into(),
            ));
        }
        if self.min_samples_leaf == 0 {
            return Err(ModelError::InvalidHyperparameter(
                "min_samples_leaf must be >= 1".into(),
            ));
        }
        if let Some(mf) = self.max_features {
            if mf == 0 || mf > n_features {
                return Err(ModelError::InvalidHyperparameter(format!(
                    "max_features {mf} outside 1..={n_features}"
                )));
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        proba: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
    n_features: usize,
    params: TreeParams,
}

struct FitCtx<'a> {
    ds: &'a Dataset,
    params: &'a TreeParams,
    rng: StdRng,
    nodes: Vec<Node>,
    /// Per-row sample weights (uniform for plain trees; boosting and
    /// class-balancing reuse this tree through the weighted entry point).
    weights: &'a [f64],
}

impl DecisionTree {
    /// Fit a tree on `ds` with uniform sample weights.
    pub fn fit(ds: &Dataset, params: TreeParams) -> Result<Self> {
        let w = vec![1.0; ds.n_rows()];
        Self::fit_weighted(ds, params, &w)
    }

    /// Fit a tree with per-sample weights (all weights must be positive or
    /// zero; zero-weight samples are ignored for split scoring but still
    /// routed, matching standard implementations).
    pub fn fit_weighted(ds: &Dataset, params: TreeParams, weights: &[f64]) -> Result<Self> {
        check_training(ds)?;
        params.validate(ds.n_features())?;
        if weights.len() != ds.n_rows() {
            return Err(ModelError::DimensionMismatch {
                expected: ds.n_rows(),
                got: weights.len(),
            });
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(ModelError::InvalidHyperparameter(
                "sample weights must be finite and non-negative".into(),
            ));
        }
        let mut ctx = FitCtx {
            ds,
            params: &params,
            rng: StdRng::seed_from_u64(params.seed),
            nodes: Vec::new(),
            weights,
        };
        let indices: Vec<usize> = (0..ds.n_rows()).collect();
        let root = grow(&mut ctx, indices, 0);
        debug_assert_eq!(root, 0, "root is always the first node");
        Ok(DecisionTree {
            nodes: ctx.nodes,
            n_classes: ds.n_classes(),
            n_features: ds.n_features(),
            params,
        })
    }

    /// Depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        walk(&self.nodes, 0)
    }

    /// Number of nodes (splits + leaves).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Parameters used at fit time.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }
}

/// Grow a subtree over `indices`, returning the node id.
fn grow(ctx: &mut FitCtx<'_>, indices: Vec<usize>, depth: usize) -> usize {
    let proba = class_distribution(ctx, &indices);
    let total_weight: f64 = indices.iter().map(|&i| ctx.weights[i]).sum();
    let counts: Vec<f64> = proba.iter().map(|p| p * total_weight).collect();
    let impurity = ctx.params.criterion.impurity(&counts, total_weight);

    let stop = depth >= ctx.params.max_depth
        || indices.len() < ctx.params.min_samples_split
        || impurity <= 1e-12
        || total_weight <= 0.0;
    if stop {
        return push_leaf(ctx, proba);
    }

    let split = match ctx.params.splitter {
        Splitter::Best => best_split(ctx, &indices, impurity, total_weight),
        Splitter::Random => random_split(ctx, &indices, impurity, total_weight),
    };

    match split {
        Some((feature, threshold)) => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| ctx.ds.row(i)[feature] <= threshold);
            if left_idx.len() < ctx.params.min_samples_leaf
                || right_idx.len() < ctx.params.min_samples_leaf
            {
                return push_leaf(ctx, proba);
            }
            // Reserve our slot before children so the root is node 0.
            let id = ctx.nodes.len();
            ctx.nodes.push(Node::Leaf { proba: Vec::new() }); // placeholder
            let left = grow(ctx, left_idx, depth + 1);
            let right = grow(ctx, right_idx, depth + 1);
            ctx.nodes[id] = Node::Split {
                feature,
                threshold,
                left,
                right,
            };
            id
        }
        None => push_leaf(ctx, proba),
    }
}

fn push_leaf(ctx: &mut FitCtx<'_>, proba: Vec<f64>) -> usize {
    ctx.nodes.push(Node::Leaf { proba });
    ctx.nodes.len() - 1
}

fn class_distribution(ctx: &FitCtx<'_>, indices: &[usize]) -> Vec<f64> {
    let mut counts = vec![0.0; ctx.ds.n_classes()];
    for &i in indices {
        counts[ctx.ds.label(i)] += ctx.weights[i];
    }
    normalize(counts)
}

/// Candidate feature subset for a split.
fn candidate_features(ctx: &mut FitCtx<'_>) -> Vec<usize> {
    let all: Vec<usize> = (0..ctx.ds.n_features()).collect();
    match ctx.params.max_features {
        Some(k) if k < all.len() => {
            let mut pool = all;
            pool.shuffle(&mut ctx.rng);
            pool.truncate(k);
            pool
        }
        _ => all,
    }
}

/// Exhaustive best split: for each candidate feature sort node samples by
/// value and sweep boundaries between distinct values.
fn best_split(
    ctx: &mut FitCtx<'_>,
    indices: &[usize],
    parent_impurity: f64,
    total_weight: f64,
) -> Option<(usize, f64)> {
    let features = candidate_features(ctx);
    let n_classes = ctx.ds.n_classes();
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)

    for &f in &features {
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_by(|&a, &b| {
            ctx.ds.row(a)[f]
                .partial_cmp(&ctx.ds.row(b)[f])
                .expect("dataset rejects non-finite values")
        });
        let mut left_counts = vec![0.0; n_classes];
        let mut left_weight = 0.0;
        let mut right_counts = vec![0.0; n_classes];
        for &i in &sorted {
            right_counts[ctx.ds.label(i)] += ctx.weights[i];
        }
        let min_leaf = ctx.params.min_samples_leaf;

        for pos in 0..sorted.len() - 1 {
            let i = sorted[pos];
            let w = ctx.weights[i];
            left_counts[ctx.ds.label(i)] += w;
            right_counts[ctx.ds.label(i)] -= w;
            left_weight += w;

            let v_here = ctx.ds.row(i)[f];
            let v_next = ctx.ds.row(sorted[pos + 1])[f];
            if v_here == v_next {
                continue; // no boundary between equal values
            }
            let n_left = pos + 1;
            let n_right = sorted.len() - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            let right_weight = total_weight - left_weight;
            let imp_l = ctx.params.criterion.impurity(&left_counts, left_weight);
            let imp_r = ctx.params.criterion.impurity(&right_counts, right_weight);
            let gain =
                parent_impurity - (left_weight * imp_l + right_weight * imp_r) / total_weight;
            if gain > best.map_or(1e-12, |(g, _, _)| g) {
                // Midpoint threshold is standard and keeps prediction stable
                // under small perturbations of the boundary samples.
                best = Some((gain, f, 0.5 * (v_here + v_next)));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

/// Extra-trees split: one uniform threshold per candidate feature, keep the
/// best-gain candidate.
fn random_split(
    ctx: &mut FitCtx<'_>,
    indices: &[usize],
    parent_impurity: f64,
    total_weight: f64,
) -> Option<(usize, f64)> {
    let features = candidate_features(ctx);
    let n_classes = ctx.ds.n_classes();
    let mut best: Option<(f64, usize, f64)> = None;

    for &f in &features {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &i in indices {
            let v = ctx.ds.row(i)[f];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if hi <= lo {
            continue; // constant feature at this node
        }
        let threshold = ctx.rng.gen_range(lo..hi);
        let mut left_counts = vec![0.0; n_classes];
        let mut right_counts = vec![0.0; n_classes];
        let mut left_weight = 0.0;
        let mut n_left = 0usize;
        for &i in indices {
            let w = ctx.weights[i];
            if ctx.ds.row(i)[f] <= threshold {
                left_counts[ctx.ds.label(i)] += w;
                left_weight += w;
                n_left += 1;
            } else {
                right_counts[ctx.ds.label(i)] += w;
            }
        }
        let n_right = indices.len() - n_left;
        if n_left < ctx.params.min_samples_leaf || n_right < ctx.params.min_samples_leaf {
            continue;
        }
        let right_weight = total_weight - left_weight;
        let imp_l = ctx.params.criterion.impurity(&left_counts, left_weight);
        let imp_r = ctx.params.criterion.impurity(&right_counts, right_weight);
        let gain = parent_impurity - (left_weight * imp_l + right_weight * imp_r) / total_weight;
        if gain > best.map_or(1e-12, |(g, _, _)| g) {
            best = Some((gain, f, threshold));
        }
    }
    best.map(|(_, f, t)| (f, t))
}

impl Classifier for DecisionTree {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        check_row(row, self.n_features)?;
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { proba } => return Ok(proba.clone()),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "decision_tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use aml_dataset::synth;

    #[test]
    fn fits_xor_perfectly_with_small_depth() {
        // Noise-free XOR is separable by a depth-2 tree in principle, but
        // greedy axis-aligned splitting has near-zero gain at the root and
        // may place early thresholds off 0.5, so a couple of extra levels
        // are needed to clean up the boundary slivers (this draw needs 5).
        let ds = synth::noisy_xor(400, 0.0, 3).unwrap();
        let tree = DecisionTree::fit(
            &ds,
            TreeParams {
                max_depth: 6,
                ..Default::default()
            },
        )
        .unwrap();
        let pred = tree.predict(&ds).unwrap();
        assert_eq!(accuracy(ds.labels(), &pred).unwrap(), 1.0);
        assert!(tree.depth() <= 6);
    }

    #[test]
    fn max_depth_zero_gives_prior_leaf() {
        let ds = synth::gaussian_blobs(30, 2, 3, 1.0, 1).unwrap();
        let tree = DecisionTree::fit(
            &ds,
            TreeParams {
                max_depth: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(tree.n_nodes(), 1);
        let p = tree.predict_proba_row(ds.row(0)).unwrap();
        // Balanced 3-class data → uniform prior.
        for v in p {
            assert!((v - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn respects_max_depth() {
        let ds = synth::two_moons(300, 0.25, 5).unwrap();
        for d in [1, 2, 3, 5] {
            let tree = DecisionTree::fit(
                &ds,
                TreeParams {
                    max_depth: d,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(tree.depth() <= d, "depth {} > max {d}", tree.depth());
        }
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let ds = synth::two_moons(100, 0.2, 7).unwrap();
        let tree = DecisionTree::fit(
            &ds,
            TreeParams {
                min_samples_leaf: 20,
                ..Default::default()
            },
        )
        .unwrap();
        // A tree with >= 20 samples per leaf on 100 samples has <= 5 leaves,
        // i.e. <= 9 nodes.
        assert!(tree.n_nodes() <= 9, "{} nodes", tree.n_nodes());
    }

    #[test]
    fn entropy_criterion_also_learns() {
        let ds = synth::gaussian_blobs(150, 2, 3, 0.5, 11).unwrap();
        let tree = DecisionTree::fit(
            &ds,
            TreeParams {
                criterion: Criterion::Entropy,
                ..Default::default()
            },
        )
        .unwrap();
        let pred = tree.predict(&ds).unwrap();
        assert!(accuracy(ds.labels(), &pred).unwrap() > 0.95);
    }

    #[test]
    fn random_splitter_learns_blobs() {
        let ds = synth::gaussian_blobs(200, 2, 2, 0.5, 13).unwrap();
        let tree = DecisionTree::fit(
            &ds,
            TreeParams {
                splitter: Splitter::Random,
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let pred = tree.predict(&ds).unwrap();
        assert!(accuracy(ds.labels(), &pred).unwrap() > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = synth::two_moons(200, 0.2, 17).unwrap();
        let p = TreeParams {
            splitter: Splitter::Random,
            max_features: Some(1),
            seed: 9,
            ..Default::default()
        };
        let a = DecisionTree::fit(&ds, p.clone()).unwrap();
        let b = DecisionTree::fit(&ds, p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_hyperparameters() {
        let ds = synth::two_moons(50, 0.1, 0).unwrap();
        assert!(DecisionTree::fit(
            &ds,
            TreeParams {
                min_samples_split: 1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(DecisionTree::fit(
            &ds,
            TreeParams {
                max_features: Some(99),
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn rejects_single_class() {
        let ds = aml_dataset::Dataset::from_rows(&[vec![0.0], vec![1.0]], &[1, 1], 2).unwrap();
        assert_eq!(
            DecisionTree::fit(&ds, TreeParams::default()),
            Err(ModelError::SingleClass)
        );
    }

    #[test]
    fn weighted_fit_shifts_the_prior() {
        // Upweighting class 1 samples should raise its leaf probability.
        let ds = aml_dataset::Dataset::from_rows(
            &[vec![0.0], vec![0.1], vec![0.2], vec![0.3]],
            &[0, 0, 0, 1],
            2,
        )
        .unwrap();
        let params = TreeParams {
            max_depth: 0,
            ..Default::default()
        };
        let uniform = DecisionTree::fit(&ds, params.clone()).unwrap();
        let weighted = DecisionTree::fit_weighted(&ds, params, &[1.0, 1.0, 1.0, 9.0]).unwrap();
        let pu = uniform.predict_proba_row(&[0.0]).unwrap()[1];
        let pw = weighted.predict_proba_row(&[0.0]).unwrap()[1];
        assert!(pw > pu, "weighted {pw} should exceed uniform {pu}");
        assert!((pw - 0.75).abs() < 1e-9);
    }

    #[test]
    fn predict_dimension_checked() {
        let ds = synth::two_moons(50, 0.1, 2).unwrap();
        let tree = DecisionTree::fit(&ds, TreeParams::default()).unwrap();
        assert!(tree.predict_proba_row(&[1.0]).is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use aml_dataset::synth;
    use aml_propcheck::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Leaf probabilities always form a distribution, on arbitrary query
        /// points far outside the training range.
        #[test]
        fn prop_proba_is_distribution(
            seed in 0u64..500,
            x in -100f64..100.0,
            y in -100f64..100.0,
        ) {
            let ds = synth::two_moons(60, 0.3, seed).unwrap();
            let tree = DecisionTree::fit(
                &ds,
                TreeParams { max_depth: 6, seed, ..Default::default() },
            ).unwrap();
            let p = tree.predict_proba_row(&[x, y]).unwrap();
            prop_assert_eq!(p.len(), 2);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }

        /// Depth bound always holds, for both splitters.
        #[test]
        fn prop_depth_bounded(
            seed in 0u64..200,
            depth in 1usize..8,
            random in aml_propcheck::bool::ANY,
        ) {
            let ds = synth::gaussian_blobs(80, 3, 3, 2.0, seed).unwrap();
            let tree = DecisionTree::fit(&ds, TreeParams {
                max_depth: depth,
                splitter: if random { Splitter::Random } else { Splitter::Best },
                seed,
                ..Default::default()
            }).unwrap();
            prop_assert!(tree.depth() <= depth);
        }
    }
}
