//! Weighted soft-voting ensembles.
//!
//! AutoML (à la auto-sklearn) returns a [`SoftVotingEnsemble`]: a weighted
//! probability average of heterogeneous member pipelines. Two properties
//! matter for the paper's feedback algorithms:
//!
//! * members are individually accessible ([`SoftVotingEnsemble::members`]) —
//!   Within-ALE computes ALE per member and thresholds the cross-member
//!   variance, and QBC uses the members as its committee;
//! * weights form a simplex (non-negative, positive sum), so the ensemble's
//!   probability output is itself a distribution.

use crate::model::{check_row, normalize, Classifier};
use crate::{ModelError, Result};
use std::sync::Arc;

/// A weighted soft-voting ensemble of classifiers.
pub struct SoftVotingEnsemble {
    members: Vec<Arc<dyn Classifier>>,
    weights: Vec<f64>,
    n_classes: usize,
    n_features: usize,
}

impl SoftVotingEnsemble {
    /// Build an ensemble. Weights are normalized to sum to 1.
    ///
    /// # Errors
    /// - empty member list, weight/member count mismatch;
    /// - negative/non-finite weights or all-zero weights;
    /// - members disagreeing on `n_classes`/`n_features`.
    pub fn new(members: Vec<Arc<dyn Classifier>>, weights: Vec<f64>) -> Result<Self> {
        if members.is_empty() {
            return Err(ModelError::EmptyTrainingSet);
        }
        if members.len() != weights.len() {
            return Err(ModelError::DimensionMismatch {
                expected: members.len(),
                got: weights.len(),
            });
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(ModelError::InvalidHyperparameter(
                "ensemble weights must be finite and non-negative".into(),
            ));
        }
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 {
            return Err(ModelError::InvalidHyperparameter(
                "ensemble weights must not all be zero".into(),
            ));
        }
        let n_classes = members[0].n_classes();
        let n_features = members[0].n_features();
        for m in &members {
            if m.n_classes() != n_classes || m.n_features() != n_features {
                return Err(ModelError::DimensionMismatch {
                    expected: n_classes,
                    got: m.n_classes(),
                });
            }
        }
        let weights = weights.into_iter().map(|w| w / sum).collect();
        Ok(SoftVotingEnsemble {
            members,
            weights,
            n_classes,
            n_features,
        })
    }

    /// Equal-weight convenience constructor.
    pub fn uniform(members: Vec<Arc<dyn Classifier>>) -> Result<Self> {
        let w = vec![1.0; members.len()];
        Self::new(members, w)
    }

    /// The member classifiers (the QBC committee / ALE model bag).
    pub fn members(&self) -> &[Arc<dyn Classifier>] {
        &self.members
    }

    /// Normalized member weights (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members (cannot occur post-construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl Classifier for SoftVotingEnsemble {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn predict_proba_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        check_row(row, self.n_features)?;
        let mut acc = vec![0.0; self.n_classes];
        for (m, &w) in self.members.iter().zip(&self.weights) {
            if w == 0.0 {
                continue;
            }
            let p = m.predict_proba_row(row)?;
            for (a, v) in acc.iter_mut().zip(p) {
                *a += w * v;
            }
        }
        Ok(normalize(acc))
    }

    fn name(&self) -> &'static str {
        "soft_voting_ensemble"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{KNearestNeighbors, KnnParams};
    use crate::metrics::accuracy;
    use crate::naive_bayes::{GaussianNaiveBayes, NbParams};
    use crate::tree::{DecisionTree, TreeParams};
    use aml_dataset::synth;

    fn members(ds: &aml_dataset::Dataset) -> Vec<Arc<dyn Classifier>> {
        vec![
            Arc::new(DecisionTree::fit(ds, TreeParams::default()).unwrap()),
            Arc::new(KNearestNeighbors::fit(ds, KnnParams::default()).unwrap()),
            Arc::new(GaussianNaiveBayes::fit(ds, NbParams::default()).unwrap()),
        ]
    }

    #[test]
    fn uniform_ensemble_predicts_distribution() {
        let ds = synth::gaussian_blobs(120, 2, 3, 1.0, 1).unwrap();
        let e = SoftVotingEnsemble::uniform(members(&ds)).unwrap();
        let p = e.predict_proba_row(ds.row(0)).unwrap();
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ensemble_at_least_competitive_with_worst_member() {
        let train = synth::two_moons(300, 0.25, 2).unwrap();
        let test = synth::two_moons(200, 0.25, 3).unwrap();
        let ms = members(&train);
        let worst = ms
            .iter()
            .map(|m| accuracy(test.labels(), &m.predict(&test).unwrap()).unwrap())
            .fold(f64::INFINITY, f64::min);
        let e = SoftVotingEnsemble::uniform(ms).unwrap();
        let acc = accuracy(test.labels(), &e.predict(&test).unwrap()).unwrap();
        assert!(
            acc >= worst - 0.05,
            "ensemble {acc} vs worst member {worst}"
        );
    }

    #[test]
    fn weights_are_normalized() {
        let ds = synth::two_moons(60, 0.2, 4).unwrap();
        let e = SoftVotingEnsemble::new(members(&ds), vec![2.0, 2.0, 4.0]).unwrap();
        assert_eq!(e.weights(), &[0.25, 0.25, 0.5]);
    }

    #[test]
    fn zero_weight_member_is_ignored() {
        let ds = synth::two_moons(60, 0.2, 5).unwrap();
        let ms = members(&ds);
        let solo_tree = ms[0].clone();
        let e = SoftVotingEnsemble::new(ms, vec![1.0, 0.0, 0.0]).unwrap();
        for i in 0..ds.n_rows() {
            assert_eq!(
                e.predict_proba_row(ds.row(i)).unwrap(),
                solo_tree.predict_proba_row(ds.row(i)).unwrap()
            );
        }
    }

    #[test]
    fn invalid_constructions_rejected() {
        let ds = synth::two_moons(60, 0.2, 6).unwrap();
        assert!(SoftVotingEnsemble::uniform(vec![]).is_err());
        assert!(SoftVotingEnsemble::new(members(&ds), vec![1.0]).is_err());
        assert!(SoftVotingEnsemble::new(members(&ds), vec![1.0, -1.0, 1.0]).is_err());
        assert!(SoftVotingEnsemble::new(members(&ds), vec![0.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn members_accessible_for_committee_use() {
        let ds = synth::two_moons(60, 0.2, 7).unwrap();
        let e = SoftVotingEnsemble::uniform(members(&ds)).unwrap();
        assert_eq!(e.len(), 3);
        let names: Vec<&str> = e.members().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["decision_tree", "knn", "gaussian_nb"]);
    }
}
