//! The [`Classifier`] trait — the single interface every model, pipeline and
//! ensemble implements, and that the AutoML searcher, the QBC committee and
//! the ALE interpreter consume.
//!
//! The trait is object safe (`Box<dyn Classifier>` / `Arc<dyn Classifier>`)
//! because AutoML assembles heterogeneous ensembles, and the ALE feedback
//! algorithm iterates over "each model in ℳ" without caring what it is.

use crate::{ModelError, Result};
use aml_dataset::Dataset;

/// A fitted probabilistic classifier.
///
/// Implementations must be deterministic at prediction time: the feedback
/// algorithms difference ALE values across models, which would be meaningless
/// if `predict_proba_row` were stochastic.
pub trait Classifier: Send + Sync {
    /// Number of classes the model predicts probabilities for.
    fn n_classes(&self) -> usize;

    /// Number of input features expected.
    fn n_features(&self) -> usize;

    /// Class-probability vector for one feature row (`n_classes` entries,
    /// non-negative, summing to 1 up to rounding).
    ///
    /// # Errors
    /// [`ModelError::DimensionMismatch`] when `row.len() != n_features()`.
    fn predict_proba_row(&self, row: &[f64]) -> Result<Vec<f64>>;

    /// A short human-readable identifier, e.g. `"random_forest"`.
    fn name(&self) -> &'static str;

    /// Predicted class for one row (argmax of probabilities; ties broken
    /// toward the lower class index for determinism).
    fn predict_row(&self, row: &[f64]) -> Result<usize> {
        let p = self.predict_proba_row(row)?;
        Ok(argmax(&p))
    }

    /// Probability matrix for every row of `ds`.
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<Vec<f64>>> {
        (0..ds.n_rows())
            .map(|i| self.predict_proba_row(ds.row(i)))
            .collect()
    }

    /// Predicted class per row of `ds`.
    fn predict(&self, ds: &Dataset) -> Result<Vec<usize>> {
        (0..ds.n_rows())
            .map(|i| self.predict_row(ds.row(i)))
            .collect()
    }
}

/// Index of the maximum element; first index wins ties (deterministic).
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Validate that a prediction row matches the expected feature count.
pub(crate) fn check_row(row: &[f64], expected: usize) -> Result<()> {
    if row.len() != expected {
        return Err(ModelError::DimensionMismatch {
            expected,
            got: row.len(),
        });
    }
    Ok(())
}

/// Normalize a non-negative vector to sum to one; uniform fallback when the
/// sum is zero (e.g. a probability mass that underflowed).
pub(crate) fn normalize(mut p: Vec<f64>) -> Vec<f64> {
    let s: f64 = p.iter().sum();
    if s > 0.0 && s.is_finite() {
        for v in &mut p {
            *v /= s;
        }
    } else {
        let u = 1.0 / p.len() as f64;
        p.fill(u);
    }
    p
}

/// Validate common training preconditions: non-empty data and at least two
/// distinct classes present. Returns the per-class counts.
pub(crate) fn check_training(ds: &Dataset) -> Result<Vec<usize>> {
    if ds.is_empty() {
        return Err(ModelError::EmptyTrainingSet);
    }
    let counts = ds.class_counts();
    if counts.iter().filter(|&&c| c > 0).count() < 2 {
        return Err(ModelError::SingleClass);
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_ties_break_low() {
        assert_eq!(argmax(&[0.4, 0.4, 0.2]), 0);
        assert_eq!(argmax(&[0.1, 0.5, 0.4]), 1);
    }

    #[test]
    fn normalize_sums_to_one() {
        let p = normalize(vec![2.0, 6.0]);
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!((p[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_mass_goes_uniform() {
        let p = normalize(vec![0.0, 0.0, 0.0, 0.0]);
        assert!(p.iter().all(|&v| (v - 0.25).abs() < 1e-12));
    }

    #[test]
    fn check_training_rejects_single_class() {
        let ds = Dataset::from_rows(&[vec![0.0], vec![1.0]], &[0, 0], 2).unwrap();
        assert_eq!(check_training(&ds), Err(ModelError::SingleClass));
    }
}
