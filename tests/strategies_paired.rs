//! Integration: the full strategy comparison protocol with paired scoring
//! and the Table-1 report, spanning aml-core, aml-automl, aml-models and
//! aml-stats — plus determinism guarantees across the whole stack.

use interpretable_automl::automl::AutoMlConfig;
use interpretable_automl::data::{split::split_into_k, synth, Dataset};
use interpretable_automl::feedback::{run_strategy, ExperimentConfig, Strategy, Table};
use interpretable_automl::stats::wilcoxon::{wilcoxon_signed_rank, Alternative};

fn oracle(rows: &[Vec<f64>]) -> interpretable_automl::feedback::Result<Dataset> {
    let labels: Vec<usize> = rows
        .iter()
        .map(|r| usize::from((r[0] > 0.5) != (r[1] > 0.5)))
        .collect();
    Ok(Dataset::from_rows(rows, &labels, 2)?)
}

fn cfg(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        automl: AutoMlConfig {
            n_candidates: 6,
            ensemble_rounds: 4,
            ..Default::default()
        },
        n_feedback_points: 30,
        n_cross_runs: 2,
        seed,
        ..Default::default()
    }
}

#[test]
fn full_table_protocol_runs_and_renders() {
    let train = synth::noisy_xor(150, 0.08, 1).unwrap();
    let pool = synth::noisy_xor(300, 0.08, 2).unwrap();
    let test = synth::noisy_xor(400, 0.0, 3).unwrap();
    let test_sets = split_into_k(&test, 5, 4).unwrap();

    let mut outcomes = Vec::new();
    for strategy in [
        Strategy::NoFeedback,
        Strategy::WithinAle,
        Strategy::Uniform,
        Strategy::Qbc,
        Strategy::Upsampling,
    ] {
        outcomes.push(
            run_strategy(
                strategy,
                &cfg(7),
                &train,
                Some(&pool),
                Some(&oracle),
                &test_sets,
            )
            .unwrap_or_else(|e| panic!("{} failed: {e}", strategy.name())),
        );
    }
    // Paired design: every strategy has one score per test set.
    for out in &outcomes {
        assert_eq!(out.scores.len(), 5);
    }
    let table = Table::build(&outcomes).unwrap();
    let rendered = table.render().unwrap();
    for name in [
        "Without feedback",
        "Within-ALE",
        "Uniform",
        "QBC",
        "Upsampling",
    ] {
        assert!(rendered.contains(name), "missing row {name}:\n{rendered}");
    }
    // The matrix is usable for custom significance tests too.
    let base = table.matrix().scores(0);
    let within = table.matrix().scores(1);
    let res = wilcoxon_signed_rank(base, within, Alternative::Less);
    assert!(res.is_ok() || base == within);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let train = synth::noisy_xor(120, 0.1, 5).unwrap();
    let test = synth::noisy_xor(200, 0.0, 6).unwrap();
    let test_sets = split_into_k(&test, 4, 7).unwrap();

    let a = run_strategy(
        Strategy::WithinAle,
        &cfg(9),
        &train,
        None,
        Some(&oracle),
        &test_sets,
    )
    .unwrap();
    let b = run_strategy(
        Strategy::WithinAle,
        &cfg(9),
        &train,
        None,
        Some(&oracle),
        &test_sets,
    )
    .unwrap();
    assert_eq!(a.scores, b.scores, "identical seeds give identical scores");
    assert_eq!(a.n_points_added, b.n_points_added);

    let c = run_strategy(
        Strategy::WithinAle,
        &cfg(10),
        &train,
        None,
        Some(&oracle),
        &test_sets,
    )
    .unwrap();
    assert_ne!(a.scores, c.scores, "different seeds explore differently");
}

#[test]
fn refit_seed_is_shared_across_strategies() {
    // NoFeedback and Upsampling on already-balanced data augment nothing /
    // nothing effective — with the shared refit seed they produce identical
    // models, which is exactly what makes the comparison paired.
    let train = synth::two_moons(100, 0.2, 11).unwrap(); // perfectly balanced
    let test = synth::two_moons(200, 0.2, 12).unwrap();
    let test_sets = split_into_k(&test, 4, 13).unwrap();
    let none = run_strategy(
        Strategy::NoFeedback,
        &cfg(21),
        &train,
        None,
        None,
        &test_sets,
    )
    .unwrap();
    let upsampled = run_strategy(
        Strategy::Upsampling,
        &cfg(21),
        &train,
        None,
        None,
        &test_sets,
    )
    .unwrap();
    assert_eq!(
        upsampled.n_points_added, 0,
        "balanced data needs no upsampling"
    );
    assert_eq!(none.scores, upsampled.scores);
}
