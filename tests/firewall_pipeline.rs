//! Integration: firewall generator → paper's three-way split → AutoML →
//! ALE interpretability properties (the Figure 2 preconditions), spanning
//! aml-fwgen, aml-dataset, aml-automl, aml-interpret and aml-core.

use interpretable_automl::automl::{AutoMl, AutoMlConfig};
use interpretable_automl::data::split::three_way_split;
use interpretable_automl::feedback::{AleFeedback, ThresholdRule};
use interpretable_automl::fwgen::{generate, FwGenConfig};
use interpretable_automl::models::metrics::balanced_accuracy;
use interpretable_automl::models::Classifier;

#[test]
fn firewall_automl_beats_chance_with_four_classes() {
    let full = generate(&FwGenConfig {
        n: 2500,
        seed: 3,
        ..Default::default()
    })
    .unwrap();
    let (train, test, pool) = three_way_split(&full, 0.4, 0.2, 1).unwrap();
    assert!(pool.n_rows() > test.n_rows(), "pool is the largest chunk");

    let run = AutoMl::new(AutoMlConfig {
        n_candidates: 8,
        seed: 5,
        ..Default::default()
    })
    .fit(&train)
    .unwrap();
    let preds = run.predict(&test).unwrap();
    let ba = balanced_accuracy(test.labels(), &preds, 4).unwrap();
    // 4-class chance is 25%; the structural signals (NAT ports, volume)
    // make the main classes easy.
    assert!(ba > 0.55, "firewall balanced accuracy {ba}");
}

#[test]
fn ale_analysis_covers_all_eleven_features() {
    let full = generate(&FwGenConfig {
        n: 1500,
        seed: 7,
        ..Default::default()
    })
    .unwrap();
    let (train, _, _) = three_way_split(&full, 0.4, 0.2, 2).unwrap();
    let run = AutoMl::new(AutoMlConfig {
        n_candidates: 6,
        seed: 9,
        ..Default::default()
    })
    .fit(&train)
    .unwrap();
    let ale = AleFeedback {
        target_class: 0, // "allow"
        threshold: ThresholdRule::Fixed(0.01),
        ..Default::default()
    };
    let analysis = ale.analyze(&[run], &train).unwrap();
    assert_eq!(analysis.bands.len(), 11);
    let names: Vec<&str> = analysis
        .bands
        .iter()
        .map(|b| b.feature_name.as_str())
        .collect();
    assert!(names.contains(&"src_port"));
    assert!(names.contains(&"dst_port"));
}

#[test]
fn pool_feedback_selects_only_subspace_members() {
    let full = generate(&FwGenConfig {
        n: 2000,
        seed: 11,
        ..Default::default()
    })
    .unwrap();
    let (train, _test, pool) = three_way_split(&full, 0.4, 0.2, 3).unwrap();
    let run = AutoMl::new(AutoMlConfig {
        n_candidates: 6,
        seed: 13,
        ..Default::default()
    })
    .fit(&train)
    .unwrap();
    let ale = AleFeedback {
        target_class: 0,
        ..Default::default()
    };
    let analysis = ale.analyze(&[run], &train).unwrap();
    let picked = ale.suggest_from_pool(&analysis, &pool, 100).unwrap();
    assert!(!picked.is_empty());
    for &i in &picked {
        let row = pool.row(i);
        let inside = analysis
            .regions
            .iter()
            .any(|r| !r.intervals.is_empty() && r.contains(row[r.feature]));
        assert!(inside, "pool row {i} outside the suggested subspace");
    }
}
