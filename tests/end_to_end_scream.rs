//! End-to-end integration: simulator → dataset → AutoML → ALE feedback →
//! simulator-labelled augmentation → retrain. This is the paper's whole
//! pipeline in miniature, spanning aml-netsim, aml-automl, aml-interpret
//! and aml-core.

use interpretable_automl::automl::AutoMlConfig;
use interpretable_automl::data::{split::split_into_k, Dataset};
use interpretable_automl::feedback::{run_strategy, CoreError, ExperimentConfig, Strategy};
use interpretable_automl::netsim::datagen::{generate_dataset, label_rows};
use interpretable_automl::netsim::ConditionDomain;

/// A narrow, low-rate domain keeps simulation time down in CI.
fn fast_domain() -> ConditionDomain {
    ConditionDomain {
        link_rate: (2.0, 12.0),
        rtt: (20.0, 80.0),
        loss: (0.0, 0.04),
        flows: (1, 2),
    }
}

fn quick_cfg(seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        automl: AutoMlConfig {
            n_candidates: 6,
            ensemble_rounds: 4,
            ..Default::default()
        },
        n_feedback_points: 20,
        n_cross_runs: 2,
        seed,
        ..Default::default()
    }
}

#[test]
fn scream_pipeline_round_trip() {
    let domain = fast_domain();
    let train = generate_dataset(&domain, 60, 1, 1).expect("train datagen");
    let test = generate_dataset(&domain, 90, 2, 1).expect("test datagen");
    let test_sets = split_into_k(&test, 3, 3).expect("test sets");
    assert_eq!(train.n_features(), 4);

    let oracle = |rows: &[Vec<f64>]| -> interpretable_automl::feedback::Result<Dataset> {
        label_rows(rows, &fast_domain(), 77, 1)
            .map_err(|e| CoreError::InvalidParameter(e.to_string()))
    };

    let base = run_strategy(
        Strategy::NoFeedback,
        &quick_cfg(5),
        &train,
        None,
        None,
        &test_sets,
    )
    .expect("baseline");
    let within = run_strategy(
        Strategy::WithinAle,
        &quick_cfg(5),
        &train,
        None,
        Some(&oracle),
        &test_sets,
    )
    .expect("within-ALE");

    // The feedback must produce its interpretable artifacts...
    let fb = within.feedback.as_ref().expect("ALE feedback artifact");
    assert_eq!(fb.explanations.len(), 4, "one band per feature");
    assert!(fb.notes.contains("Within-ALE"));
    // ...the suggested points must have been simulator-labelled and added...
    assert_eq!(within.n_points_added, 20);
    // ...and scores must be sane probabilities for both runs.
    for s in base.scores.iter().chain(&within.scores) {
        assert!((0.0..=1.0).contains(s));
    }
}

#[test]
fn feedback_suggestions_are_labelable_conditions() {
    // Every row the ALE feedback suggests must be accepted by the
    // simulator's condition parser (clamped into physical validity).
    let domain = fast_domain();
    let train = generate_dataset(&domain, 50, 7, 1).expect("datagen");
    let runs = vec![interpretable_automl::automl::AutoMl::new(AutoMlConfig {
        n_candidates: 6,
        seed: 1,
        ..Default::default()
    })
    .fit(&train)
    .expect("automl")];
    let ale = interpretable_automl::feedback::AleFeedback::default();
    let analysis = ale.analyze(&runs, &train).expect("analysis");
    let points = ale
        .suggest_points(&analysis, &train, 30, 9)
        .expect("points");
    let labelled = label_rows(&points, &domain, 11, 1).expect("labeling");
    assert_eq!(labelled.n_rows(), 30);
}

#[test]
fn cross_ale_uses_disagreement_between_runs() {
    let domain = fast_domain();
    let train = generate_dataset(&domain, 60, 13, 1).expect("datagen");
    let runs: Vec<_> = (0..3)
        .map(|s| {
            interpretable_automl::automl::AutoMl::new(AutoMlConfig {
                n_candidates: 6,
                seed: 100 + s,
                ..Default::default()
            })
            .fit(&train)
            .expect("automl")
        })
        .collect();
    let ale = interpretable_automl::feedback::AleFeedback {
        mode: interpretable_automl::feedback::AleMode::Cross,
        ..Default::default()
    };
    let analysis = ale.analyze(&runs, &train).expect("cross analysis");
    assert_eq!(
        analysis.bands[0].n_models, 3,
        "one committee member per run"
    );
    // Independent runs on 60 noisy samples disagree somewhere.
    assert!(
        analysis.bands.iter().any(|b| b.max_std() > 0.0),
        "expected nonzero cross-run ALE variance"
    );
}
