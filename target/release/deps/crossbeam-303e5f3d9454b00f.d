/root/repo/target/release/deps/crossbeam-303e5f3d9454b00f.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-303e5f3d9454b00f.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-303e5f3d9454b00f.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
