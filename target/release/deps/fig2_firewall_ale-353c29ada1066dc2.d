/root/repo/target/release/deps/fig2_firewall_ale-353c29ada1066dc2.d: crates/bench/src/bin/fig2_firewall_ale.rs

/root/repo/target/release/deps/fig2_firewall_ale-353c29ada1066dc2: crates/bench/src/bin/fig2_firewall_ale.rs

crates/bench/src/bin/fig2_firewall_ale.rs:
