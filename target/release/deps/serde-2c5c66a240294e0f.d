/root/repo/target/release/deps/serde-2c5c66a240294e0f.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-2c5c66a240294e0f.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-2c5c66a240294e0f.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
