/root/repo/target/release/deps/aml_core-5bd4f20ce8ee1789.d: crates/core/src/lib.rs crates/core/src/ale_feedback.rs crates/core/src/confidence.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/qbc.rs crates/core/src/report.rs crates/core/src/uncertainty.rs crates/core/src/uniform.rs crates/core/src/upsampling.rs

/root/repo/target/release/deps/libaml_core-5bd4f20ce8ee1789.rlib: crates/core/src/lib.rs crates/core/src/ale_feedback.rs crates/core/src/confidence.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/qbc.rs crates/core/src/report.rs crates/core/src/uncertainty.rs crates/core/src/uniform.rs crates/core/src/upsampling.rs

/root/repo/target/release/deps/libaml_core-5bd4f20ce8ee1789.rmeta: crates/core/src/lib.rs crates/core/src/ale_feedback.rs crates/core/src/confidence.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/qbc.rs crates/core/src/report.rs crates/core/src/uncertainty.rs crates/core/src/uniform.rs crates/core/src/upsampling.rs

crates/core/src/lib.rs:
crates/core/src/ale_feedback.rs:
crates/core/src/confidence.rs:
crates/core/src/experiment.rs:
crates/core/src/feedback.rs:
crates/core/src/qbc.rs:
crates/core/src/report.rs:
crates/core/src/uncertainty.rs:
crates/core/src/uniform.rs:
crates/core/src/upsampling.rs:
