/root/repo/target/release/deps/threshold_sweep-89313b6ed625606f.d: crates/bench/src/bin/threshold_sweep.rs

/root/repo/target/release/deps/threshold_sweep-89313b6ed625606f: crates/bench/src/bin/threshold_sweep.rs

crates/bench/src/bin/threshold_sweep.rs:
