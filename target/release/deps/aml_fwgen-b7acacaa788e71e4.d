/root/repo/target/release/deps/aml_fwgen-b7acacaa788e71e4.d: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs

/root/repo/target/release/deps/libaml_fwgen-b7acacaa788e71e4.rlib: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs

/root/repo/target/release/deps/libaml_fwgen-b7acacaa788e71e4.rmeta: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs

crates/fwgen/src/lib.rs:
crates/fwgen/src/gen.rs:
crates/fwgen/src/profiles.rs:
crates/fwgen/src/schema.rs:
