/root/repo/target/release/deps/aml_stats-fbe2937ac58e626c.d: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/effect.rs crates/stats/src/ranks.rs crates/stats/src/summary.rs crates/stats/src/wilcoxon.rs

/root/repo/target/release/deps/libaml_stats-fbe2937ac58e626c.rlib: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/effect.rs crates/stats/src/ranks.rs crates/stats/src/summary.rs crates/stats/src/wilcoxon.rs

/root/repo/target/release/deps/libaml_stats-fbe2937ac58e626c.rmeta: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/effect.rs crates/stats/src/ranks.rs crates/stats/src/summary.rs crates/stats/src/wilcoxon.rs

crates/stats/src/lib.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/effect.rs:
crates/stats/src/ranks.rs:
crates/stats/src/summary.rs:
crates/stats/src/wilcoxon.rs:
