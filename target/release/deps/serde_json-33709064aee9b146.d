/root/repo/target/release/deps/serde_json-33709064aee9b146.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-33709064aee9b146.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-33709064aee9b146.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
