/root/repo/target/release/deps/aml_bench-0ae13ff763c583df.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libaml_bench-0ae13ff763c583df.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libaml_bench-0ae13ff763c583df.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
