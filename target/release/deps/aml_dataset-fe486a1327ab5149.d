/root/repo/target/release/deps/aml_dataset-fe486a1327ab5149.d: crates/dataset/src/lib.rs crates/dataset/src/csv.rs crates/dataset/src/dataset.rs crates/dataset/src/feature.rs crates/dataset/src/split.rs crates/dataset/src/synth.rs

/root/repo/target/release/deps/libaml_dataset-fe486a1327ab5149.rlib: crates/dataset/src/lib.rs crates/dataset/src/csv.rs crates/dataset/src/dataset.rs crates/dataset/src/feature.rs crates/dataset/src/split.rs crates/dataset/src/synth.rs

/root/repo/target/release/deps/libaml_dataset-fe486a1327ab5149.rmeta: crates/dataset/src/lib.rs crates/dataset/src/csv.rs crates/dataset/src/dataset.rs crates/dataset/src/feature.rs crates/dataset/src/split.rs crates/dataset/src/synth.rs

crates/dataset/src/lib.rs:
crates/dataset/src/csv.rs:
crates/dataset/src/dataset.rs:
crates/dataset/src/feature.rs:
crates/dataset/src/split.rs:
crates/dataset/src/synth.rs:
