/root/repo/target/release/deps/aml_interpret-ce3cb2ce092fdadb.d: crates/interpret/src/lib.rs crates/interpret/src/ale.rs crates/interpret/src/ale2.rs crates/interpret/src/grid.rs crates/interpret/src/importance.rs crates/interpret/src/pdp.rs crates/interpret/src/plot.rs crates/interpret/src/region.rs crates/interpret/src/variance.rs

/root/repo/target/release/deps/libaml_interpret-ce3cb2ce092fdadb.rlib: crates/interpret/src/lib.rs crates/interpret/src/ale.rs crates/interpret/src/ale2.rs crates/interpret/src/grid.rs crates/interpret/src/importance.rs crates/interpret/src/pdp.rs crates/interpret/src/plot.rs crates/interpret/src/region.rs crates/interpret/src/variance.rs

/root/repo/target/release/deps/libaml_interpret-ce3cb2ce092fdadb.rmeta: crates/interpret/src/lib.rs crates/interpret/src/ale.rs crates/interpret/src/ale2.rs crates/interpret/src/grid.rs crates/interpret/src/importance.rs crates/interpret/src/pdp.rs crates/interpret/src/plot.rs crates/interpret/src/region.rs crates/interpret/src/variance.rs

crates/interpret/src/lib.rs:
crates/interpret/src/ale.rs:
crates/interpret/src/ale2.rs:
crates/interpret/src/grid.rs:
crates/interpret/src/importance.rs:
crates/interpret/src/pdp.rs:
crates/interpret/src/plot.rs:
crates/interpret/src/region.rs:
crates/interpret/src/variance.rs:
