/root/repo/target/release/deps/fig1_scream_ale-98aea5a791dc408f.d: crates/bench/src/bin/fig1_scream_ale.rs

/root/repo/target/release/deps/fig1_scream_ale-98aea5a791dc408f: crates/bench/src/bin/fig1_scream_ale.rs

crates/bench/src/bin/fig1_scream_ale.rs:
