/root/repo/target/release/deps/aml_automl-dc375d0854aa019d.d: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs

/root/repo/target/release/deps/libaml_automl-dc375d0854aa019d.rlib: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs

/root/repo/target/release/deps/libaml_automl-dc375d0854aa019d.rmeta: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs

crates/automl/src/lib.rs:
crates/automl/src/automl.rs:
crates/automl/src/search.rs:
crates/automl/src/selection.rs:
crates/automl/src/space.rs:
