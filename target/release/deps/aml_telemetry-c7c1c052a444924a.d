/root/repo/target/release/deps/aml_telemetry-c7c1c052a444924a.d: crates/telemetry/src/lib.rs crates/telemetry/src/manifest.rs crates/telemetry/src/progress.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libaml_telemetry-c7c1c052a444924a.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/manifest.rs crates/telemetry/src/progress.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libaml_telemetry-c7c1c052a444924a.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/manifest.rs crates/telemetry/src/progress.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/manifest.rs:
crates/telemetry/src/progress.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/span.rs:
