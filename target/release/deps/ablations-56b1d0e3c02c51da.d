/root/repo/target/release/deps/ablations-56b1d0e3c02c51da.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-56b1d0e3c02c51da: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
