/root/repo/target/release/deps/rand-eac523e0b565a415.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-eac523e0b565a415.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-eac523e0b565a415.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
