/root/repo/target/release/deps/serde_derive-cb624bd3776985cb.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-cb624bd3776985cb.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
