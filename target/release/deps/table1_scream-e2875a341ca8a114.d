/root/repo/target/release/deps/table1_scream-e2875a341ca8a114.d: crates/bench/src/bin/table1_scream.rs

/root/repo/target/release/deps/table1_scream-e2875a341ca8a114: crates/bench/src/bin/table1_scream.rs

crates/bench/src/bin/table1_scream.rs:
