/root/repo/target/release/deps/table2_firewall-5ac0a5956d23108e.d: crates/bench/src/bin/table2_firewall.rs

/root/repo/target/release/deps/table2_firewall-5ac0a5956d23108e: crates/bench/src/bin/table2_firewall.rs

crates/bench/src/bin/table2_firewall.rs:
