/root/repo/target/debug/examples/quickstart-7c30f770a8d4d411.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-7c30f770a8d4d411.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
