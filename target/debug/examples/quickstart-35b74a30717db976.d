/root/repo/target/debug/examples/quickstart-35b74a30717db976.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-35b74a30717db976: examples/quickstart.rs

examples/quickstart.rs:
