/root/repo/target/debug/examples/active_learning_faceoff-24a2156c1975b545.d: examples/active_learning_faceoff.rs

/root/repo/target/debug/examples/active_learning_faceoff-24a2156c1975b545: examples/active_learning_faceoff.rs

examples/active_learning_faceoff.rs:
