/root/repo/target/debug/examples/active_learning_faceoff-ff81d9c7b685a21d.d: examples/active_learning_faceoff.rs Cargo.toml

/root/repo/target/debug/examples/libactive_learning_faceoff-ff81d9c7b685a21d.rmeta: examples/active_learning_faceoff.rs Cargo.toml

examples/active_learning_faceoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
