/root/repo/target/debug/examples/netsim_explore-719cc73cb9a4f7d1.d: examples/netsim_explore.rs Cargo.toml

/root/repo/target/debug/examples/libnetsim_explore-719cc73cb9a4f7d1.rmeta: examples/netsim_explore.rs Cargo.toml

examples/netsim_explore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
