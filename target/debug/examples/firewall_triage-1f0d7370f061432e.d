/root/repo/target/debug/examples/firewall_triage-1f0d7370f061432e.d: examples/firewall_triage.rs Cargo.toml

/root/repo/target/debug/examples/libfirewall_triage-1f0d7370f061432e.rmeta: examples/firewall_triage.rs Cargo.toml

examples/firewall_triage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
