/root/repo/target/debug/examples/firewall_triage-7b8c774e5855de9f.d: examples/firewall_triage.rs

/root/repo/target/debug/examples/firewall_triage-7b8c774e5855de9f: examples/firewall_triage.rs

examples/firewall_triage.rs:
