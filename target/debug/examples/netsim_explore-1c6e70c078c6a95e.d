/root/repo/target/debug/examples/netsim_explore-1c6e70c078c6a95e.d: examples/netsim_explore.rs

/root/repo/target/debug/examples/netsim_explore-1c6e70c078c6a95e: examples/netsim_explore.rs

examples/netsim_explore.rs:
