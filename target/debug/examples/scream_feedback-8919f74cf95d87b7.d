/root/repo/target/debug/examples/scream_feedback-8919f74cf95d87b7.d: examples/scream_feedback.rs Cargo.toml

/root/repo/target/debug/examples/libscream_feedback-8919f74cf95d87b7.rmeta: examples/scream_feedback.rs Cargo.toml

examples/scream_feedback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
