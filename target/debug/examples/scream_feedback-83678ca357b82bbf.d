/root/repo/target/debug/examples/scream_feedback-83678ca357b82bbf.d: examples/scream_feedback.rs

/root/repo/target/debug/examples/scream_feedback-83678ca357b82bbf: examples/scream_feedback.rs

examples/scream_feedback.rs:
