/root/repo/target/debug/deps/strategies_paired-aefa7100f2704cd0.d: tests/strategies_paired.rs Cargo.toml

/root/repo/target/debug/deps/libstrategies_paired-aefa7100f2704cd0.rmeta: tests/strategies_paired.rs Cargo.toml

tests/strategies_paired.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
