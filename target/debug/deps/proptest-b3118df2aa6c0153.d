/root/repo/target/debug/deps/proptest-b3118df2aa6c0153.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-b3118df2aa6c0153.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
