/root/repo/target/debug/deps/serde_json-cbef14817b337877.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-cbef14817b337877.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
