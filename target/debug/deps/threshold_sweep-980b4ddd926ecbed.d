/root/repo/target/debug/deps/threshold_sweep-980b4ddd926ecbed.d: crates/bench/src/bin/threshold_sweep.rs

/root/repo/target/debug/deps/libthreshold_sweep-980b4ddd926ecbed.rmeta: crates/bench/src/bin/threshold_sweep.rs

crates/bench/src/bin/threshold_sweep.rs:
