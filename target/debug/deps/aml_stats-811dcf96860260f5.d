/root/repo/target/debug/deps/aml_stats-811dcf96860260f5.d: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/effect.rs crates/stats/src/ranks.rs crates/stats/src/summary.rs crates/stats/src/wilcoxon.rs

/root/repo/target/debug/deps/libaml_stats-811dcf96860260f5.rlib: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/effect.rs crates/stats/src/ranks.rs crates/stats/src/summary.rs crates/stats/src/wilcoxon.rs

/root/repo/target/debug/deps/libaml_stats-811dcf96860260f5.rmeta: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/effect.rs crates/stats/src/ranks.rs crates/stats/src/summary.rs crates/stats/src/wilcoxon.rs

crates/stats/src/lib.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/effect.rs:
crates/stats/src/ranks.rs:
crates/stats/src/summary.rs:
crates/stats/src/wilcoxon.rs:
