/root/repo/target/debug/deps/aml_stats-873d9300ac35bdfe.d: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/effect.rs crates/stats/src/ranks.rs crates/stats/src/summary.rs crates/stats/src/wilcoxon.rs Cargo.toml

/root/repo/target/debug/deps/libaml_stats-873d9300ac35bdfe.rmeta: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/effect.rs crates/stats/src/ranks.rs crates/stats/src/summary.rs crates/stats/src/wilcoxon.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/effect.rs:
crates/stats/src/ranks.rs:
crates/stats/src/summary.rs:
crates/stats/src/wilcoxon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
