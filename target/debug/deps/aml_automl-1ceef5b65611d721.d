/root/repo/target/debug/deps/aml_automl-1ceef5b65611d721.d: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs

/root/repo/target/debug/deps/libaml_automl-1ceef5b65611d721.rlib: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs

/root/repo/target/debug/deps/libaml_automl-1ceef5b65611d721.rmeta: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs

crates/automl/src/lib.rs:
crates/automl/src/automl.rs:
crates/automl/src/search.rs:
crates/automl/src/selection.rs:
crates/automl/src/space.rs:
