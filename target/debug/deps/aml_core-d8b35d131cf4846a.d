/root/repo/target/debug/deps/aml_core-d8b35d131cf4846a.d: crates/core/src/lib.rs crates/core/src/ale_feedback.rs crates/core/src/confidence.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/qbc.rs crates/core/src/report.rs crates/core/src/uncertainty.rs crates/core/src/uniform.rs crates/core/src/upsampling.rs Cargo.toml

/root/repo/target/debug/deps/libaml_core-d8b35d131cf4846a.rmeta: crates/core/src/lib.rs crates/core/src/ale_feedback.rs crates/core/src/confidence.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/qbc.rs crates/core/src/report.rs crates/core/src/uncertainty.rs crates/core/src/uniform.rs crates/core/src/upsampling.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/ale_feedback.rs:
crates/core/src/confidence.rs:
crates/core/src/experiment.rs:
crates/core/src/feedback.rs:
crates/core/src/qbc.rs:
crates/core/src/report.rs:
crates/core/src/uncertainty.rs:
crates/core/src/uniform.rs:
crates/core/src/upsampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
