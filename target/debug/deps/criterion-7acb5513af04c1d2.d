/root/repo/target/debug/deps/criterion-7acb5513af04c1d2.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-7acb5513af04c1d2.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-7acb5513af04c1d2.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
