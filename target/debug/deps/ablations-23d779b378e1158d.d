/root/repo/target/debug/deps/ablations-23d779b378e1158d.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-23d779b378e1158d.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
