/root/repo/target/debug/deps/fig2_firewall_ale-98f23e7177b62f01.d: crates/bench/src/bin/fig2_firewall_ale.rs

/root/repo/target/debug/deps/fig2_firewall_ale-98f23e7177b62f01: crates/bench/src/bin/fig2_firewall_ale.rs

crates/bench/src/bin/fig2_firewall_ale.rs:
