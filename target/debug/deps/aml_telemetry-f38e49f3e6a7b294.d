/root/repo/target/debug/deps/aml_telemetry-f38e49f3e6a7b294.d: crates/telemetry/src/lib.rs crates/telemetry/src/manifest.rs crates/telemetry/src/progress.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libaml_telemetry-f38e49f3e6a7b294.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/manifest.rs crates/telemetry/src/progress.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libaml_telemetry-f38e49f3e6a7b294.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/manifest.rs crates/telemetry/src/progress.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/manifest.rs:
crates/telemetry/src/progress.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/span.rs:
