/root/repo/target/debug/deps/aml_fwgen-5db7dfb811e1c55e.d: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs

/root/repo/target/debug/deps/aml_fwgen-5db7dfb811e1c55e: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs

crates/fwgen/src/lib.rs:
crates/fwgen/src/gen.rs:
crates/fwgen/src/profiles.rs:
crates/fwgen/src/schema.rs:
