/root/repo/target/debug/deps/aml_automl-e109480e4512534a.d: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libaml_automl-e109480e4512534a.rmeta: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs Cargo.toml

crates/automl/src/lib.rs:
crates/automl/src/automl.rs:
crates/automl/src/search.rs:
crates/automl/src/selection.rs:
crates/automl/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
