/root/repo/target/debug/deps/table1_scream-ebe37ceda5259e54.d: crates/bench/src/bin/table1_scream.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_scream-ebe37ceda5259e54.rmeta: crates/bench/src/bin/table1_scream.rs Cargo.toml

crates/bench/src/bin/table1_scream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
