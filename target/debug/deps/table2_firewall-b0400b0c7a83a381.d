/root/repo/target/debug/deps/table2_firewall-b0400b0c7a83a381.d: crates/bench/src/bin/table2_firewall.rs

/root/repo/target/debug/deps/libtable2_firewall-b0400b0c7a83a381.rmeta: crates/bench/src/bin/table2_firewall.rs

crates/bench/src/bin/table2_firewall.rs:
