/root/repo/target/debug/deps/rand-f8a5c97ed2640383.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f8a5c97ed2640383.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-f8a5c97ed2640383.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
