/root/repo/target/debug/deps/crossbeam-63e7e31d338af6a3.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-63e7e31d338af6a3.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
