/root/repo/target/debug/deps/table2_firewall-cf8a16e4dd0670d4.d: crates/bench/src/bin/table2_firewall.rs

/root/repo/target/debug/deps/table2_firewall-cf8a16e4dd0670d4: crates/bench/src/bin/table2_firewall.rs

crates/bench/src/bin/table2_firewall.rs:
