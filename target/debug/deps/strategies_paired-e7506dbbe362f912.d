/root/repo/target/debug/deps/strategies_paired-e7506dbbe362f912.d: tests/strategies_paired.rs

/root/repo/target/debug/deps/strategies_paired-e7506dbbe362f912: tests/strategies_paired.rs

tests/strategies_paired.rs:
