/root/repo/target/debug/deps/threshold_sweep-d74c6d96c0041160.d: crates/bench/src/bin/threshold_sweep.rs

/root/repo/target/debug/deps/libthreshold_sweep-d74c6d96c0041160.rmeta: crates/bench/src/bin/threshold_sweep.rs

crates/bench/src/bin/threshold_sweep.rs:
