/root/repo/target/debug/deps/threshold_sweep-a641b610aed04d7a.d: crates/bench/src/bin/threshold_sweep.rs

/root/repo/target/debug/deps/threshold_sweep-a641b610aed04d7a: crates/bench/src/bin/threshold_sweep.rs

crates/bench/src/bin/threshold_sweep.rs:
