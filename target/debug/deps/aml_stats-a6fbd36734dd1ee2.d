/root/repo/target/debug/deps/aml_stats-a6fbd36734dd1ee2.d: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/effect.rs crates/stats/src/descriptive.rs crates/stats/src/ranks.rs crates/stats/src/summary.rs crates/stats/src/wilcoxon.rs

/root/repo/target/debug/deps/libaml_stats-a6fbd36734dd1ee2.rmeta: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/effect.rs crates/stats/src/descriptive.rs crates/stats/src/ranks.rs crates/stats/src/summary.rs crates/stats/src/wilcoxon.rs

crates/stats/src/lib.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/effect.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/ranks.rs:
crates/stats/src/summary.rs:
crates/stats/src/wilcoxon.rs:
