/root/repo/target/debug/deps/aml_bench-e3080e13947d891d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaml_bench-e3080e13947d891d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
