/root/repo/target/debug/deps/ablations-bc9a2134f88cf594.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-bc9a2134f88cf594: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
