/root/repo/target/debug/deps/strategies_paired-4099b968866d78d7.d: tests/strategies_paired.rs

/root/repo/target/debug/deps/libstrategies_paired-4099b968866d78d7.rmeta: tests/strategies_paired.rs

tests/strategies_paired.rs:
