/root/repo/target/debug/deps/aml_models-4b0fcf4dcad8bb36.d: crates/models/src/lib.rs crates/models/src/adaboost.rs crates/models/src/ensemble.rs crates/models/src/forest.rs crates/models/src/gbdt.rs crates/models/src/knn.rs crates/models/src/linear_svm.rs crates/models/src/logistic.rs crates/models/src/metrics.rs crates/models/src/model.rs crates/models/src/naive_bayes.rs crates/models/src/pipeline.rs crates/models/src/preprocess.rs crates/models/src/regression.rs crates/models/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libaml_models-4b0fcf4dcad8bb36.rmeta: crates/models/src/lib.rs crates/models/src/adaboost.rs crates/models/src/ensemble.rs crates/models/src/forest.rs crates/models/src/gbdt.rs crates/models/src/knn.rs crates/models/src/linear_svm.rs crates/models/src/logistic.rs crates/models/src/metrics.rs crates/models/src/model.rs crates/models/src/naive_bayes.rs crates/models/src/pipeline.rs crates/models/src/preprocess.rs crates/models/src/regression.rs crates/models/src/tree.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/adaboost.rs:
crates/models/src/ensemble.rs:
crates/models/src/forest.rs:
crates/models/src/gbdt.rs:
crates/models/src/knn.rs:
crates/models/src/linear_svm.rs:
crates/models/src/logistic.rs:
crates/models/src/metrics.rs:
crates/models/src/model.rs:
crates/models/src/naive_bayes.rs:
crates/models/src/pipeline.rs:
crates/models/src/preprocess.rs:
crates/models/src/regression.rs:
crates/models/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
