/root/repo/target/debug/deps/table2_firewall-c965949b7f2c3f9c.d: crates/bench/src/bin/table2_firewall.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_firewall-c965949b7f2c3f9c.rmeta: crates/bench/src/bin/table2_firewall.rs Cargo.toml

crates/bench/src/bin/table2_firewall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
