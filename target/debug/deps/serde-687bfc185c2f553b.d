/root/repo/target/debug/deps/serde-687bfc185c2f553b.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-687bfc185c2f553b.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-687bfc185c2f553b.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
