/root/repo/target/debug/deps/criterion-7d1427b53aa0aec9.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-7d1427b53aa0aec9.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
