/root/repo/target/debug/deps/table2_firewall-3c7ba33abf970c67.d: crates/bench/src/bin/table2_firewall.rs

/root/repo/target/debug/deps/table2_firewall-3c7ba33abf970c67: crates/bench/src/bin/table2_firewall.rs

crates/bench/src/bin/table2_firewall.rs:
