/root/repo/target/debug/deps/aml_interpret-65a52ccbf7b3e306.d: crates/interpret/src/lib.rs crates/interpret/src/ale.rs crates/interpret/src/ale2.rs crates/interpret/src/grid.rs crates/interpret/src/importance.rs crates/interpret/src/pdp.rs crates/interpret/src/plot.rs crates/interpret/src/region.rs crates/interpret/src/variance.rs Cargo.toml

/root/repo/target/debug/deps/libaml_interpret-65a52ccbf7b3e306.rmeta: crates/interpret/src/lib.rs crates/interpret/src/ale.rs crates/interpret/src/ale2.rs crates/interpret/src/grid.rs crates/interpret/src/importance.rs crates/interpret/src/pdp.rs crates/interpret/src/plot.rs crates/interpret/src/region.rs crates/interpret/src/variance.rs Cargo.toml

crates/interpret/src/lib.rs:
crates/interpret/src/ale.rs:
crates/interpret/src/ale2.rs:
crates/interpret/src/grid.rs:
crates/interpret/src/importance.rs:
crates/interpret/src/pdp.rs:
crates/interpret/src/plot.rs:
crates/interpret/src/region.rs:
crates/interpret/src/variance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
