/root/repo/target/debug/deps/ablations-0b2997ddfedaf53f.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-0b2997ddfedaf53f: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
