/root/repo/target/debug/deps/bench_feedback-930fc9eeb270f43a.d: crates/bench/benches/bench_feedback.rs Cargo.toml

/root/repo/target/debug/deps/libbench_feedback-930fc9eeb270f43a.rmeta: crates/bench/benches/bench_feedback.rs Cargo.toml

crates/bench/benches/bench_feedback.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
