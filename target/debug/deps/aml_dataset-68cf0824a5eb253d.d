/root/repo/target/debug/deps/aml_dataset-68cf0824a5eb253d.d: crates/dataset/src/lib.rs crates/dataset/src/csv.rs crates/dataset/src/dataset.rs crates/dataset/src/feature.rs crates/dataset/src/split.rs crates/dataset/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libaml_dataset-68cf0824a5eb253d.rmeta: crates/dataset/src/lib.rs crates/dataset/src/csv.rs crates/dataset/src/dataset.rs crates/dataset/src/feature.rs crates/dataset/src/split.rs crates/dataset/src/synth.rs Cargo.toml

crates/dataset/src/lib.rs:
crates/dataset/src/csv.rs:
crates/dataset/src/dataset.rs:
crates/dataset/src/feature.rs:
crates/dataset/src/split.rs:
crates/dataset/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
