/root/repo/target/debug/deps/end_to_end_scream-0384adaceb444b4a.d: tests/end_to_end_scream.rs

/root/repo/target/debug/deps/libend_to_end_scream-0384adaceb444b4a.rmeta: tests/end_to_end_scream.rs

tests/end_to_end_scream.rs:
