/root/repo/target/debug/deps/aml_automl-ed95c9a59383e544.d: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libaml_automl-ed95c9a59383e544.rmeta: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs Cargo.toml

crates/automl/src/lib.rs:
crates/automl/src/automl.rs:
crates/automl/src/search.rs:
crates/automl/src/selection.rs:
crates/automl/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
