/root/repo/target/debug/deps/aml_core-7e4ed3abf5b82e1b.d: crates/core/src/lib.rs crates/core/src/ale_feedback.rs crates/core/src/confidence.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/qbc.rs crates/core/src/report.rs crates/core/src/uncertainty.rs crates/core/src/uniform.rs crates/core/src/upsampling.rs

/root/repo/target/debug/deps/aml_core-7e4ed3abf5b82e1b: crates/core/src/lib.rs crates/core/src/ale_feedback.rs crates/core/src/confidence.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/qbc.rs crates/core/src/report.rs crates/core/src/uncertainty.rs crates/core/src/uniform.rs crates/core/src/upsampling.rs

crates/core/src/lib.rs:
crates/core/src/ale_feedback.rs:
crates/core/src/confidence.rs:
crates/core/src/experiment.rs:
crates/core/src/feedback.rs:
crates/core/src/qbc.rs:
crates/core/src/report.rs:
crates/core/src/uncertainty.rs:
crates/core/src/uniform.rs:
crates/core/src/upsampling.rs:
