/root/repo/target/debug/deps/firewall_pipeline-b306671923724825.d: tests/firewall_pipeline.rs

/root/repo/target/debug/deps/libfirewall_pipeline-b306671923724825.rmeta: tests/firewall_pipeline.rs

tests/firewall_pipeline.rs:
