/root/repo/target/debug/deps/aml_netsim-5ae51b8de710394a.d: crates/netsim/src/lib.rs crates/netsim/src/cc/mod.rs crates/netsim/src/cc/bbr.rs crates/netsim/src/cc/copa.rs crates/netsim/src/cc/cubic.rs crates/netsim/src/cc/reno.rs crates/netsim/src/cc/scream.rs crates/netsim/src/cc/vegas.rs crates/netsim/src/datagen.rs crates/netsim/src/event.rs crates/netsim/src/flow.rs crates/netsim/src/packet.rs crates/netsim/src/queue.rs crates/netsim/src/red.rs crates/netsim/src/runner.rs crates/netsim/src/scenario.rs crates/netsim/src/sim.rs crates/netsim/src/time.rs

/root/repo/target/debug/deps/libaml_netsim-5ae51b8de710394a.rmeta: crates/netsim/src/lib.rs crates/netsim/src/cc/mod.rs crates/netsim/src/cc/bbr.rs crates/netsim/src/cc/copa.rs crates/netsim/src/cc/cubic.rs crates/netsim/src/cc/reno.rs crates/netsim/src/cc/scream.rs crates/netsim/src/cc/vegas.rs crates/netsim/src/datagen.rs crates/netsim/src/event.rs crates/netsim/src/flow.rs crates/netsim/src/packet.rs crates/netsim/src/queue.rs crates/netsim/src/red.rs crates/netsim/src/runner.rs crates/netsim/src/scenario.rs crates/netsim/src/sim.rs crates/netsim/src/time.rs

crates/netsim/src/lib.rs:
crates/netsim/src/cc/mod.rs:
crates/netsim/src/cc/bbr.rs:
crates/netsim/src/cc/copa.rs:
crates/netsim/src/cc/cubic.rs:
crates/netsim/src/cc/reno.rs:
crates/netsim/src/cc/scream.rs:
crates/netsim/src/cc/vegas.rs:
crates/netsim/src/datagen.rs:
crates/netsim/src/event.rs:
crates/netsim/src/flow.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/queue.rs:
crates/netsim/src/red.rs:
crates/netsim/src/runner.rs:
crates/netsim/src/scenario.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/time.rs:
