/root/repo/target/debug/deps/aml_fwgen-a9b77373ebbb20d6.d: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs Cargo.toml

/root/repo/target/debug/deps/libaml_fwgen-a9b77373ebbb20d6.rmeta: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs Cargo.toml

crates/fwgen/src/lib.rs:
crates/fwgen/src/gen.rs:
crates/fwgen/src/profiles.rs:
crates/fwgen/src/schema.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
