/root/repo/target/debug/deps/manifest_golden-9d96bc2488a59159.d: crates/bench/tests/manifest_golden.rs

/root/repo/target/debug/deps/manifest_golden-9d96bc2488a59159: crates/bench/tests/manifest_golden.rs

crates/bench/tests/manifest_golden.rs:
