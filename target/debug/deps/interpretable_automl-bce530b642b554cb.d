/root/repo/target/debug/deps/interpretable_automl-bce530b642b554cb.d: src/lib.rs

/root/repo/target/debug/deps/interpretable_automl-bce530b642b554cb: src/lib.rs

src/lib.rs:
