/root/repo/target/debug/deps/aml_telemetry-0df6289b5ed360eb.d: crates/telemetry/src/lib.rs crates/telemetry/src/manifest.rs crates/telemetry/src/progress.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libaml_telemetry-0df6289b5ed360eb.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/manifest.rs crates/telemetry/src/progress.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/manifest.rs:
crates/telemetry/src/progress.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
