/root/repo/target/debug/deps/aml_dataset-ae0018e3c1c454e3.d: crates/dataset/src/lib.rs crates/dataset/src/csv.rs crates/dataset/src/dataset.rs crates/dataset/src/feature.rs crates/dataset/src/split.rs crates/dataset/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libaml_dataset-ae0018e3c1c454e3.rmeta: crates/dataset/src/lib.rs crates/dataset/src/csv.rs crates/dataset/src/dataset.rs crates/dataset/src/feature.rs crates/dataset/src/split.rs crates/dataset/src/synth.rs Cargo.toml

crates/dataset/src/lib.rs:
crates/dataset/src/csv.rs:
crates/dataset/src/dataset.rs:
crates/dataset/src/feature.rs:
crates/dataset/src/split.rs:
crates/dataset/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
