/root/repo/target/debug/deps/table1_scream-c201d50bd908a6bf.d: crates/bench/src/bin/table1_scream.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_scream-c201d50bd908a6bf.rmeta: crates/bench/src/bin/table1_scream.rs Cargo.toml

crates/bench/src/bin/table1_scream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
