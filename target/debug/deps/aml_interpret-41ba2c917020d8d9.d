/root/repo/target/debug/deps/aml_interpret-41ba2c917020d8d9.d: crates/interpret/src/lib.rs crates/interpret/src/ale.rs crates/interpret/src/ale2.rs crates/interpret/src/grid.rs crates/interpret/src/importance.rs crates/interpret/src/pdp.rs crates/interpret/src/plot.rs crates/interpret/src/region.rs crates/interpret/src/variance.rs

/root/repo/target/debug/deps/libaml_interpret-41ba2c917020d8d9.rmeta: crates/interpret/src/lib.rs crates/interpret/src/ale.rs crates/interpret/src/ale2.rs crates/interpret/src/grid.rs crates/interpret/src/importance.rs crates/interpret/src/pdp.rs crates/interpret/src/plot.rs crates/interpret/src/region.rs crates/interpret/src/variance.rs

crates/interpret/src/lib.rs:
crates/interpret/src/ale.rs:
crates/interpret/src/ale2.rs:
crates/interpret/src/grid.rs:
crates/interpret/src/importance.rs:
crates/interpret/src/pdp.rs:
crates/interpret/src/plot.rs:
crates/interpret/src/region.rs:
crates/interpret/src/variance.rs:
