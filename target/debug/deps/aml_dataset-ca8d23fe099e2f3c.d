/root/repo/target/debug/deps/aml_dataset-ca8d23fe099e2f3c.d: crates/dataset/src/lib.rs crates/dataset/src/csv.rs crates/dataset/src/dataset.rs crates/dataset/src/feature.rs crates/dataset/src/split.rs crates/dataset/src/synth.rs

/root/repo/target/debug/deps/libaml_dataset-ca8d23fe099e2f3c.rmeta: crates/dataset/src/lib.rs crates/dataset/src/csv.rs crates/dataset/src/dataset.rs crates/dataset/src/feature.rs crates/dataset/src/split.rs crates/dataset/src/synth.rs

crates/dataset/src/lib.rs:
crates/dataset/src/csv.rs:
crates/dataset/src/dataset.rs:
crates/dataset/src/feature.rs:
crates/dataset/src/split.rs:
crates/dataset/src/synth.rs:
