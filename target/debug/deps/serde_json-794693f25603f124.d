/root/repo/target/debug/deps/serde_json-794693f25603f124.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-794693f25603f124.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-794693f25603f124.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
