/root/repo/target/debug/deps/aml_automl-9376af04ad2afb15.d: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs

/root/repo/target/debug/deps/aml_automl-9376af04ad2afb15: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs

crates/automl/src/lib.rs:
crates/automl/src/automl.rs:
crates/automl/src/search.rs:
crates/automl/src/selection.rs:
crates/automl/src/space.rs:
