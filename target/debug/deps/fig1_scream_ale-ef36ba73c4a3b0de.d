/root/repo/target/debug/deps/fig1_scream_ale-ef36ba73c4a3b0de.d: crates/bench/src/bin/fig1_scream_ale.rs

/root/repo/target/debug/deps/fig1_scream_ale-ef36ba73c4a3b0de: crates/bench/src/bin/fig1_scream_ale.rs

crates/bench/src/bin/fig1_scream_ale.rs:
