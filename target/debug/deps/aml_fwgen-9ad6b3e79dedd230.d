/root/repo/target/debug/deps/aml_fwgen-9ad6b3e79dedd230.d: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs

/root/repo/target/debug/deps/libaml_fwgen-9ad6b3e79dedd230.rlib: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs

/root/repo/target/debug/deps/libaml_fwgen-9ad6b3e79dedd230.rmeta: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs

crates/fwgen/src/lib.rs:
crates/fwgen/src/gen.rs:
crates/fwgen/src/profiles.rs:
crates/fwgen/src/schema.rs:
