/root/repo/target/debug/deps/ablations-52948b17b2e96c52.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-52948b17b2e96c52.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
