/root/repo/target/debug/deps/end_to_end_scream-52b93ff969ff7a7a.d: tests/end_to_end_scream.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_scream-52b93ff969ff7a7a.rmeta: tests/end_to_end_scream.rs Cargo.toml

tests/end_to_end_scream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
