/root/repo/target/debug/deps/interpretable_automl-2455afc97fbd1bb3.d: src/lib.rs

/root/repo/target/debug/deps/libinterpretable_automl-2455afc97fbd1bb3.rmeta: src/lib.rs

src/lib.rs:
