/root/repo/target/debug/deps/interpretable_automl-8039c0560b4e4501.d: src/lib.rs

/root/repo/target/debug/deps/libinterpretable_automl-8039c0560b4e4501.rlib: src/lib.rs

/root/repo/target/debug/deps/libinterpretable_automl-8039c0560b4e4501.rmeta: src/lib.rs

src/lib.rs:
