/root/repo/target/debug/deps/table1_scream-07279de047a65d25.d: crates/bench/src/bin/table1_scream.rs

/root/repo/target/debug/deps/libtable1_scream-07279de047a65d25.rmeta: crates/bench/src/bin/table1_scream.rs

crates/bench/src/bin/table1_scream.rs:
