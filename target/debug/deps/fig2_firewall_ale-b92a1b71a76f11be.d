/root/repo/target/debug/deps/fig2_firewall_ale-b92a1b71a76f11be.d: crates/bench/src/bin/fig2_firewall_ale.rs

/root/repo/target/debug/deps/libfig2_firewall_ale-b92a1b71a76f11be.rmeta: crates/bench/src/bin/fig2_firewall_ale.rs

crates/bench/src/bin/fig2_firewall_ale.rs:
