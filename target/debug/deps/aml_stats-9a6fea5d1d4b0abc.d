/root/repo/target/debug/deps/aml_stats-9a6fea5d1d4b0abc.d: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/effect.rs crates/stats/src/ranks.rs crates/stats/src/summary.rs crates/stats/src/wilcoxon.rs Cargo.toml

/root/repo/target/debug/deps/libaml_stats-9a6fea5d1d4b0abc.rmeta: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/effect.rs crates/stats/src/ranks.rs crates/stats/src/summary.rs crates/stats/src/wilcoxon.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/effect.rs:
crates/stats/src/ranks.rs:
crates/stats/src/summary.rs:
crates/stats/src/wilcoxon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
