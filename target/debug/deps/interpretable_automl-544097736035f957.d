/root/repo/target/debug/deps/interpretable_automl-544097736035f957.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libinterpretable_automl-544097736035f957.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
