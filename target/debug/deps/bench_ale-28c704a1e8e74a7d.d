/root/repo/target/debug/deps/bench_ale-28c704a1e8e74a7d.d: crates/bench/benches/bench_ale.rs Cargo.toml

/root/repo/target/debug/deps/libbench_ale-28c704a1e8e74a7d.rmeta: crates/bench/benches/bench_ale.rs Cargo.toml

crates/bench/benches/bench_ale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
