/root/repo/target/debug/deps/aml_automl-2b56eaebb79d8d02.d: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs

/root/repo/target/debug/deps/libaml_automl-2b56eaebb79d8d02.rmeta: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs

crates/automl/src/lib.rs:
crates/automl/src/automl.rs:
crates/automl/src/search.rs:
crates/automl/src/selection.rs:
crates/automl/src/space.rs:
