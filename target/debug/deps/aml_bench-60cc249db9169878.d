/root/repo/target/debug/deps/aml_bench-60cc249db9169878.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaml_bench-60cc249db9169878.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaml_bench-60cc249db9169878.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
