/root/repo/target/debug/deps/table2_firewall-b37332eff3bdfe3e.d: crates/bench/src/bin/table2_firewall.rs

/root/repo/target/debug/deps/libtable2_firewall-b37332eff3bdfe3e.rmeta: crates/bench/src/bin/table2_firewall.rs

crates/bench/src/bin/table2_firewall.rs:
