/root/repo/target/debug/deps/aml_automl-b87c757b5543e94a.d: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs

/root/repo/target/debug/deps/libaml_automl-b87c757b5543e94a.rmeta: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs

crates/automl/src/lib.rs:
crates/automl/src/automl.rs:
crates/automl/src/search.rs:
crates/automl/src/selection.rs:
crates/automl/src/space.rs:
