/root/repo/target/debug/deps/serde-963225c887c0fb4b.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-963225c887c0fb4b.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
