/root/repo/target/debug/deps/ablations-340c7a0f382a76f4.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-340c7a0f382a76f4.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
