/root/repo/target/debug/deps/bench_netsim-289bfb370c6975f6.d: crates/bench/benches/bench_netsim.rs Cargo.toml

/root/repo/target/debug/deps/libbench_netsim-289bfb370c6975f6.rmeta: crates/bench/benches/bench_netsim.rs Cargo.toml

crates/bench/benches/bench_netsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
