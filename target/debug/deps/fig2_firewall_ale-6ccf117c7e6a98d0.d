/root/repo/target/debug/deps/fig2_firewall_ale-6ccf117c7e6a98d0.d: crates/bench/src/bin/fig2_firewall_ale.rs

/root/repo/target/debug/deps/libfig2_firewall_ale-6ccf117c7e6a98d0.rmeta: crates/bench/src/bin/fig2_firewall_ale.rs

crates/bench/src/bin/fig2_firewall_ale.rs:
