/root/repo/target/debug/deps/table1_scream-5dcf9ad863f2b07e.d: crates/bench/src/bin/table1_scream.rs

/root/repo/target/debug/deps/libtable1_scream-5dcf9ad863f2b07e.rmeta: crates/bench/src/bin/table1_scream.rs

crates/bench/src/bin/table1_scream.rs:
