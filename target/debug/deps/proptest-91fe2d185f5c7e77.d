/root/repo/target/debug/deps/proptest-91fe2d185f5c7e77.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-91fe2d185f5c7e77.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-91fe2d185f5c7e77.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
