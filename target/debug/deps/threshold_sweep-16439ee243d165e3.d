/root/repo/target/debug/deps/threshold_sweep-16439ee243d165e3.d: crates/bench/src/bin/threshold_sweep.rs

/root/repo/target/debug/deps/threshold_sweep-16439ee243d165e3: crates/bench/src/bin/threshold_sweep.rs

crates/bench/src/bin/threshold_sweep.rs:
