/root/repo/target/debug/deps/interpretable_automl-6faaf2f65730adad.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libinterpretable_automl-6faaf2f65730adad.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
