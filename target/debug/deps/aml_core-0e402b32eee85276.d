/root/repo/target/debug/deps/aml_core-0e402b32eee85276.d: crates/core/src/lib.rs crates/core/src/ale_feedback.rs crates/core/src/confidence.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/qbc.rs crates/core/src/report.rs crates/core/src/uncertainty.rs crates/core/src/uniform.rs crates/core/src/upsampling.rs

/root/repo/target/debug/deps/libaml_core-0e402b32eee85276.rmeta: crates/core/src/lib.rs crates/core/src/ale_feedback.rs crates/core/src/confidence.rs crates/core/src/experiment.rs crates/core/src/feedback.rs crates/core/src/qbc.rs crates/core/src/report.rs crates/core/src/uncertainty.rs crates/core/src/uniform.rs crates/core/src/upsampling.rs

crates/core/src/lib.rs:
crates/core/src/ale_feedback.rs:
crates/core/src/confidence.rs:
crates/core/src/experiment.rs:
crates/core/src/feedback.rs:
crates/core/src/qbc.rs:
crates/core/src/report.rs:
crates/core/src/uncertainty.rs:
crates/core/src/uniform.rs:
crates/core/src/upsampling.rs:
