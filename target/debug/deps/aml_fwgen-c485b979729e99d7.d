/root/repo/target/debug/deps/aml_fwgen-c485b979729e99d7.d: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs Cargo.toml

/root/repo/target/debug/deps/libaml_fwgen-c485b979729e99d7.rmeta: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs Cargo.toml

crates/fwgen/src/lib.rs:
crates/fwgen/src/gen.rs:
crates/fwgen/src/profiles.rs:
crates/fwgen/src/schema.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
