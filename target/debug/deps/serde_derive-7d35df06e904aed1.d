/root/repo/target/debug/deps/serde_derive-7d35df06e904aed1.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-7d35df06e904aed1.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
