/root/repo/target/debug/deps/table1_scream-6c7c9195d4f03858.d: crates/bench/src/bin/table1_scream.rs

/root/repo/target/debug/deps/table1_scream-6c7c9195d4f03858: crates/bench/src/bin/table1_scream.rs

crates/bench/src/bin/table1_scream.rs:
