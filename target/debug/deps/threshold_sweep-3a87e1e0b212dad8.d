/root/repo/target/debug/deps/threshold_sweep-3a87e1e0b212dad8.d: crates/bench/src/bin/threshold_sweep.rs

/root/repo/target/debug/deps/libthreshold_sweep-3a87e1e0b212dad8.rmeta: crates/bench/src/bin/threshold_sweep.rs

crates/bench/src/bin/threshold_sweep.rs:
