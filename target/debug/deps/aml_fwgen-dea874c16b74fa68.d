/root/repo/target/debug/deps/aml_fwgen-dea874c16b74fa68.d: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs

/root/repo/target/debug/deps/libaml_fwgen-dea874c16b74fa68.rmeta: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs

crates/fwgen/src/lib.rs:
crates/fwgen/src/gen.rs:
crates/fwgen/src/profiles.rs:
crates/fwgen/src/schema.rs:
