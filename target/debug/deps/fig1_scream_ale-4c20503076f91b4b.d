/root/repo/target/debug/deps/fig1_scream_ale-4c20503076f91b4b.d: crates/bench/src/bin/fig1_scream_ale.rs

/root/repo/target/debug/deps/libfig1_scream_ale-4c20503076f91b4b.rmeta: crates/bench/src/bin/fig1_scream_ale.rs

crates/bench/src/bin/fig1_scream_ale.rs:
