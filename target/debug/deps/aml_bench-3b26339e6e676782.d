/root/repo/target/debug/deps/aml_bench-3b26339e6e676782.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaml_bench-3b26339e6e676782.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
