/root/repo/target/debug/deps/aml_dataset-6ec0f0891e50acfc.d: crates/dataset/src/lib.rs crates/dataset/src/csv.rs crates/dataset/src/dataset.rs crates/dataset/src/feature.rs crates/dataset/src/split.rs crates/dataset/src/synth.rs

/root/repo/target/debug/deps/aml_dataset-6ec0f0891e50acfc: crates/dataset/src/lib.rs crates/dataset/src/csv.rs crates/dataset/src/dataset.rs crates/dataset/src/feature.rs crates/dataset/src/split.rs crates/dataset/src/synth.rs

crates/dataset/src/lib.rs:
crates/dataset/src/csv.rs:
crates/dataset/src/dataset.rs:
crates/dataset/src/feature.rs:
crates/dataset/src/split.rs:
crates/dataset/src/synth.rs:
