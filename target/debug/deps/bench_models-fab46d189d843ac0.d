/root/repo/target/debug/deps/bench_models-fab46d189d843ac0.d: crates/bench/benches/bench_models.rs Cargo.toml

/root/repo/target/debug/deps/libbench_models-fab46d189d843ac0.rmeta: crates/bench/benches/bench_models.rs Cargo.toml

crates/bench/benches/bench_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
