/root/repo/target/debug/deps/aml_bench-1bd746cd579f4775.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaml_bench-1bd746cd579f4775.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
