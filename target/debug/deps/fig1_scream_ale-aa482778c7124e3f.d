/root/repo/target/debug/deps/fig1_scream_ale-aa482778c7124e3f.d: crates/bench/src/bin/fig1_scream_ale.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_scream_ale-aa482778c7124e3f.rmeta: crates/bench/src/bin/fig1_scream_ale.rs Cargo.toml

crates/bench/src/bin/fig1_scream_ale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
