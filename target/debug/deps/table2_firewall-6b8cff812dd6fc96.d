/root/repo/target/debug/deps/table2_firewall-6b8cff812dd6fc96.d: crates/bench/src/bin/table2_firewall.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_firewall-6b8cff812dd6fc96.rmeta: crates/bench/src/bin/table2_firewall.rs Cargo.toml

crates/bench/src/bin/table2_firewall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
