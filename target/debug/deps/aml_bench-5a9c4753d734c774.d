/root/repo/target/debug/deps/aml_bench-5a9c4753d734c774.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/aml_bench-5a9c4753d734c774: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
