/root/repo/target/debug/deps/aml_dataset-e14166c7ca09d438.d: crates/dataset/src/lib.rs crates/dataset/src/csv.rs crates/dataset/src/dataset.rs crates/dataset/src/feature.rs crates/dataset/src/split.rs crates/dataset/src/synth.rs

/root/repo/target/debug/deps/libaml_dataset-e14166c7ca09d438.rmeta: crates/dataset/src/lib.rs crates/dataset/src/csv.rs crates/dataset/src/dataset.rs crates/dataset/src/feature.rs crates/dataset/src/split.rs crates/dataset/src/synth.rs

crates/dataset/src/lib.rs:
crates/dataset/src/csv.rs:
crates/dataset/src/dataset.rs:
crates/dataset/src/feature.rs:
crates/dataset/src/split.rs:
crates/dataset/src/synth.rs:
