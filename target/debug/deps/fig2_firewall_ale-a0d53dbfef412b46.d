/root/repo/target/debug/deps/fig2_firewall_ale-a0d53dbfef412b46.d: crates/bench/src/bin/fig2_firewall_ale.rs

/root/repo/target/debug/deps/libfig2_firewall_ale-a0d53dbfef412b46.rmeta: crates/bench/src/bin/fig2_firewall_ale.rs

crates/bench/src/bin/fig2_firewall_ale.rs:
