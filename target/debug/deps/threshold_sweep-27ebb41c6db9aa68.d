/root/repo/target/debug/deps/threshold_sweep-27ebb41c6db9aa68.d: crates/bench/src/bin/threshold_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libthreshold_sweep-27ebb41c6db9aa68.rmeta: crates/bench/src/bin/threshold_sweep.rs Cargo.toml

crates/bench/src/bin/threshold_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
