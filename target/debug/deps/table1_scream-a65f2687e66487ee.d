/root/repo/target/debug/deps/table1_scream-a65f2687e66487ee.d: crates/bench/src/bin/table1_scream.rs

/root/repo/target/debug/deps/libtable1_scream-a65f2687e66487ee.rmeta: crates/bench/src/bin/table1_scream.rs

crates/bench/src/bin/table1_scream.rs:
