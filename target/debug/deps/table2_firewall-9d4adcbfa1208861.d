/root/repo/target/debug/deps/table2_firewall-9d4adcbfa1208861.d: crates/bench/src/bin/table2_firewall.rs

/root/repo/target/debug/deps/libtable2_firewall-9d4adcbfa1208861.rmeta: crates/bench/src/bin/table2_firewall.rs

crates/bench/src/bin/table2_firewall.rs:
