/root/repo/target/debug/deps/aml_bench-5eadab7d56312a29.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libaml_bench-5eadab7d56312a29.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
