/root/repo/target/debug/deps/table1_scream-0c8e1b3f527d537a.d: crates/bench/src/bin/table1_scream.rs

/root/repo/target/debug/deps/table1_scream-0c8e1b3f527d537a: crates/bench/src/bin/table1_scream.rs

crates/bench/src/bin/table1_scream.rs:
