/root/repo/target/debug/deps/firewall_pipeline-90b3ab859fc457d7.d: tests/firewall_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfirewall_pipeline-90b3ab859fc457d7.rmeta: tests/firewall_pipeline.rs Cargo.toml

tests/firewall_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
