/root/repo/target/debug/deps/aml_automl-c7ea613ebb2df621.d: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs

/root/repo/target/debug/deps/libaml_automl-c7ea613ebb2df621.rmeta: crates/automl/src/lib.rs crates/automl/src/automl.rs crates/automl/src/search.rs crates/automl/src/selection.rs crates/automl/src/space.rs

crates/automl/src/lib.rs:
crates/automl/src/automl.rs:
crates/automl/src/search.rs:
crates/automl/src/selection.rs:
crates/automl/src/space.rs:
