/root/repo/target/debug/deps/ablations-a24338670b52a759.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-a24338670b52a759.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
