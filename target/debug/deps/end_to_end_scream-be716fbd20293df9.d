/root/repo/target/debug/deps/end_to_end_scream-be716fbd20293df9.d: tests/end_to_end_scream.rs

/root/repo/target/debug/deps/end_to_end_scream-be716fbd20293df9: tests/end_to_end_scream.rs

tests/end_to_end_scream.rs:
