/root/repo/target/debug/deps/firewall_pipeline-517c3f02df21baca.d: tests/firewall_pipeline.rs

/root/repo/target/debug/deps/firewall_pipeline-517c3f02df21baca: tests/firewall_pipeline.rs

tests/firewall_pipeline.rs:
