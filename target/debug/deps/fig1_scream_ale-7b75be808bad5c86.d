/root/repo/target/debug/deps/fig1_scream_ale-7b75be808bad5c86.d: crates/bench/src/bin/fig1_scream_ale.rs

/root/repo/target/debug/deps/libfig1_scream_ale-7b75be808bad5c86.rmeta: crates/bench/src/bin/fig1_scream_ale.rs

crates/bench/src/bin/fig1_scream_ale.rs:
