/root/repo/target/debug/deps/aml_fwgen-559d92f260e3de8e.d: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs

/root/repo/target/debug/deps/libaml_fwgen-559d92f260e3de8e.rmeta: crates/fwgen/src/lib.rs crates/fwgen/src/gen.rs crates/fwgen/src/profiles.rs crates/fwgen/src/schema.rs

crates/fwgen/src/lib.rs:
crates/fwgen/src/gen.rs:
crates/fwgen/src/profiles.rs:
crates/fwgen/src/schema.rs:
