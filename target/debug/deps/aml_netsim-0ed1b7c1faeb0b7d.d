/root/repo/target/debug/deps/aml_netsim-0ed1b7c1faeb0b7d.d: crates/netsim/src/lib.rs crates/netsim/src/cc/mod.rs crates/netsim/src/cc/bbr.rs crates/netsim/src/cc/copa.rs crates/netsim/src/cc/cubic.rs crates/netsim/src/cc/reno.rs crates/netsim/src/cc/scream.rs crates/netsim/src/cc/vegas.rs crates/netsim/src/datagen.rs crates/netsim/src/event.rs crates/netsim/src/flow.rs crates/netsim/src/packet.rs crates/netsim/src/queue.rs crates/netsim/src/red.rs crates/netsim/src/runner.rs crates/netsim/src/scenario.rs crates/netsim/src/sim.rs crates/netsim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libaml_netsim-0ed1b7c1faeb0b7d.rmeta: crates/netsim/src/lib.rs crates/netsim/src/cc/mod.rs crates/netsim/src/cc/bbr.rs crates/netsim/src/cc/copa.rs crates/netsim/src/cc/cubic.rs crates/netsim/src/cc/reno.rs crates/netsim/src/cc/scream.rs crates/netsim/src/cc/vegas.rs crates/netsim/src/datagen.rs crates/netsim/src/event.rs crates/netsim/src/flow.rs crates/netsim/src/packet.rs crates/netsim/src/queue.rs crates/netsim/src/red.rs crates/netsim/src/runner.rs crates/netsim/src/scenario.rs crates/netsim/src/sim.rs crates/netsim/src/time.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/cc/mod.rs:
crates/netsim/src/cc/bbr.rs:
crates/netsim/src/cc/copa.rs:
crates/netsim/src/cc/cubic.rs:
crates/netsim/src/cc/reno.rs:
crates/netsim/src/cc/scream.rs:
crates/netsim/src/cc/vegas.rs:
crates/netsim/src/datagen.rs:
crates/netsim/src/event.rs:
crates/netsim/src/flow.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/queue.rs:
crates/netsim/src/red.rs:
crates/netsim/src/runner.rs:
crates/netsim/src/scenario.rs:
crates/netsim/src/sim.rs:
crates/netsim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
