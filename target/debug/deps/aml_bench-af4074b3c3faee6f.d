/root/repo/target/debug/deps/aml_bench-af4074b3c3faee6f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libaml_bench-af4074b3c3faee6f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
