/root/repo/target/debug/deps/interpretable_automl-a68ffe21692a32e4.d: src/lib.rs

/root/repo/target/debug/deps/libinterpretable_automl-a68ffe21692a32e4.rmeta: src/lib.rs

src/lib.rs:
