/root/repo/target/debug/deps/aml_telemetry-e7514417682e89f5.d: crates/telemetry/src/lib.rs crates/telemetry/src/manifest.rs crates/telemetry/src/progress.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libaml_telemetry-e7514417682e89f5.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/manifest.rs crates/telemetry/src/progress.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/manifest.rs:
crates/telemetry/src/progress.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/span.rs:
