/root/repo/target/debug/deps/aml_telemetry-e45a95085ebc3937.d: crates/telemetry/src/lib.rs crates/telemetry/src/manifest.rs crates/telemetry/src/progress.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libaml_telemetry-e45a95085ebc3937.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/manifest.rs crates/telemetry/src/progress.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/manifest.rs:
crates/telemetry/src/progress.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/span.rs:
