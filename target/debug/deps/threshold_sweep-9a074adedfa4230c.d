/root/repo/target/debug/deps/threshold_sweep-9a074adedfa4230c.d: crates/bench/src/bin/threshold_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libthreshold_sweep-9a074adedfa4230c.rmeta: crates/bench/src/bin/threshold_sweep.rs Cargo.toml

crates/bench/src/bin/threshold_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
