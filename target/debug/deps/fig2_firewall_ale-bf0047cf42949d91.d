/root/repo/target/debug/deps/fig2_firewall_ale-bf0047cf42949d91.d: crates/bench/src/bin/fig2_firewall_ale.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_firewall_ale-bf0047cf42949d91.rmeta: crates/bench/src/bin/fig2_firewall_ale.rs Cargo.toml

crates/bench/src/bin/fig2_firewall_ale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
