/root/repo/target/debug/deps/crossbeam-48c0ba76bea2cd4a.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-48c0ba76bea2cd4a.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-48c0ba76bea2cd4a.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
