/root/repo/target/debug/deps/fig1_scream_ale-5cbc15f41b88f3fe.d: crates/bench/src/bin/fig1_scream_ale.rs

/root/repo/target/debug/deps/fig1_scream_ale-5cbc15f41b88f3fe: crates/bench/src/bin/fig1_scream_ale.rs

crates/bench/src/bin/fig1_scream_ale.rs:
