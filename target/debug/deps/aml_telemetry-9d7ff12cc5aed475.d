/root/repo/target/debug/deps/aml_telemetry-9d7ff12cc5aed475.d: crates/telemetry/src/lib.rs crates/telemetry/src/manifest.rs crates/telemetry/src/progress.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/aml_telemetry-9d7ff12cc5aed475: crates/telemetry/src/lib.rs crates/telemetry/src/manifest.rs crates/telemetry/src/progress.rs crates/telemetry/src/registry.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/manifest.rs:
crates/telemetry/src/progress.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/span.rs:
