/root/repo/target/debug/deps/ablations-18a5e9c3ef5867d4.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-18a5e9c3ef5867d4.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
