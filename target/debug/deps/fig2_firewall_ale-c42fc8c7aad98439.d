/root/repo/target/debug/deps/fig2_firewall_ale-c42fc8c7aad98439.d: crates/bench/src/bin/fig2_firewall_ale.rs

/root/repo/target/debug/deps/fig2_firewall_ale-c42fc8c7aad98439: crates/bench/src/bin/fig2_firewall_ale.rs

crates/bench/src/bin/fig2_firewall_ale.rs:
