/root/repo/target/debug/deps/rand-b56ade5afa4bc9bc.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b56ade5afa4bc9bc.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
