/root/repo/target/debug/deps/manifest_golden-b2b5dcb2026bc6e4.d: crates/bench/tests/manifest_golden.rs Cargo.toml

/root/repo/target/debug/deps/libmanifest_golden-b2b5dcb2026bc6e4.rmeta: crates/bench/tests/manifest_golden.rs Cargo.toml

crates/bench/tests/manifest_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
