/root/repo/target/debug/deps/fig1_scream_ale-ebcfe84663bea0d2.d: crates/bench/src/bin/fig1_scream_ale.rs

/root/repo/target/debug/deps/libfig1_scream_ale-ebcfe84663bea0d2.rmeta: crates/bench/src/bin/fig1_scream_ale.rs

crates/bench/src/bin/fig1_scream_ale.rs:
