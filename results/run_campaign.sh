#!/bin/bash
# Medium-scale experiment campaign: regenerates every table/figure artifact.
cd /root/repo
for bin in fig1_scream_ale table1_scream fig2_firewall_ale table2_firewall threshold_sweep ablations; do
  echo "=== starting $bin at $(date) ==="
  time cargo run --release -p aml-bench --bin $bin -- --out results/medium \
      > results/medium_${bin}.log 2>&1
  echo "=== $bin done (exit $?) at $(date) ==="
done
