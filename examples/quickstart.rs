//! Quickstart: train AutoML, get interpretable ALE feedback, act on it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The scenario: the label follows a striped pattern over `x0` (three bands
//! whose rule alternates), but the operator's training data only covers the
//! first two bands — exactly the "production traces miss the rare regime"
//! situation the paper's §2.2 describes. AutoML extrapolates the second
//! band's rule into the third and fails there; the ALE feedback flags the
//! uncovered region, the oracle labels samples from it, and retraining
//! recovers the lost accuracy.

use aml_rng::rngs::StdRng;
use aml_rng::{Rng, SeedableRng};
use interpretable_automl::automl::{AutoMl, AutoMlConfig};
use interpretable_automl::data::Dataset;
use interpretable_automl::feedback::{run_strategy, AleFeedback, ExperimentConfig, Strategy};
use interpretable_automl::interpret::plot::band_to_ascii;
use interpretable_automl::models::metrics::balanced_accuracy;
use interpretable_automl::models::Classifier;

/// Ground truth: three bands over x0 (boundaries at 1/3 and 2/3); the label
/// is `(band + [x1 > 0.5]) mod 2`. A model that never saw the third band
/// cannot guess that the rule flips again.
fn true_label(row: &[f64]) -> usize {
    let band = (row[0] * 3.0).floor().clamp(0.0, 2.0) as usize;
    (band + usize::from(row[1] > 0.5)) % 2
}

/// Sample `n` points with x0 uniform in `[lo, hi)`.
fn striped(n: usize, lo: f64, hi: f64, seed: u64) -> Result<Dataset, Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| vec![rng.gen_range(lo..hi), rng.gen::<f64>()])
        .collect();
    let labels: Vec<usize> = rows.iter().map(|r| true_label(r)).collect();
    let mut ds = Dataset::from_rows(&rows, &labels, 2)?;
    // Declare the FULL feature domain (the operator knows x0 spans [0,1]
    // even though their data doesn't) — the paper's R(X_s) input.
    ds.set_features(vec![
        interpretable_automl::data::FeatureMeta::continuous("x0", 0.0, 1.0),
        interpretable_automl::data::FeatureMeta::continuous("x1", 0.0, 1.0),
    ])?;
    Ok(ds)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Training data only covers the first two bands (x0 < 0.62).
    let train = striped(300, 0.0, 0.62, 42)?;
    // Test data spans everything.
    let test = striped(600, 0.0, 1.0, 43)?;

    println!("=== 1. Baseline AutoML ===");
    let automl_cfg = AutoMlConfig {
        n_candidates: 12,
        seed: 7,
        ..Default::default()
    };
    let run = AutoMl::new(automl_cfg.clone()).fit(&train)?;
    let preds = run.predict(&test)?;
    let base_acc = balanced_accuracy(test.labels(), &preds, 2)?;
    println!(
        "ensemble: {:?}\nbalanced accuracy on held-out data: {:.1}%\n",
        run.member_names(),
        base_acc * 100.0
    );

    println!("=== 2. Interpretable feedback ===");
    let ale = AleFeedback::default();
    let (analysis, feedback) = ale.feedback(&[run], &train)?;
    println!("{}", feedback.describe());
    for band in &analysis.bands {
        println!("{}", band_to_ascii(band, 60, 10));
    }

    println!("=== 3. Act on the feedback ===");
    // The oracle: in production this is the operator collecting and
    // labeling the suggested measurements; here the ground-truth rule.
    let oracle = |rows: &[Vec<f64>]| -> interpretable_automl::feedback::Result<Dataset> {
        let labels: Vec<usize> = rows.iter().map(|r| true_label(r)).collect();
        Ok(Dataset::from_rows(rows, &labels, 2)?)
    };
    let cfg = ExperimentConfig {
        automl: automl_cfg,
        n_feedback_points: 80,
        n_cross_runs: 3,
        seed: 7,
        ..Default::default()
    };
    let tests = vec![test];
    let outcome = run_strategy(
        Strategy::WithinAle,
        &cfg,
        &train,
        None,
        Some(&oracle),
        &tests,
    )?;
    println!(
        "added {} suggested points -> balanced accuracy {:.1}% (baseline {:.1}%)",
        outcome.n_points_added,
        outcome.scores[0] * 100.0,
        base_acc * 100.0
    );
    Ok(())
}
