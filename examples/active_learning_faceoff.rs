//! All feedback strategies head to head on one dataset — a miniature
//! Table 1.
//!
//! ```sh
//! cargo run --release --example active_learning_faceoff
//! ```

use interpretable_automl::automl::AutoMlConfig;
use interpretable_automl::data::{split::split_into_k, synth, Dataset};
use interpretable_automl::feedback::{run_strategy, ExperimentConfig, Strategy, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    // Noisy XOR with a known oracle: every strategy can play.
    let train = synth::noisy_xor(250, 0.1, 1)?;
    let pool = synth::noisy_xor(600, 0.1, 2)?;
    let test = synth::noisy_xor(800, 0.0, 3)?;
    let test_sets = split_into_k(&test, 8, 4)?;

    let oracle = |rows: &[Vec<f64>]| -> interpretable_automl::feedback::Result<Dataset> {
        let labels: Vec<usize> = rows
            .iter()
            .map(|r| usize::from((r[0] > 0.5) != (r[1] > 0.5)))
            .collect();
        Ok(Dataset::from_rows(rows, &labels, 2)?)
    };

    let cfg = ExperimentConfig {
        automl: AutoMlConfig {
            n_candidates: 10,
            parallelism: threads,
            ..Default::default()
        },
        n_feedback_points: 60,
        n_cross_runs: 3,
        seed: 9,
        ..Default::default()
    };

    let mut outcomes = Vec::new();
    for strategy in Strategy::ALL {
        print!("running {:<22} ... ", strategy.name());
        let out = run_strategy(
            strategy,
            &cfg,
            &train,
            Some(&pool),
            Some(&oracle),
            &test_sets,
        )?;
        let mean = out.scores.iter().sum::<f64>() / out.scores.len() as f64;
        println!(
            "balanced accuracy {:.1}% (+{} points)",
            mean * 100.0,
            out.n_points_added
        );
        outcomes.push(out);
    }

    println!("\n{}", Table::build(&outcomes)?.render()?);
    println!("(p-values: one-sided Wilcoxon, H1 = row is worse than column)");
    Ok(())
}
