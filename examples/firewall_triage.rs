//! The paper's §4.2 interpretability walk-through on the firewall dataset
//! (Figure 2): the operator reads the ALE feedback and decides — with
//! domain knowledge — which suggestions to act on.
//!
//! ```sh
//! cargo run --release --example firewall_triage
//! ```

use interpretable_automl::automl::{AutoMl, AutoMlConfig};
use interpretable_automl::data::split::three_way_split;
use interpretable_automl::feedback::{AleFeedback, ThresholdRule};
use interpretable_automl::fwgen::{generate, FwGenConfig};
use interpretable_automl::interpret::plot::band_to_ascii;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("generating the synthetic Internet-Firewall dataset...");
    let full = generate(&FwGenConfig {
        n: 6_000,
        seed: 11,
        ..Default::default()
    })?;
    println!(
        "  {} rows, classes {:?}",
        full.n_rows(),
        full.class_counts()
    );

    // The paper's protocol: 40% train / 20% test / 40% candidate pool.
    let (train, _test, _pool) = three_way_split(&full, 0.4, 0.2, 3)?;

    println!("training AutoML on {} rows...", train.n_rows());
    let run = AutoMl::new(AutoMlConfig {
        n_candidates: 12,
        parallelism: threads,
        seed: 21,
        ..Default::default()
    })
    .fit(&train)?;
    println!("  ensemble: {:?}", run.member_names());

    // ALE of the "allow" class probability with per-feature thresholds
    // (paper §5: operators tune the threshold per feature).
    let ale = AleFeedback {
        target_class: 0,
        threshold: ThresholdRule::PerFeatureQuantile(0.85),
        ..Default::default()
    };
    let (analysis, feedback) = ale.feedback(&[run], &train)?;
    println!("\n{}", feedback.describe());

    for name in ["src_port", "dst_port"] {
        let Some(band) = analysis.bands.iter().find(|b| b.feature_name == name) else {
            continue;
        };
        println!("{}", band_to_ascii(band, 64, 12));
        let region = &analysis.regions[band.feature];
        println!("flagged: {}\n", region.describe());
    }

    println!("--- operator triage (the paper's §4.2 reasoning) ---");
    println!("* src_port: kernel-assigned, noisy by nature -> DISCARD this bound");
    println!("* dst_port 443-445: HTTPS, a prime DDoS target -> COLLECT more data here");

    // Going beyond the paper: second-order ALE ranks feature *interactions*
    // — the firewall's hidden rate-limit rule is a dst_port × pkts_sent
    // interaction, and the strongest pairs should involve those features.
    println!("\n--- interaction scan (second-order ALE, extension) ---");
    let member = analysis_model(&train)?;
    let ranked = interpretable_automl::interpret::rank_interactions(
        member.as_ref(),
        &train,
        6,
        &interpretable_automl::interpret::AleConfig { target_class: 0 },
    )?;
    for (j, k, strength) in ranked.iter().take(3) {
        println!(
            "  {} x {}: interaction strength {:.4}",
            train.features()[*j].name,
            train.features()[*k].name,
            strength
        );
    }
    Ok(())
}

/// Fit a single strong tree for the interaction scan (cheaper than running
/// the scan against the whole ensemble, and trees express interactions
/// directly).
fn analysis_model(
    train: &interpretable_automl::data::Dataset,
) -> Result<Box<dyn interpretable_automl::models::Classifier>, Box<dyn std::error::Error>> {
    use interpretable_automl::models::{tree::TreeParams, DecisionTree};
    Ok(Box::new(DecisionTree::fit(
        train,
        TreeParams {
            max_depth: 10,
            ..Default::default()
        },
    )?))
}
