//! Explore the congestion-control simulator: compare all six protocols on
//! a few representative network conditions and print the Pantheon-style
//! comparison the labeler uses.
//!
//! ```sh
//! cargo run --release --example netsim_explore [link_mbps rtt_ms loss n_flows]
//! ```

use interpretable_automl::netsim::runner::{run_all, winner_index};
use interpretable_automl::netsim::NetworkCondition;

fn show(c: NetworkCondition, seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "== {} Mbps, {} ms RTT, {:.1}% loss, {} flow(s) ==",
        c.link_rate_mbps,
        c.rtt_ms,
        c.loss_rate * 100.0,
        c.n_flows
    );
    let results = run_all(c, seed)?;
    let win = winner_index(&results);
    for (i, r) in results.iter().enumerate() {
        println!(
            "  {:8} throughput {:7.2} Mbps | mean delay {:8.2} ms | p95 {:8.2} ms | useful: {}{}",
            r.protocol.name(),
            r.throughput_mbps,
            r.mean_delay_ms,
            r.p95_delay_ms,
            if r.qualifies { "yes" } else { "no " },
            if i == win { "   <-- winner" } else { "" }
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 5 {
        let c = NetworkCondition {
            link_rate_mbps: args[1].parse()?,
            rtt_ms: args[2].parse()?,
            loss_rate: args[3].parse()?,
            n_flows: args[4].parse()?,
        };
        return show(c, 1);
    }

    println!("(pass `link_mbps rtt_ms loss n_flows` to pick your own condition)\n");
    let scenarios = [
        // Scream's home turf: clean path, deep buffers.
        NetworkCondition {
            link_rate_mbps: 50.0,
            rtt_ms: 100.0,
            loss_rate: 0.0,
            n_flows: 1,
        },
        // Moderate broadband, multiple flows.
        NetworkCondition {
            link_rate_mbps: 10.0,
            rtt_ms: 40.0,
            loss_rate: 0.0,
            n_flows: 3,
        },
        // Random loss: the regime where loss-halving protocols collapse.
        NetworkCondition {
            link_rate_mbps: 20.0,
            rtt_ms: 40.0,
            loss_rate: 0.02,
            n_flows: 1,
        },
        // Slow lossy long-RTT path (satellite-ish).
        NetworkCondition {
            link_rate_mbps: 2.0,
            rtt_ms: 150.0,
            loss_rate: 0.01,
            n_flows: 1,
        },
    ];
    for (i, c) in scenarios.into_iter().enumerate() {
        show(c, i as u64 + 1)?;
    }
    Ok(())
}
