//! The paper's running example end to end, scaled down: decide when to use
//! the Scream congestion-control protocol.
//!
//! ```sh
//! cargo run --release --example scream_feedback
//! ```
//!
//! 1. Collect an initial training set from the simulator (the Pantheon
//!    substitute).
//! 2. Train AutoML; evaluate on held-out test sets.
//! 3. Run Within-ALE feedback → flagged `config.*` regions.
//! 4. "Collect" the suggested measurements (the simulator labels them —
//!    exactly the paper's "because we collect the data through emulation,
//!    we can easily collect any additional data the feedback solution
//!    specifies").
//! 5. Retrain and compare balanced accuracy.

use interpretable_automl::automl::AutoMlConfig;
use interpretable_automl::data::{split::split_into_k, Dataset};
use interpretable_automl::feedback::{run_strategy, ExperimentConfig, Strategy};
use interpretable_automl::interpret::plot::band_to_ascii;
use interpretable_automl::netsim::datagen::{generate_dataset, label_rows};
use interpretable_automl::netsim::ConditionDomain;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let domain = ConditionDomain::default();

    println!("collecting initial training data from the simulator...");
    let train = generate_dataset(&domain, 240, 1, threads)?;
    println!(
        "  {} samples, class balance {:?} (rest vs scream)",
        train.n_rows(),
        train.class_counts()
    );
    println!("collecting test data...");
    let test = generate_dataset(&domain, 480, 2, threads)?;
    let test_sets = split_into_k(&test, 6, 3)?;

    let oracle = move |rows: &[Vec<f64>]| -> interpretable_automl::feedback::Result<Dataset> {
        label_rows(rows, &domain, 99, threads)
            .map_err(|e| interpretable_automl::feedback::CoreError::InvalidParameter(e.to_string()))
    };

    let cfg = ExperimentConfig {
        automl: AutoMlConfig {
            n_candidates: 12,
            parallelism: threads,
            ..Default::default()
        },
        n_feedback_points: 80,
        n_cross_runs: 3,
        seed: 5,
        ..Default::default()
    };

    println!("\n=== Without feedback ===");
    let base = run_strategy(Strategy::NoFeedback, &cfg, &train, None, None, &test_sets)?;
    report(&base.scores);

    println!("\n=== Within-ALE feedback ===");
    let within = run_strategy(
        Strategy::WithinAle,
        &cfg,
        &train,
        None,
        Some(&oracle),
        &test_sets,
    )?;
    if let Some(fb) = &within.feedback {
        println!("{}", fb.describe());
        // Show the link-rate ALE band — the paper's Figure 1.
        if let Some(band) = fb
            .explanations
            .iter()
            .find(|b| b.feature_name == "config.link_rate")
        {
            println!("{}", band_to_ascii(band, 64, 12));
        }
    }
    println!("added {} simulator-labelled points", within.n_points_added);
    report(&within.scores);

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    println!(
        "\nbalanced accuracy: {:.1}% -> {:.1}%",
        mean(&base.scores) * 100.0,
        mean(&within.scores) * 100.0
    );
    println!(
        "(single run on a small sample — individual runs vary by several points; \
         `cargo run --release -p aml-bench --bin table1_scream` runs the repeated, \
         significance-tested version)"
    );
    Ok(())
}

fn report(scores: &[f64]) {
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    println!(
        "balanced accuracy over {} test sets: {:.1}% (per set: {})",
        scores.len(),
        mean * 100.0,
        scores
            .iter()
            .map(|s| format!("{:.0}%", s * 100.0))
            .collect::<Vec<_>>()
            .join(" ")
    );
}
