//! # interpretable-automl
//!
//! Facade crate for the full workspace — a from-scratch Rust reproduction of
//! *"Interpretable Feedback for AutoML and a Proposal for Domain-customized
//! AutoML for Networking"* (HotNets '21).
//!
//! Everything is re-exported under topical modules:
//!
//! * [`stats`] — Wilcoxon signed-rank test, descriptive statistics,
//!   pairwise significance tables;
//! * [`data`] — dataset representation, splits, CSV, synthetic toys;
//! * [`models`] — eight classical classifiers, metrics, pipelines,
//!   soft-voting ensembles;
//! * [`automl`] — the mini auto-sklearn (search + Caruana ensemble
//!   selection);
//! * [`interpret`] — ALE, PDP/ICE, cross-model variance bands, region
//!   extraction, plot rendering;
//! * [`netsim`] — the deterministic congestion-control simulator
//!   (Pantheon substitute) and the "Scream vs rest" data generator;
//! * [`fwgen`] — the synthetic Internet-Firewall dataset generator
//!   (UCI substitute);
//! * [`feedback`] — **the paper's contribution**: Within-/Cross-ALE
//!   interpretable feedback, the active-learning baselines, and the
//!   evaluate→feedback→retrain experiment loop.
//!
//! ## Quickstart
//!
//! ```
//! use interpretable_automl::automl::{AutoMl, AutoMlConfig};
//! use interpretable_automl::data::synth;
//! use interpretable_automl::feedback::{AleFeedback, AleMode};
//!
//! // 1. Train AutoML on (deliberately noisy) data.
//! let train = synth::noisy_xor(300, 0.1, 7).unwrap();
//! let run = AutoMl::new(AutoMlConfig { n_candidates: 8, seed: 1, ..Default::default() })
//!     .fit(&train)
//!     .unwrap();
//!
//! // 2. Ask the feedback algorithm where the ensemble is confused.
//! let ale = AleFeedback { mode: AleMode::Within, ..Default::default() };
//! let (analysis, feedback) = ale.feedback(&[run], &train).unwrap();
//!
//! // 3. The regions + ALE bands are the interpretable answer.
//! println!("{}", feedback.describe());
//! assert_eq!(analysis.bands.len(), train.n_features());
//! ```

pub use aml_automl as automl;
pub use aml_core as feedback;
pub use aml_dataset as data;
pub use aml_fwgen as fwgen;
pub use aml_interpret as interpret;
pub use aml_models as models;
pub use aml_netsim as netsim;
pub use aml_stats as stats;
